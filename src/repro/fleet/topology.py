"""Fleet topology: worker classes, fault groups, cost/energy accounting.

A heterogeneous fleet is declared once — as named worker *classes* with
per-class delay sub-models and per-class cost/power rates, plus
rack/zone-correlated fault *groups* — and expands deterministically
into the flat :class:`~repro.xp.spec.ScenarioSpec` fields the engines
consume:

- classes become contiguous worker-id blocks under a
  ``{"kind": "worker_classes"}`` delay config
  (:class:`~repro.cluster.delays.WorkerClassDelay`);
- fault groups become scheduled :class:`~repro.cluster.faults.
  WorkerCrash` entries, merged ahead of any faults the spec already
  declares;
- the class rates feed :func:`fleet_accounting`, which prices a run's
  simulated time span (reported in result ``env`` — never part of the
  record identity).

:func:`expand_fleet` is the one expansion point; it pins the original
spec's resolved seed before rewriting fields, so the expanded spec
hashes — and therefore seeds, caches, and records — identically no
matter where the expansion happens (``repro.run`` normalization, the
scalar reference path, or a direct engine construction).

The topology factory is registered in the central typed registry under
the ``"topology"`` kind (name ``"fleet"``), so spec validation can
reject malformed fleet configs with a clear message before execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.registry import registry
from repro.xp.spec import ScenarioSpec


@dataclass(frozen=True)
class FleetClass:
    """One homogeneous worker class of a fleet.

    Attributes
    ----------
    name : str
        Class label (accounting rows, error messages).
    count : int
        Number of workers in the class (a contiguous id block).
    delay : dict
        Declarative delay config for the class's workers
        (``{"kind": ..., ...}``).
    cost_per_hour : float
        Dollar rate per worker-hour of simulated time.
    power_watts : float
        Power draw per worker, for energy accounting.
    """

    name: str
    count: int
    delay: Dict[str, object]
    cost_per_hour: float = 0.0
    power_watts: float = 0.0


class FleetTopology:
    """A declarative heterogeneous fleet.

    Parameters
    ----------
    classes : list of dict
        One entry per worker class:
        ``{"name", "count", "delay", "cost_per_hour"?, "power_watts"?}``.
        Classes occupy contiguous worker-id blocks in list order.
    fault_groups : list of dict, optional
        Correlated-failure groups, each crashing a block of workers at
        one simulated time: ``{"class": <name>, "time": t,
        "count"?: k, "downtime"?: d}`` takes the first ``k`` (default
        all) workers of a class — a rack or zone going down together —
        or ``{"workers": [ids], "time": t, "downtime"?: d}`` names
        global worker ids explicitly.
    """

    def __init__(self, classes: Optional[List[dict]] = None,
                 fault_groups: Optional[List[dict]] = None):
        if not classes:
            raise ValueError(
                'fleet topology needs a non-empty "classes" list')
        self.classes: List[FleetClass] = []
        for entry in classes:
            if not isinstance(entry, dict):
                raise ValueError(
                    f"fleet class must be a dict, got {entry!r}")
            unknown = set(entry) - {"name", "count", "delay",
                                    "cost_per_hour", "power_watts"}
            if unknown:
                raise ValueError(
                    f"unknown fleet class keys: {sorted(unknown)}")
            name = str(entry.get("name", f"class{len(self.classes)}"))
            count = int(entry.get("count", 0))
            if count < 1:
                raise ValueError(
                    f'fleet class {name!r} needs "count" >= 1')
            delay = entry.get("delay")
            if not isinstance(delay, dict) or "kind" not in delay:
                raise ValueError(
                    f'fleet class {name!r} needs a delay config with a '
                    f'"kind" key, got {delay!r}')
            if not registry.has("delay", delay["kind"]):
                raise ValueError(
                    f"fleet class {name!r}: unknown delay kind "
                    f"{delay['kind']!r}")
            self.classes.append(FleetClass(
                name=name, count=count, delay=dict(delay),
                cost_per_hour=float(entry.get("cost_per_hour", 0.0)),
                power_watts=float(entry.get("power_watts", 0.0))))
        self.fault_groups: List[dict] = []
        for group in (fault_groups or []):
            if not isinstance(group, dict) or "time" not in group:
                raise ValueError(
                    f'fault group needs a "time" key: {group!r}')
            if ("class" in group) == ("workers" in group):
                raise ValueError(
                    'fault group needs exactly one of "class" or '
                    f'"workers": {group!r}')
            if "class" in group and group["class"] not in [
                    c.name for c in self.classes]:
                raise ValueError(
                    f"fault group references unknown class "
                    f"{group['class']!r}")
            self.fault_groups.append(dict(group))

    @property
    def workers(self) -> int:
        """Total worker count across all classes."""
        return sum(c.count for c in self.classes)

    def class_block(self, name: str) -> range:
        """The contiguous global worker-id range of one class."""
        start = 0
        for cls in self.classes:
            if cls.name == name:
                return range(start, start + cls.count)
            start += cls.count
        raise KeyError(f"no fleet class named {name!r}")

    def delay_config(self) -> dict:
        """The expanded ``worker_classes`` delay config."""
        return {"kind": "worker_classes",
                "counts": [c.count for c in self.classes],
                "models": [dict(c.delay) for c in self.classes]}

    def scheduled_faults(self) -> List[dict]:
        """Fault groups as scheduled-crash config entries."""
        out: List[dict] = []
        for group in self.fault_groups:
            time = float(group["time"])
            downtime = float(group.get("downtime", 5.0))
            if "class" in group:
                block = self.class_block(group["class"])
                count = int(group.get("count", len(block)))
                ids = list(block)[:count]
            else:
                ids = [int(w) for w in group["workers"]]
            for worker in ids:
                out.append({"kind": "crash", "worker": worker,
                            "time": time, "downtime": downtime})
        return out

    def faults_config(self, base: Dict[str, object]) -> dict:
        """Merge the topology's crash groups into a spec's fault config
        (group crashes schedule ahead of the spec's own entries).

        Group entries already present in the base's scheduled list are
        not re-added, so merging an already-merged config is a no-op —
        the idempotence :func:`expand_fleet` relies on.
        """
        merged = dict(base)
        existing = list(merged.get("scheduled", []))
        scheduled = [entry for entry in self.scheduled_faults()
                     if entry not in existing] + existing
        if scheduled:
            merged["scheduled"] = scheduled
        return merged


def build_topology(config: dict) -> FleetTopology:
    """Instantiate a topology from a spec's ``fleet`` config.

    Parameters
    ----------
    config : dict
        ``{"kind"?: "fleet", "classes": [...], "fault_groups"?: [...]}``
        — ``kind`` defaults to ``"fleet"`` and resolves through the
        ``"topology"`` registry kind, so alternative topology shapes
        can be plugged in.
    """
    if not isinstance(config, dict):
        raise ValueError(f"fleet config must be a dict, got {config!r}")
    params = {k: v for k, v in config.items() if k != "kind"}
    kind = config.get("kind", "fleet")
    if not registry.has("topology", kind):
        raise ValueError(
            f"unknown topology kind {kind!r}; choose from "
            f"{registry.names('topology')}")
    return registry.build("topology", kind, **params)


def expand_fleet(spec: ScenarioSpec) -> ScenarioSpec:
    """Expand a spec's fleet topology into flat scenario fields.

    No-op for specs without a ``fleet`` config.  Otherwise the
    topology's worker total, ``worker_classes`` delay config, and
    scheduled crash groups replace the spec's ``workers`` / ``delay`` /
    ``faults`` fields.  The ``fleet`` config itself is **kept** — the
    accounting layer prices the run from it after execution — and the
    faults merge skips entries already present, so expansion is
    idempotent: expanding an already-expanded spec returns an equal
    spec with an equal content hash.

    The original spec's :meth:`~repro.xp.spec.ScenarioSpec.
    resolved_seed` is pinned as the explicit seed **before** the
    rewrite: derived seeds come from the content hash, which the
    expansion changes, and the run's identity must not depend on where
    the expansion happened.
    """
    if not getattr(spec, "fleet", None):
        return spec
    topology = build_topology(spec.fleet)
    return spec.with_overrides({
        "seed": spec.resolved_seed(),
        "workers": topology.workers,
        "delay": topology.delay_config(),
        "faults": topology.faults_config(spec.faults),
    })


def fleet_accounting(config: dict, sim_time: float) -> dict:
    """Price a run's simulated span against a fleet's class rates.

    Parameters
    ----------
    config : dict
        The spec's original ``fleet`` config.
    sim_time : float
        Simulated time span covered (the engine's final clock, or the
        last ``"sim_time"`` series value on the fallback path).

    Returns
    -------
    dict
        ``{"sim_time", "classes": [{name, workers, cost, energy_wh}],
        "total_cost", "total_energy_wh"}`` — reported in result
        ``env`` only, never part of the record identity.
    """
    topology = build_topology(config)
    hours = max(float(sim_time), 0.0) / 3600.0
    rows = []
    total_cost = 0.0
    total_energy = 0.0
    for cls in topology.classes:
        cost = cls.count * cls.cost_per_hour * hours
        energy = cls.count * cls.power_watts * hours
        total_cost += cost
        total_energy += energy
        rows.append({"name": cls.name, "workers": cls.count,
                     "cost": cost, "energy_wh": energy})
    return {"sim_time": float(sim_time), "classes": rows,
            "total_cost": total_cost, "total_energy_wh": total_energy}


registry.register("topology", "fleet", FleetTopology)
