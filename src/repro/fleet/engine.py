"""Worker-axis batched execution of single-model cluster scenarios.

The serial :class:`~repro.cluster.runtime.ClusterRuntime` spends its
time on per-event Python work: one autograd read, one server push, one
optimizer step, and a handful of log appends *per simulated worker
event*.  At fleet scale (hundreds to thousands of workers) that
per-event constant is the whole cost.  This engine batches it away for
the **fleet-eligible** scenario class — one replicate, a vec optimizer
kernel, and deterministic delay/fault configuration — while keeping the
spec's parameters scalar: there is still exactly one model, stored as a
``(1, N)`` row and stepped by the batched kernels of
:mod:`repro.vec.optim`.

Two execution modes cover the class:

- **round mode** — constant delay, no fault injection, ``tau = 0``,
  FIFO delivery, and a deferred workload evaluator
  (:mod:`repro.fleet.workloads`).  All workers march in rounds; the
  engine drops the event heap entirely, defers every loss/gradient
  evaluation, and flushes one stacked matrix op per round.  This is the
  paper's round-robin protocol at fleet scale and the source of the
  engine's order-of-magnitude speedup.
- **event mode** — everything else in the eligible class (stochastic
  seeded delays, fault plans, depth gates, random delivery): a real
  :class:`~repro.cluster.events.EventQueue` mirrors the serial
  runtime's event handling decision for decision, with per-dispatch
  delay sampling and fault draws in serial order.

**Contract**: the training log is bit-identical to the serial runtime's
for every eligible spec (``tests/test_fleet_equivalence.py``).
Scenarios outside the class are reported by :func:`supports_fleet`; a
divergence under a deferred evaluator is only discovered at flush time,
so it raises :class:`FleetDiverged` and the caller re-runs serially
(where the run stops at the diverged read exactly).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.events import EventQueue
from repro.cluster.faults import FaultInjector
from repro.obs.session import active as _obs_active
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog
from repro.utils.rng import new_rng
from repro.vec.optim import build_vec_optimizer, has_vec_optimizer
from repro.fleet.workloads import build_fleet_evaluator
from repro.xp.spec import ScenarioSpec

# the scalar path runs under default TrainerHooks; sharing its
# divergence threshold keeps the two paths from ever drifting (None
# means "non-finite only", which +inf reproduces in the comparisons)
_DEFAULT_STOP = TrainerHooks().stop_on_divergence
_DIVERGENCE_THRESHOLD = (float("inf") if _DEFAULT_STOP is None
                         else _DEFAULT_STOP)
_NEG_INF = float("-inf")
_POS_INF = float("inf")

# delay kinds whose stream is reproducible from the config alone:
# deterministic always, or deterministic given an explicit seed
_ALWAYS_DETERMINISTIC_DELAYS = ("constant", "trace")
_SEEDED_DELAYS = ("uniform", "exponential", "pareto")


class FleetDiverged(Exception):
    """The run diverged under a deferred evaluator.

    Deferred evaluation discovers a non-finite/over-threshold loss at
    flush time, after the engine has already simulated past the read
    that the serial runtime would have stopped at.  The engine aborts
    and the caller re-runs the scenario serially, where the stop lands
    on the exact read.
    """

    def __init__(self, read_step: int):
        super().__init__(f"run diverged at read {read_step}")
        self.read_step = read_step


def _deterministic_delay(config: dict) -> bool:
    """Whether a delay config replays identically when rebuilt."""
    kind = config.get("kind")
    if kind in _ALWAYS_DETERMINISTIC_DELAYS:
        return True
    if kind in _SEEDED_DELAYS:
        return config.get("seed") is not None
    if kind == "heterogeneous":
        models = config.get("models") or []
        return bool(models) and all(
            isinstance(m, dict) and _deterministic_delay(m)
            for m in models)
    if kind == "worker_classes":
        models = config.get("models") or []
        return bool(models) and all(
            isinstance(m, dict) and _deterministic_delay(m)
            for m in models)
    return False


def _deterministic_faults(config: dict) -> bool:
    """Whether a fault config replays identically when rebuilt.

    Scheduled-only plans are deterministic by construction; any
    non-zero random rate needs an explicit seed (an unseeded injector
    draws from entropy even on the serial path, so switching engines
    must not be what changes the records).
    """
    if not config:
        return True
    rates = (config.get("crash_prob", 0.0),
             config.get("straggler_prob", 0.0),
             config.get("pause_prob", 0.0))
    if any(float(r) > 0 for r in rates):
        return config.get("seed") is not None
    return True


def supports_fleet(spec: ScenarioSpec) -> bool:
    """Whether a spec falls in the fleet-eligible class.

    Requires a single replicate, an optimizer with a batched kernel,
    and delay/fault configurations that rebuild to identical streams
    (so the engine's own component instances replay the serial run's
    draws exactly).  Fleet-topology specs are judged on their expanded
    form.  Anything else runs through the serial fallback of
    :func:`repro.fleet.runner.execute_fleet`.
    """
    if getattr(spec, "fleet", None):
        from repro.fleet.topology import expand_fleet
        spec = expand_fleet(spec)
    return (spec.replicates == 1
            and has_vec_optimizer(spec.optimizer)
            and _deterministic_delay(spec.delay)
            and _deterministic_faults(spec.faults))


class FleetEngine:
    """Batched event loop driving one model under N simulated workers.

    Parameters
    ----------
    spec : ScenarioSpec
        The scenario (must satisfy :func:`supports_fleet`;
        fleet-topology specs are expanded on construction).

    Attributes
    ----------
    clock : float
        Final simulated time after :meth:`run` (feeds the topology
        cost/energy accounting).
    reads_done, steps_applied : int
        Budget counters, exactly as the serial runtime reports them.
    diverged : bool
        Whether an eager-mode run stopped at a diverged read (deferred
        divergence raises :class:`FleetDiverged` instead).
    """

    def __init__(self, spec: ScenarioSpec):
        from repro.utils.deprecation import (entered_internally,
                                             warn_deprecated)
        from repro.xp.factories import (build_delay_model,
                                        build_fault_injector)

        if not entered_internally():
            # ad-hoc construction is deprecated, the engine is not;
            # the fleet backend builds engines inside internal_calls()
            warn_deprecated(
                "direct FleetEngine construction",
                'repro.run.run(spec, backend="fleet")')
        if getattr(spec, "fleet", None):
            from repro.fleet.topology import expand_fleet
            spec = expand_fleet(spec)
        if not supports_fleet(spec):
            raise ValueError(
                f"scenario {spec.name!r} is not fleet-eligible")
        self.spec = spec
        self.seed = spec.resolved_seed()
        # in-flight bound: one read per worker in the current round
        # plus one unflushed round behind it (deferred evaluators grow
        # on demand past it anyway)
        self.workload = build_fleet_evaluator(
            spec.workload, self.seed,
            capacity=2 * spec.workers + 2, **spec.workload_params)
        self.deferred = bool(getattr(self.workload, "deferred", False))
        self.buffer = self.workload.buffer
        self.optimizer = build_vec_optimizer(
            spec.optimizer, self.buffer, self.workload.offsets,
            **spec.optimizer_params)
        self.delay_model = build_delay_model(spec.delay)
        self.faults = build_fault_injector(spec.faults) or FaultInjector()
        self.faults.check_workers(spec.workers)
        # mirrors the sharded server's seeded RNG, whose only consumer
        # is the random-delivery queue draw
        self.server_rng = new_rng(self.seed)
        self.random_delivery = spec.delivery == "random"
        self.tau = spec.queue_staleness

        self.log = TrainLog()
        # direct series-list handles: the hot loops append to these
        # without going through TrainLog.append
        self._series = {
            name: (self.log.scalars.setdefault(name, []),
                   self.log.steps.setdefault(name, []))
            for name in ("loss", "staleness", "worker", "sim_time")}
        if self.optimizer.has_stats:
            stats_names = ["lr", "momentum", "target_momentum"]
            if hasattr(self.optimizer, "estimators"):
                stats_names += ["total_momentum", "algorithmic_momentum"]
            self._stats_names = stats_names
            for name in stats_names:
                self._series[name] = (
                    self.log.scalars.setdefault(name, []),
                    self.log.steps.setdefault(name, []))
        else:
            self._stats_names = []

        # pending read steps queued at the (single logical) server: the
        # serial server pushes every gradient to all of its non-empty
        # shards, so its depth gate reduces to len(queue) > tau
        self.queue: Deque[int] = deque()
        # read metadata: step -> (worker_id, updates observed at read)
        self._inflight: Dict[int, Tuple[int, int]] = {}
        # eager mode: step -> (1, N) gradient awaiting commit
        self._grads: Dict[int, np.ndarray] = {}
        # deferred mode: step -> snapshot slot; reads not yet flushed
        # (ordered + membership set); reads lost to a crash, awaiting
        # their flush-time loss log before the slot is released
        self._slots: Dict[int, int] = {}
        self._unlogged: List[int] = []
        self._unflushed: Set[int] = set()
        self._lost: List[int] = []

        self.events = EventQueue()
        self.clock = 0.0
        self.reads_done = 0
        self.steps_applied = 0
        self.diverged = False
        self._metrics = None

        self.mode = "round" if (
            self.deferred
            and spec.delay.get("kind") == "constant"
            and not self.faults.active
            and self.tau == 0
            and not self.random_delivery) else "event"

    # ------------------------------------------------------------- #
    # deferred evaluation
    # ------------------------------------------------------------- #
    def _flush_losses(self) -> None:
        """Flush the evaluator and log pending losses in read order.

        Raises :class:`FleetDiverged` on the first loss the serial
        runtime would have stopped at; releases the slots of reads
        whose gradients were lost to a crash (their losses still log —
        the serial worker computed the gradient before the fault
        decision discarded it).
        """
        steps = self._unlogged
        if not steps:
            return
        self.workload.flush()
        values = self.workload.flushed_losses()
        loss_values, loss_steps = self._series["loss"]
        loss_values.extend(values.tolist())
        loss_steps.extend(steps)
        # vectorized twin of the serial read-time stop condition
        bad = ~np.isfinite(values) | (values > _DIVERGENCE_THRESHOLD)
        if bad.any():
            raise FleetDiverged(steps[int(np.argmax(bad))])
        steps.clear()
        self._unflushed.clear()
        for step in self._lost:
            self.workload.release(self._slots.pop(step))
        self._lost.clear()

    # ------------------------------------------------------------- #
    # worker actions (event mode mirrors the serial runtime 1:1)
    # ------------------------------------------------------------- #
    def _read_and_dispatch(self, worker_id: int,
                           delay: Optional[float] = None) -> None:
        """One worker reads the model and ships its gradient.

        The serial :meth:`ClusterRuntime._read_and_dispatch` decision
        for decision: loss logged at read time (eager) or deferred to
        the next flush, divergence stop (eager only — deferred
        resolves at flush), delay sample, fault draws, and the arrival
        or crash event.
        """
        step = self.reads_done
        if self.deferred:
            slot = self.workload.snapshot()
            self._slots[step] = slot
            self._unlogged.append(step)
            self._unflushed.add(step)
            self.reads_done += 1
        else:
            grads = np.empty_like(self.buffer)
            loss_value = float(self.workload.read(grads)[0])
            loss_values, loss_steps = self._series["loss"]
            loss_values.append(loss_value)
            loss_steps.append(step)
            self.reads_done += 1
            if not (_NEG_INF < loss_value <= _DIVERGENCE_THRESHOLD) \
                    or loss_value == _POS_INF:
                if not math.isfinite(loss_value) \
                        or loss_value > _DIVERGENCE_THRESHOLD:
                    self.log.append("diverged", 1.0, step)
                    self.diverged = True
                    return
        self._inflight[step] = (worker_id, self.steps_applied)

        if delay is None:
            delay = float(self.delay_model.sample(worker_id, self.clock))
        delay, crash_time = self.faults.on_dispatch(
            worker_id, self.clock, delay)
        if crash_time is not None:
            downtime = self.faults.consume_crash()
            del self._inflight[step]
            if self.deferred:
                self._lost.append(step)
            self.events.schedule(crash_time, "crash", worker_id,
                                 {"restart_at": crash_time + downtime,
                                  "lost_read": step})
            return
        if not self.deferred:
            self._grads[step] = grads
        self.events.schedule(self.clock + delay, "arrival", worker_id,
                             {"read_step": step})

    def _commit_step(self, step: int) -> None:
        """Commit one queued gradient (already popped off the queue)."""
        version = self.steps_applied
        log_step = self.reads_done - 1
        if self.deferred:
            slot = self._slots.pop(step)
            commit = self.workload.grad_row(slot)
        else:
            commit = self._grads.pop(step)
        self.workload.ensure_packed()
        self.optimizer.step(commit)
        if self.deferred:
            self.workload.release(slot)
        self.steps_applied += 1
        worker_id, read_version = self._inflight.pop(
            step, (-1, version))
        staleness = version - read_version
        for name, value in (("staleness", float(staleness)),
                            ("worker", float(worker_id)),
                            ("sim_time", float(self.clock))):
            value_list, step_list = self._series[name]
            value_list.append(value)
            step_list.append(log_step)
        if self._stats_names:
            stats = self.optimizer.stats_all()[0]
            for name in self._stats_names:
                value_list, step_list = self._series[name]
                value_list.append(float(stats[name]))
                step_list.append(log_step)
        if self._metrics is not None:
            self._emit_commit(log_step, staleness, worker_id)

    def _emit_commit(self, log_step: int, staleness: int,
                     worker_id: int) -> None:
        """Mirror the serial runtime's per-commit obs emission."""
        self._metrics.histogram("cluster.staleness").observe(staleness)
        self._metrics.gauge("cluster.queue_depth").set(len(self.queue))
        self._metrics.counter("cluster.commits").inc()
        self._metrics.emit(log_step, {
            "step": log_step, "staleness": staleness,
            "worker": worker_id, "sim_time": self.clock,
            "queue_depth": len(self.queue),
            "updates": self.steps_applied,
        })

    def _commit_ready(self, updates: Optional[int]) -> None:
        """Commit queued gradients while the gate is open and budget
        lasts (the serial depth gate reduces to ``len(queue) > tau``)."""
        queue = self.queue
        while len(queue) > self.tau and (
                updates is None or self.steps_applied < updates):
            if self.random_delivery:
                pos = int(self.server_rng.integers(len(queue)))
                step = queue[pos]
                del queue[pos]
            else:
                step = queue.popleft()
            if self.deferred and step in self._unflushed:
                self._flush_losses()
            self._commit_step(step)

    # ------------------------------------------------------------- #
    # event mode
    # ------------------------------------------------------------- #
    def _fault_instant(self, name: str, counter: str,
                       worker: int) -> None:
        """Record a fault occurrence on the active session (if any)."""
        session = _obs_active()
        if session is None:
            return
        if session.tracer is not None:
            session.tracer.instant(name, "cluster.faults",
                                   worker=worker, sim_time=self.clock)
        if session.metrics is not None:
            session.metrics.counter(counter).inc()

    def _dispatch(self, event, reads: int,
                  updates: Optional[int]) -> None:
        """Route one event exactly as the serial runtime does."""
        if event.kind == "arrival":
            pause_end = self.faults.pause_until(event.time)
            if pause_end is not None and pause_end > event.time:
                # server paused: defer delivery, preserving order
                self._fault_instant("fault:deferred",
                                    "cluster.deferrals", event.worker)
                self.events.reschedule(event, pause_end)
                return
            self.clock = event.time
            self.queue.append(event.payload["read_step"])
            self._commit_ready(updates)
            if not self.diverged and self.reads_done < reads:
                self._read_and_dispatch(event.worker)
        elif event.kind == "crash":
            self.clock = event.time
            self._fault_instant("fault:crash", "cluster.crashes",
                                event.worker)
            self.log.append("crash", float(event.worker),
                            self.reads_done)
            self.events.schedule(event.payload["restart_at"],
                                 "restart", event.worker, {})
        elif event.kind == "restart":
            self.clock = event.time
            self._fault_instant("fault:restart", "cluster.restarts",
                                event.worker)
            self.log.append("restart", float(event.worker),
                            self.reads_done)
            if not self.diverged and self.reads_done < reads:
                self._read_and_dispatch(event.worker)
        else:  # pragma: no cover — queue only ever holds known kinds
            raise RuntimeError(f"unknown event kind {event.kind!r}")

    def _run_events(self, reads: int, updates: Optional[int]) -> None:
        """The general loop: a real event queue, serial decisions."""
        # initial dispatch burst: delays batch through sample_many
        # (stream-equivalent to per-dispatch sampling by the DelayModel
        # contract; draws past an eager divergence stop are never
        # consumed again, so pre-sampling cannot change the log)
        burst = min(self.spec.workers, max(reads - self.reads_done, 0))
        delays = (self.delay_model.sample_many(range(burst), self.clock)
                  if burst else ())
        for worker_id in range(burst):
            if self.diverged or self.reads_done >= reads:
                break
            self._read_and_dispatch(worker_id,
                                    delay=float(delays[worker_id]))
        while not self.diverged:
            if self.reads_done >= reads and (
                    updates is None or self.steps_applied >= updates):
                break
            if not self.events:
                break
            self._dispatch(self.events.pop(), reads, updates)

    # ------------------------------------------------------------- #
    # round mode
    # ------------------------------------------------------------- #
    def _run_rounds(self, reads: int, updates: Optional[int]) -> None:
        """The fast loop for the constant-delay round-robin protocol.

        With one constant delay, no faults, ``tau = 0``, and FIFO
        delivery, the event heap's pop order is exactly round-robin:
        every in-flight read arrives one delay later, in worker order,
        commits immediately (budget permitting), and redispatches.  The
        heap, per-event payloads, and per-read evaluation all collapse
        into two lists and one flush per round.
        """
        delay = float(self.delay_model.delay)
        workload = self.workload
        optimizer = self.optimizer
        optimizer_step = optimizer.step
        snapshot = workload.snapshot
        grad_row = workload.grad_row
        release = workload.release
        ensure_packed = workload.ensure_packed
        slots = self._slots
        unlogged = self._unlogged
        unflushed = self._unflushed
        stal_v, stal_s = self._series["staleness"]
        work_v, work_s = self._series["worker"]
        time_v, time_s = self._series["sim_time"]
        stats_names = self._stats_names
        # round tuples carry the read version so the commit below skips
        # the _inflight dict entirely (no crashes can reorder
        # arrivals); reads_done / steps_applied run as locals through
        # the hot loop and write back at every round boundary
        reads_done = self.reads_done
        steps_applied = self.steps_applied
        current: List[Tuple[int, int, int]] = []
        for worker_id in range(self.spec.workers):
            if reads_done >= reads:
                break
            step = reads_done
            slots[step] = snapshot()
            unlogged.append(step)
            unflushed.add(step)
            reads_done += 1
            current.append((worker_id, step, steps_applied))
        self.reads_done = reads_done
        while current:
            if reads_done >= reads and (
                    updates is None or steps_applied >= updates):
                break
            # arrivals of this round land one delay later; the serial
            # clock accumulates the same float sum event by event
            self.clock = clock = self.clock + delay
            if unlogged:
                self._flush_losses()
            next_round: List[Tuple[int, int, int]] = []
            stop = False
            for worker_id, step, read_version in current:
                if reads_done >= reads and (
                        updates is None or steps_applied >= updates):
                    stop = True
                    break
                # inline tau = 0 FIFO commit: the gate opens on every
                # push, so _commit_ready would pop exactly this step
                if updates is None or steps_applied < updates:
                    slot = slots.pop(step)
                    ensure_packed()
                    optimizer_step(grad_row(slot))
                    release(slot)
                    version = steps_applied
                    steps_applied = version + 1
                    log_step = reads_done - 1
                    stal_v.append(float(version - read_version))
                    stal_s.append(log_step)
                    work_v.append(float(worker_id))
                    work_s.append(log_step)
                    time_v.append(float(clock))
                    time_s.append(log_step)
                    if stats_names:
                        stats = optimizer.stats_all()[0]
                        for name in stats_names:
                            value_list, step_list = self._series[name]
                            value_list.append(float(stats[name]))
                            step_list.append(log_step)
                    if self._metrics is not None:
                        self.steps_applied = steps_applied
                        self._emit_commit(log_step,
                                          version - read_version,
                                          worker_id)
                else:
                    self.queue.append(step)
                if reads_done < reads:
                    new_step = reads_done
                    slots[new_step] = snapshot()
                    unlogged.append(new_step)
                    unflushed.add(new_step)
                    reads_done += 1
                    next_round.append((worker_id, new_step,
                                       steps_applied))
            self.reads_done = reads_done
            self.steps_applied = steps_applied
            if stop:
                break
            current = next_round

    # ------------------------------------------------------------- #
    # driving loop
    # ------------------------------------------------------------- #
    def run(self) -> TrainLog:
        """Simulate the spec's budgets and return the training log.

        Raises
        ------
        FleetDiverged
            If a deferred flush finds a loss the serial runtime would
            have stopped at (the caller falls back to serial
            execution).  Eager-mode divergence instead stops the run
            exactly like the serial runtime and sets :attr:`diverged`.
        """
        spec = self.spec
        reads, updates = spec.reads, spec.updates
        session = _obs_active()
        self._metrics = (session.metrics if session is not None
                         else None)
        if self.mode == "round":
            self._run_rounds(reads, updates)
        else:
            self._run_events(reads, updates)
        if self.deferred and self._unlogged:
            # losses of reads that never delivered still logged at
            # read steps, exactly as the serial read-time log did
            self._flush_losses()
        return self.log
