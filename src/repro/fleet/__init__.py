"""Worker-axis batched cluster execution at fleet scale.

The paper's cluster results live at the worker axis: hundreds of
parameter-server clients whose timing — not their number of models —
creates staleness.  The serial event-driven runtime pays a Python-level
constant per worker event, which caps practical sweeps near tens of
workers.  This package batches that constant away for the
**fleet-eligible** scenario class while the model stays scalar: one
``(1, N)`` parameter row stepped by the batched kernels of
:mod:`repro.vec`, with delay sampling, fault draws, and staleness
bookkeeping vectorized across the worker axis.

Layout
------
- :mod:`repro.fleet.engine` — the :class:`~repro.fleet.engine.
  FleetEngine` (round mode for the constant-delay round-robin
  protocol, event mode for the general eligible class) and its
  applicability predicate :func:`~repro.fleet.engine.supports_fleet`.
- :mod:`repro.fleet.workloads` — deferred snapshot/flush evaluators
  (vectorized ``quadratic_bowl``; eager single-seed adapter for
  everything else).
- :mod:`repro.fleet.topology` — heterogeneous fleet declarations
  (worker classes, correlated fault groups, cost/energy accounting)
  and the :func:`~repro.fleet.topology.expand_fleet` spec expansion.
- :mod:`repro.fleet.runner` — :func:`~repro.fleet.runner.
  execute_fleet` with transparent serial fallback; the ``fleet``
  execution backend registers in :mod:`repro.run.backends`.

Contract
--------
Records are **bit-identical** to the serial scalar path for every
eligible spec (enforced by ``tests/test_fleet_equivalence.py``);
batching buys scale, never different numbers.
"""

from repro.fleet.engine import (FleetDiverged, FleetEngine,
                                supports_fleet)
from repro.fleet.runner import execute_fleet
from repro.fleet.topology import (FleetClass, FleetTopology,
                                  build_topology, expand_fleet,
                                  fleet_accounting)
from repro.fleet.workloads import (QuadraticBowlFleet,
                                   build_fleet_evaluator,
                                   fleet_workload_names,
                                   has_fleet_workload,
                                   register_fleet_workload)

__all__ = [
    "FleetEngine", "FleetDiverged", "supports_fleet",
    "execute_fleet",
    "FleetClass", "FleetTopology", "build_topology", "expand_fleet",
    "fleet_accounting",
    "QuadraticBowlFleet", "build_fleet_evaluator",
    "fleet_workload_names", "has_fleet_workload",
    "register_fleet_workload",
]
