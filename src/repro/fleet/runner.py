"""Fleet-scenario execution: batched fast path, serial fallback.

:func:`execute_fleet` is the worker-axis engine room of the unified
:mod:`repro.run` API.  It produces one
:class:`~repro.xp.runner.ScenarioResult` that is bit-identical to the
scalar reference path (:func:`repro.run.backends.execute_scalar`) —
regardless of which execution strategy actually ran:

- **fleet** — the scenario is fleet-eligible
  (:func:`repro.fleet.engine.supports_fleet`): one
  :class:`~repro.fleet.engine.FleetEngine` batches the per-event
  worker-axis work, an order of magnitude cheaper than serial at
  fleet scale;
- **serial** — anything else (unseeded stochastic components,
  optimizers without a batched kernel, multi-replicate specs), or a
  fleet run aborted by a deferred-flush divergence: the ordinary
  scalar path.

Fleet-topology specs (:mod:`repro.fleet.topology`) are expanded first,
and the topology's cost/energy accounting for the run's simulated span
is attached under ``env["fleet_accounting"]``.  The executed strategy
is recorded under ``env["fleet_engine"]`` — ``env`` never participates
in record identity, so the fallback is transparent.
"""

from __future__ import annotations

from repro.bench.report import environment_info
from repro.obs.session import StepTimer, active as _obs_active
from repro.utils.deprecation import internal_calls
from repro.fleet.engine import (FleetDiverged, FleetEngine,
                                supports_fleet)
from repro.fleet.topology import expand_fleet, fleet_accounting
from repro.xp.spec import ScenarioSpec

_STRATEGIES = ("auto", "fleet", "serial")


def execute_fleet(spec: ScenarioSpec, strategy: str = "auto"):
    """Run one scenario through the fleet engine (or its fallback).

    Parameters
    ----------
    spec : ScenarioSpec
        The scenario; fleet-topology specs are expanded here.
    strategy : str
        ``"auto"`` and ``"fleet"`` use the batched engine when the
        spec is fleet-eligible (falling back to serial otherwise, or
        when a deferred flush discovers a divergence mid-run);
        ``"serial"`` forces scalar execution.

    Returns
    -------
    ScenarioResult
        Record bit-identical to :func:`~repro.run.backends.
        execute_scalar` on the expanded spec.  ``env`` records the
        executed strategy under ``"fleet_engine"`` and — for
        fleet-topology specs — the run's cost/energy accounting under
        ``"fleet_accounting"``.
    """
    from repro.xp.runner import ScenarioResult, summarize_log

    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    original = spec
    spec = expand_fleet(spec)
    want_fleet = strategy in ("auto", "fleet")
    timer = StepTimer(f"fleet:{spec.name}", cat="fleet.runner").start()
    session = _obs_active()
    engine = None
    log = None
    if want_fleet and spec.replicates == 1 and supports_fleet(spec):
        try:
            with internal_calls():
                engine = FleetEngine(spec)
                if session is not None and session.tracer is not None:
                    with session.tracer.span(
                            f"fleet:{spec.name}", "fleet.engine",
                            workers=spec.workers):
                        log = engine.run()
                else:
                    log = engine.run()
        except FleetDiverged:
            # a deferred flush found a divergence after the engine
            # simulated past it; rerun serially so the run stops at
            # the diverged read exactly
            engine = None
            if session is not None:
                if session.tracer is not None:
                    session.tracer.instant("fallback:diverged",
                                           "fleet.engine",
                                           spec=spec.name)
                if session.metrics is not None:
                    session.metrics.counter("fleet.fallbacks").inc()
    elif want_fleet and session is not None:
        # wanted the engine but the spec is outside the eligible
        # class — record the fallback transition
        if session.tracer is not None:
            session.tracer.instant("fallback:unsupported",
                                   "fleet.engine", spec=spec.name)
        if session.metrics is not None:
            session.metrics.counter("fleet.fallbacks").inc()

    if engine is not None:
        metrics, series = summarize_log(
            spec, log, engine.reads_done, engine.steps_applied,
            engine.diverged)
        wall = timer.stop(strategy="fleet")
        env = environment_info()
        env["seed"] = engine.seed
        env["fleet_engine"] = "fleet"
        if original.fleet:
            env["fleet_accounting"] = fleet_accounting(
                original.fleet, engine.clock)
        return ScenarioResult(
            name=spec.name, spec_hash=spec.content_hash(),
            metrics=metrics, series=series, env=env, wall_s=wall)

    from repro.run.backends import execute_scalar, execute_spec

    result = (execute_scalar(spec) if spec.replicates == 1
              else execute_spec(spec))
    wall = timer.stop(strategy="serial")
    env = dict(result.env)
    env["fleet_engine"] = "serial"
    if original.fleet:
        sim_series = result.series.get("sim_time")
        if sim_series:
            env["fleet_accounting"] = fleet_accounting(
                original.fleet, sim_series[-1])
    return ScenarioResult(
        name=result.name, spec_hash=result.spec_hash,
        metrics=result.metrics, series=result.series,
        replicate_metrics=result.replicate_metrics, env=env,
        wall_s=wall)
