"""Worker-axis workload evaluation for the fleet engine.

The fleet engine (:mod:`repro.fleet.engine`) runs **one** model — the
spec's single replicate — but thousands of simulated workers read it.
Per-read cost therefore dominates, and two evaluation strategies
implement the engine's read contract:

- **Eager** (the universal fallback): a
  :class:`~repro.vec.workloads.ModelReplicateAdapter` over the scalar
  workload with a single seed.  ``read`` evaluates the autograd
  closure immediately — it *is* the scalar computation, so losses and
  gradients are bit-identical to the serial path by construction, and
  the engine can mirror the serial runtime's read-time divergence stop
  exactly.
- **Deferred** (registered fleet workloads, ``deferred = True``): the
  evaluator snapshots the parameter row per read
  (:meth:`~QuadraticBowlFleet.snapshot`) and batch-evaluates all
  pending snapshots in read order on :meth:`~QuadraticBowlFleet.flush`
  — one stacked matrix op per simulation round instead of one NumPy
  call chain per read.  Losses and gradients are bit-identical to the
  scalar builder because the batched math reduces each row with the
  same pairwise summation the scalar path uses.

``quadratic_bowl`` — the noisy quadratic of the paper's analysis
sections — is the built-in deferred evaluator.  Registration mirrors
:mod:`repro.vec.workloads`: the scalar registry entry is captured at
registration time, and a later replacement of the scalar factory
silently disables the fleet evaluator rather than computing something
other than the replacement.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.registry import registry
from repro.vec.workloads import ModelReplicateAdapter

# builder: (seed, capacity) -> deferred evaluator;
# factory: **workload_params -> builder
FleetWorkloadBuilder = Callable[[int, int], "object"]
FleetWorkloadFactory = Callable[..., FleetWorkloadBuilder]


def register_fleet_workload(name: str,
                            factory: FleetWorkloadFactory) -> None:
    """Register a deferred fleet evaluator for workload ``name``.

    Stored in the central typed registry under the ``"fleet_workload"``
    kind.  The scalar registry must already know the name: the fleet
    evaluator is an *optimization* of the current scalar builder, and
    the differential suite holds the two bit-identical.  The pairing is
    captured at registration time — if the scalar entry is replaced
    afterwards, the fleet evaluator is ignored and scenarios use the
    eager adapter over the replacement.
    """
    if not registry.has("workload", str(name)):
        raise ValueError(
            f"cannot register fleet workload {name!r}: no scalar "
            "workload of that name (register_workload it first)")
    scalar = registry.get("workload", str(name)).factory
    registry.register("fleet_workload", str(name), factory,
                      extra={"scalar_factory": scalar})


def has_fleet_workload(name: str) -> bool:
    """Whether ``name`` has a deferred evaluator still paired with the
    current scalar registry entry."""
    if not registry.has("fleet_workload", name):
        return False
    paired = registry.get("fleet_workload", name).extra.get(
        "scalar_factory")
    return (registry.has("workload", name)
            and registry.get("workload", name).factory is paired)


def fleet_workload_names() -> list:
    """Sorted names with deferred fleet evaluators."""
    return registry.names("fleet_workload")


def build_fleet_evaluator(name: str, seed: int, capacity: int = 8,
                          **params):
    """Build the best available fleet evaluator for a workload.

    Workloads whose deferred evaluator is still paired with the current
    scalar registry entry get it; anything else gets an eager
    :class:`~repro.vec.workloads.ModelReplicateAdapter` over the scalar
    builder with the single seed (``deferred`` absent/false).

    Parameters
    ----------
    name : str
        Workload name (scalar registry key or ``module:attr``
        reference).
    seed : int
        The spec's resolved seed.
    capacity : int
        Initial snapshot-slot capacity for deferred evaluators (they
        grow on demand); sized by the engine to the in-flight bound.
    **params
        The spec's ``workload_params``.
    """
    if has_fleet_workload(name):
        return registry.build("fleet_workload", name,
                              **params)(int(seed), int(capacity))
    return ModelReplicateAdapter(name, [int(seed)], **params)


class QuadraticBowlFleet:
    """Deferred snapshot/flush evaluator of the noisy quadratic.

    The fleet twin of the scalar ``quadratic_bowl`` workload
    (:mod:`repro.xp.workloads`): the single parameter vector lives in a
    ``(1, dim)`` buffer (stepped in place by a vec optimizer kernel);
    each simulated read copies the row into a snapshot slot and records
    its noise-stream tick, and :meth:`flush` evaluates every pending
    snapshot with three stacked elementwise ops plus one row-wise
    reduction.  Rows reduce along the contiguous last axis, so each
    row's loss uses the same pairwise summation as the scalar
    ``np.sum(hx * x)`` — losses and gradients are bit-identical to
    evaluating the snapshots one at a time.

    Slots are recycled through a free list and the arrays double when
    the in-flight read population outgrows them.
    """

    #: The engine calls snapshot()/flush()/loss()/grad_row() instead of
    #: read(); losses become available at flush time, not read time.
    deferred = True

    def __init__(self, seed: int, dim: int = 256, hmin: float = 0.05,
                 hmax: float = 2.0, noise: float = 0.1,
                 noise_horizon: int = 512, capacity: int = 8):
        # identical draw order to the scalar builder: parameter vector
        # first, then the noise table, from one seeded generator
        rng = np.random.default_rng(int(seed))
        self.h = np.exp(np.linspace(np.log(hmin), np.log(hmax), dim))
        self.buffer = np.empty((1, dim))
        self.buffer[0] = rng.normal(size=dim)
        self._table = noise * rng.normal(size=(noise_horizon, dim))
        self.noise_horizon = noise_horizon
        self.offsets = [0, dim]
        cap = max(int(capacity), 1)
        self._snaps = np.empty((cap, dim))
        self._grads = np.empty((cap, dim))
        self._losses = np.empty(cap)
        # tick stored pre-modded: only ever read through `% horizon`
        self._ticks = np.empty(cap, dtype=np.int64)
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self._pending: List[int] = []
        self._tick = 0
        # flush scratch (grown on demand): gathered snapshots, h*x, and
        # gathered noise rows — reused so a flush allocates nothing big
        self._scratch = np.empty((0, dim))
        self._flushed = np.empty(0)

    def ensure_packed(self) -> None:
        """No tensors alias the buffer; nothing to re-pack."""

    def _grow(self) -> None:
        """Double every slot array, freeing the new upper half."""
        cap = self._snaps.shape[0]
        for name in ("_snaps", "_grads"):
            old = getattr(self, name)
            grown = np.empty((2 * cap, old.shape[1]))
            grown[:cap] = old
            setattr(self, name, grown)
        losses = np.empty(2 * cap)
        losses[:cap] = self._losses
        self._losses = losses
        ticks = np.empty(2 * cap, dtype=np.int64)
        ticks[:cap] = self._ticks
        self._ticks = ticks
        self._free.extend(range(2 * cap - 1, cap - 1, -1))

    def snapshot(self) -> int:
        """Record one read: copy the parameter row, claim the next
        noise tick, and return the slot id."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._snaps[slot] = self.buffer[0]
        self._ticks[slot] = self._tick % self.noise_horizon
        self._tick += 1
        self._pending.append(slot)
        return slot

    def flush(self) -> None:
        """Batch-evaluate every snapshot taken since the last flush.

        Works in preallocated scratch rows: gather the snapshots and
        their noise-table rows with :func:`np.take`, form ``h * x`` in
        place, and scatter gradients back.  The loss reduction stays
        ``(hx * x).sum(axis=1)`` — the same contiguous-axis pairwise
        summation as the scalar ``np.sum(hx * x)``, so batching cannot
        perturb a single bit.
        """
        if not self._pending:
            return
        rows = np.asarray(self._pending, dtype=np.intp)
        n = rows.shape[0]
        if self._scratch.shape[0] < 3 * n:
            self._scratch = np.empty((3 * n, self._snaps.shape[1]))
        HX = self._scratch[n:2 * n]
        start = int(rows[0])
        if n == 1 or (int(rows[-1]) == start + n - 1
                      and bool((np.diff(rows) == 1).all())):
            # round-mode steady state: slots recycle in snapshot order,
            # so the batch is one contiguous block — views, no gathers
            X = self._snaps[start:start + n]
            G = self._grads[start:start + n]
            ticks = self._ticks[start:start + n]
        else:
            X = self._scratch[:n]
            G = self._scratch[2 * n:3 * n]
            np.take(self._snaps, rows, axis=0, out=X)
            ticks = self._ticks[rows]
        np.multiply(self.h, X, out=HX)
        np.take(self._table, ticks, axis=0, out=G)
        G += HX
        if G.base is self._scratch:
            self._grads[rows] = G
        np.multiply(HX, X, out=HX)
        flushed = 0.5 * HX.sum(axis=1)
        self._losses[rows] = flushed
        self._flushed = flushed
        self._pending.clear()

    def flushed_losses(self) -> np.ndarray:
        """Losses of the last :meth:`flush`, in snapshot order.

        Snapshot order is read order — the engine appends to its
        unlogged-step list and this evaluator to ``_pending`` in the
        same call — so the engine can log the whole batch without a
        per-read Python loop.
        """
        return self._flushed

    def loss(self, slot: int) -> float:
        """The flushed loss of one snapshot."""
        return float(self._losses[slot])

    def grad_row(self, slot: int) -> np.ndarray:
        """The flushed gradient of one snapshot as a ``(1, dim)`` view
        (valid until the slot is released and reused)."""
        return self._grads[slot:slot + 1]

    def release(self, slot: int) -> None:
        """Return a slot to the free list."""
        self._free.append(slot)


def _quadratic_bowl_fleet(dim: int = 256, hmin: float = 0.05,
                          hmax: float = 2.0, noise: float = 0.1,
                          noise_horizon: int = 512
                          ) -> FleetWorkloadBuilder:
    """Factory mirroring the scalar ``quadratic_bowl`` signature."""
    def build(seed: int, capacity: int) -> QuadraticBowlFleet:
        return QuadraticBowlFleet(seed, dim=dim, hmin=hmin, hmax=hmax,
                                  noise=noise,
                                  noise_horizon=noise_horizon,
                                  capacity=capacity)
    return build


register_fleet_workload("quadratic_bowl", _quadratic_bowl_fleet)
