"""repro: reproduction of "YellowFin and the Art of Momentum Tuning"
(Zhang & Mitliagkas, MLSYS 2019).

Quickstart
----------
>>> import numpy as np
>>> from repro import YellowFin, nn
>>> from repro.autograd import Tensor, functional as F
>>> model = nn.Sequential(nn.Linear(4, 16, seed=0), nn.ReLU(),
...                       nn.Linear(16, 2, seed=1))
>>> opt = YellowFin(model.parameters())
>>> x, y = np.random.randn(32, 4), np.random.randint(0, 2, 32)
>>> for _ in range(10):
...     model.zero_grad()
...     loss = F.cross_entropy(model(Tensor(x)), y)
...     loss.backward()
...     opt.step()

Package layout
--------------
- ``repro.run`` — the unified execution API: ``run(spec,
  backend="auto")`` over serial / cluster / parallel / vec backends.
- ``repro.registry`` — the typed component registry behind every
  pluggable family (optimizers, workloads, delay/fault models,
  sharding policies, aggregators, backends).
- ``repro.core`` — YellowFin, closed-loop YellowFin, measurement oracles.
- ``repro.autograd`` / ``repro.nn`` — the NumPy deep-learning substrate.
- ``repro.optim`` — SGD / momentum SGD / Adam / AdaGrad / RMSProp baselines.
- ``repro.analysis`` — momentum-operator theory (Lemmas 3/5/6), speedups.
- ``repro.data`` / ``repro.models`` — the paper's workloads at laptop scale.
- ``repro.sim`` — trainers plus the sharded parameter-server runtime.
- ``repro.cluster`` — event-driven cluster simulation: delay models,
  fault injection, bit-for-bit checkpoint/restore.
- ``repro.xp`` — declarative scenario specs/matrices, process pools,
  the content-addressed result cache, baseline gating.
- ``repro.vec`` — batched multi-replicate execution engine.
- ``repro.mp`` — real multi-process parameter server (opt-in backend).
- ``repro.obs`` — scoped tracing, metrics, and profiling across all
  backends (``run(..., obs=True)``, ``python -m repro trace``).
- ``repro.serve`` — the multi-tenant tuning service: HTTP+JSON daemon
  with a typed client, cross-tenant vec-batching, quotas, and a
  pre-forked autoscaled worker pool (``python -m repro serve``).
- ``repro.tuning`` — grid search and multi-seed experiment harness.
- ``repro.bench`` — timers and ``BENCH_*.json`` perf records.

Command line: ``python -m repro run|list|diff|bench|trace|serve``
(installed as the ``repro`` console script).
"""

from repro import analysis, autograd, bench, cluster, core, data, models, \
    nn, obs, optim, registry, sim, tuning, utils
from repro import run, xp, vec  # noqa: E402 — after the substrate
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import Adam, AdaGrad, MomentumSGD, RMSProp, SGD

__version__ = "1.2.0"

__all__ = [
    "analysis", "autograd", "bench", "cluster", "core", "data", "models",
    "nn", "obs", "optim", "registry", "run", "sim", "tuning", "utils",
    "vec", "xp",
    "YellowFin", "ClosedLoopYellowFin",
    "SGD", "MomentumSGD", "Adam", "AdaGrad", "RMSProp",
]
