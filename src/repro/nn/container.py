"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = list(modules)
        for idx, module in enumerate(modules):
            setattr(self, f"layer{idx}", module)

    def forward(self, x):
        for module in self._order:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._order[idx]


class ModuleList(Module):
    """List of submodules with registration (no forward of its own)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        idx = len(self._items)
        self._items.append(module)
        setattr(self, f"item{idx}", module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
