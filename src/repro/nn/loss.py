"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets.

    The negative log-probability loss family assumed by YellowFin's
    curvature measurements (Section 3.2).
    """

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class MSELoss(Module):
    def forward(self, pred: Tensor, target: np.ndarray) -> Tensor:
        return F.mse_loss(pred, target)
