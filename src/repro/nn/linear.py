"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class Linear(Module):
    """Affine transform ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias.
    seed:
        Seed or generator for weight initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (f"Linear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias is not None})")
