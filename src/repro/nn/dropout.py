"""Dropout module (inverted dropout with internal generator)."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.rng import new_rng


class Dropout(Module):
    """Randomly zeroes activations with probability ``p`` during training.

    Evaluation mode is the identity.  The module owns its generator so
    training runs are reproducible given the seed.
    """

    def __init__(self, p: float = 0.5, seed=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must be in [0, 1), got {p}")
        self.p = p
        self.rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
