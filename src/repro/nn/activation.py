"""Activation modules (thin wrappers over functional ops)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()
