"""Normalization layers: BatchNorm2d (ResNets) and LayerNorm (RNN variants)."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalization over ``(N, H, W)`` per channel.

    Tracks running statistics for evaluation mode, matching the behaviour of
    the ResNet layers in the paper's Table 3 architectures.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean)
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * var)
            x_hat = _normalize_train(x, mean, var, self.eps)
        else:
            scale = 1.0 / np.sqrt(self.running_var + self.eps)
            x_hat = (x - Tensor(self.running_mean.reshape(1, -1, 1, 1))) \
                * Tensor(scale.reshape(1, -1, 1, 1))
        w = self.weight.reshape(1, -1, 1, 1)
        b = self.bias.reshape(1, -1, 1, 1)
        return x_hat * w + b


def _normalize_train(x: Tensor, mean: np.ndarray, var: np.ndarray,
                     eps: float) -> Tensor:
    """Training-mode normalization with the full batch-statistics gradient."""
    n, c, h, w = x.shape
    m = n * h * w
    mean_r = mean.reshape(1, c, 1, 1)
    inv_std = (1.0 / np.sqrt(var + eps)).reshape(1, c, 1, 1)
    x_hat_data = (x.data - mean_r) * inv_std

    def grad_fn(g: np.ndarray) -> np.ndarray:
        # Standard batchnorm backward through mean and variance.
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat_data).sum(axis=(0, 2, 3), keepdims=True)
        return inv_std / m * (m * g - sum_g - x_hat_data * sum_gx)

    return Tensor._make(x_hat_data, [(x, grad_fn)])


class LayerNorm(Module):
    """Layer normalization across the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        d = x.shape[-1]
        mean = x.data.mean(axis=-1, keepdims=True)
        var = x.data.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat_data = (x.data - mean) * inv_std

        def grad_fn(g: np.ndarray) -> np.ndarray:
            sum_g = g.sum(axis=-1, keepdims=True)
            sum_gx = (g * x_hat_data).sum(axis=-1, keepdims=True)
            return inv_std / d * (d * g - sum_g - x_hat_data * sum_gx)

        x_hat = Tensor._make(x_hat_data, [(x, grad_fn)])
        return x_hat * self.weight + self.bias
