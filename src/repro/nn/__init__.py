"""Minimal neural-network library over :mod:`repro.autograd`.

Mirrors the slice of ``torch.nn`` the paper's models need: Linear, Conv2d,
BatchNorm2d, Embedding, LSTM, Sequential and friends.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.embedding import Embedding
from repro.nn.rnn import LSTMCell, LSTM, RNNCell, GRUCell
from repro.nn.container import Sequential, ModuleList
from repro.nn.activation import ReLU, Tanh, Sigmoid
from repro.nn.dropout import Dropout
from repro.nn.loss import CrossEntropyLoss, MSELoss

__all__ = [
    "Module", "Parameter", "Linear", "Conv2d", "BatchNorm2d", "LayerNorm",
    "Embedding", "LSTMCell", "LSTM", "RNNCell", "GRUCell", "Sequential",
    "ModuleList",
    "ReLU", "Tanh", "Sigmoid", "Dropout", "CrossEntropyLoss", "MSELoss",
]
