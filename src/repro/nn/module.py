"""Module/Parameter machinery: registration, traversal, train/eval state."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for ``parameters()``,
    ``zero_grad()`` and ``state_dict()``.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    # -------------------------------------------------------------- #
    # attribute-based registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
            value.name = value.name or name
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -------------------------------------------------------------- #
    # traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- #
    # state
    # -------------------------------------------------------------- #
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            param.data = state[f"{prefix}{name}"].copy()
        for name in list(self._buffers):
            self.update_buffer(name, np.array(state[f"{prefix}{name}"], copy=True))
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # -------------------------------------------------------------- #
    # call protocol
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        inner = ", ".join(self._modules)
        return f"{type(self).__name__}({inner})"
