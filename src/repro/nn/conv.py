"""2-D convolution layer (NCHW)."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class Conv2d(Module):
    """Convolution with square kernels, used by the CIFAR-style ResNets.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Standard convolution arithmetic.
    bias:
        ResNets here follow the paper's architecture and disable conv bias
        in favor of BatchNorm.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = False,
                 seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        c_out, c_in, k, _ = self.weight.shape
        return (f"Conv2d({c_in}, {c_out}, kernel={k}, stride={self.stride}, "
                f"pad={self.padding})")
