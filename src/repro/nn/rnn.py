"""LSTM cell and multi-layer LSTM, the workhorse of the paper's RNN tasks."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class LSTMCell(Module):
    """Single LSTM step with fused gate matrices.

    Gate layout along the output dimension is ``[input, forget, cell, output]``,
    mirroring cuDNN/PyTorch. Forget-gate bias starts at 1 (standard practice
    for stable early training).
    """

    def __init__(self, input_size: int, hidden_size: int, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            xavier_uniform((4 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(np.concatenate(
            [orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
            axis=0))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(N, input_size)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        gates = F.linear(x, self.weight_ih) + F.linear(h_prev, self.weight_hh) \
            + self.bias
        hs = self.hidden_size
        i = gates[:, 0:hs].sigmoid()
        f = gates[:, hs:2 * hs].sigmoid()
        g = gates[:, 2 * hs:3 * hs].tanh()
        o = gates[:, 3 * hs:4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def zero_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class RNNCell(Module):
    """Elman recurrence ``h' = act(W_ih x + W_hh h + b)``.

    With ``activation="relu"`` and recurrent spectral norm above 1 this is
    the canonical exploding-gradient model (Pascanu et al., 2013) — used
    as the unstable-decoder stand-in for the paper's Table 1 / Figure 6
    experiments (the conv seq2seq's activations are likewise unbounded).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 activation: str = "tanh", seed=None):
        super().__init__()
        if activation not in ("tanh", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = new_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.activation = activation
        self.weight_ih = Parameter(xavier_uniform((hidden_size, input_size),
                                                  rng))
        self.weight_hh = Parameter(orthogonal((hidden_size, hidden_size),
                                              rng))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        pre = F.linear(x, self.weight_ih) + F.linear(h_prev, self.weight_hh) \
            + self.bias
        return pre.tanh() if self.activation == "tanh" else pre.relu()

    def zero_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRUCell(Module):
    """Gated Recurrent Unit step (Cho et al., 2014).

    Gate layout along the fused output dimension is ``[reset, update,
    candidate]``.  Included as a lighter recurrent substrate for tests and
    extensions; the paper's experiments all use LSTMs.
    """

    def __init__(self, input_size: int, hidden_size: int, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            xavier_uniform((3 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(np.concatenate(
            [orthogonal((hidden_size, hidden_size), rng) for _ in range(3)],
            axis=0))
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        hs = self.hidden_size
        gates_x = F.linear(x, self.weight_ih) + self.bias
        gates_h = F.linear(h_prev, self.weight_hh)
        r = (gates_x[:, 0:hs] + gates_h[:, 0:hs]).sigmoid()
        z = (gates_x[:, hs:2 * hs] + gates_h[:, hs:2 * hs]).sigmoid()
        n = (gates_x[:, 2 * hs:3 * hs] + r * gates_h[:, 2 * hs:3 * hs]).tanh()
        return (1.0 - z) * n + z * h_prev

    def zero_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class LSTM(Module):
    """Stack of :class:`LSTMCell` layers unrolled over time.

    Parameters
    ----------
    input_size:
        Feature dimension of inputs at each time step.
    hidden_size:
        Hidden units per layer (the paper's Table 3 uses 128–500).
    num_layers:
        Stack depth (2 for PTB/TS, 3 for WSJ in the paper).
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells: List[LSTMCell] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, seed=rng))
        # register cells as submodules
        for idx, cell in enumerate(cells):
            setattr(self, f"cell{idx}", cell)
        self.cells = cells

    def forward(self, x: Tensor,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Run the full sequence.

        Parameters
        ----------
        x: ``(T, N, input_size)`` time-major input.
        state: optional per-layer ``(h, c)`` initial state.

        Returns
        -------
        outputs: ``(T, N, hidden_size)`` top-layer hidden states.
        state: final per-layer states (detached from graph by the caller if
            truncated BPTT is desired).
        """
        seq_len, batch = x.shape[0], x.shape[1]
        if state is None:
            state = [cell.zero_state(batch) for cell in self.cells]
        outputs: List[Tensor] = []
        for t in range(seq_len):
            inp = x[t]
            new_state: List[Tuple[Tensor, Tensor]] = []
            for layer, cell in enumerate(self.cells):
                h, c = cell(inp, state[layer])
                new_state.append((h, c))
                inp = h
            state = new_state
            outputs.append(inp)
        from repro.autograd.tensor import stack
        return stack(outputs, axis=0), state

    @staticmethod
    def detach_state(state: List[Tuple[Tensor, Tensor]]
                     ) -> List[Tuple[Tensor, Tensor]]:
        """Cut the state from the graph for truncated BPTT."""
        return [(h.detach(), c.detach()) for h, c in state]
