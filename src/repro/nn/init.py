"""Weight initializers (Glorot/He/orthogonal) with explicit generators."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot uniform; fan computed as for dense/conv kernels."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal initializer, suited to ReLU networks (ResNets)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initializer, standard for recurrent weights."""
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:
        fan_out, fan_in = shape[0], shape[1]
    elif len(shape) == 4:  # conv: (C_out, C_in, KH, KW)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        raise ValueError(f"unsupported shape {shape}")
    return fan_in, fan_out
