"""Token embedding table."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used by the LSTM language models (PTB/TS/WSJ stand-ins) and by the
    Tied-LSTM variant of Fig. 11 where the same matrix also projects the
    output (Press & Wolf weight tying).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.max(initial=0) >= self.num_embeddings or indices.min(initial=0) < 0:
            raise IndexError("embedding index out of range")
        return F.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
