"""Free-running execution: genuine OS-scheduled asynchrony.

While the sequenced runtime (:mod:`repro.mp.runtime`) replays the
simulator's deterministic event schedule on real processes, the
free-running executor lets the processes *race*: each worker pulls the
current parameters, computes a gradient on its own loss stream, and
pushes it back; the coordinator services arrivals in true arrival
order and commits each gradient as it lands.  Staleness, worker mix,
and loss trajectories therefore emerge from real OS scheduling — the
nondeterminism the statistical side of the differential oracle
(:mod:`repro.mp.oracle`) quantifies against the simulator's replicate
distribution, and the workload the throughput benchmark measures.

Every worker shares the spec's seed — so all of them optimize the
*same* problem instance (workloads derive their dataset from the seed)
— and worker ``w`` starts ``w`` positions into the shared iid batch
stream, so concurrent workers draw staggered minibatch sequences
rather than identical ones, mirroring how the simulator's one shared
stream hands each read a fresh draw.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.mp.transport import TransportClosed
from repro.mp.worker import WorkerPool
from repro.obs.session import StepTimer

_IDLE_SLEEP = 0.0002


def free_run(spec, transport: str = "shm",
             ring_capacity: Optional[int] = None,
             timeout: float = 120.0) -> dict:
    """Run one spec's budget under genuine multi-process racing.

    Parameters
    ----------
    spec : ScenarioSpec
        Scenario supplying workload, optimizer, worker count, shard
        layout, and the ``reads`` budget (one committed update per
        read; delay models and fault plans are ignored — real
        scheduling replaces them).
    transport : str
        ``"shm"`` (default) or ``"socket"``.
    ring_capacity : int, optional
        Shared-memory ring size override.
    timeout : float
        Hard wall-clock bound; a wedged worker raises instead of
        hanging CI.

    Returns
    -------
    dict
        ``final_loss`` (mean of the last ``spec.smooth`` arrived
        losses), ``mean_loss``, ``mean_staleness``, ``reads``,
        ``updates``, ``wall_s``, ``reads_per_sec``, and the per-worker
        commit counts under ``worker_commits``.
    """
    from repro.mp.transport import DEFAULT_RING_CAPACITY
    from repro.utils.deprecation import internal_calls
    from repro.xp.factories import build_optimizer
    from repro.xp.workloads import build_workload
    from repro.sim.parameter_server import ShardedParameterServer

    seed = spec.resolved_seed()
    model, _ = build_workload(spec.workload, **spec.workload_params)(seed)
    optimizer = build_optimizer(spec.optimizer, model.parameters(),
                                **spec.optimizer_params)
    with internal_calls():
        server = ShardedParameterServer(
            model, optimizer, num_shards=spec.num_shards,
            policy=spec.shard_policy, seed=seed)
    reads = int(spec.reads)
    pool = WorkerPool(
        spec.workers, key=f"free:{spec.content_hash()[:16]}:{seed}",
        workload=spec.workload, workload_params=spec.workload_params,
        seed=seed, transport=transport, mode="free",
        stream_offsets=list(range(spec.workers)),
        ring_capacity=(DEFAULT_RING_CAPACITY if ring_capacity is None
                       else ring_capacity))
    losses, staleness = [], []
    worker_commits = [0] * spec.workers
    granted = 0
    committed = 0
    read_version = {}
    stopped = [False] * spec.workers
    timer = StepTimer(f"free_run:{spec.name}", cat="mp.backend").start()
    try:
        while not all(stopped):
            if timer.elapsed > timeout:
                raise TimeoutError(
                    f"free run exceeded {timeout:.0f}s "
                    f"({committed}/{reads} commits)")
            progress = False
            for wid, worker in enumerate(pool.workers):
                if stopped[wid] or worker.transport is None:
                    continue
                try:
                    message = worker.transport.try_recv()
                except TransportClosed:
                    raise RuntimeError(
                        f"worker {wid} died mid free run")
                if message is None:
                    continue
                progress = True
                cmd = message.get("cmd")
                if cmd == "error":
                    raise RuntimeError(
                        f"worker {wid} failed:\n{message.get('error')}")
                if cmd == "pull":
                    if granted < reads:
                        granted += 1
                        read_version[wid] = server.steps_applied
                        worker.transport.send(
                            {"cmd": "params",
                             "params": [p.data
                                        for p in optimizer.params]})
                    else:
                        worker.transport.send({"cmd": "stop"})
                        stopped[wid] = True
                elif cmd == "push":
                    losses.append(float(message["loss"]))
                    server.push(message["grads"], step=committed)
                    server.apply_one(pos=0)
                    staleness.append(
                        server.steps_applied - 1 - read_version[wid])
                    worker_commits[wid] += 1
                    committed += 1
                    worker.transport.send({"cmd": "ok"})
                else:
                    raise RuntimeError(
                        f"worker {wid} sent unexpected {cmd!r}")
            if not progress:
                time.sleep(_IDLE_SLEEP)
    finally:
        pool.close()
    wall = timer.stop(workers=spec.workers)
    smooth = max(1, min(int(spec.smooth), len(losses)))
    tail = losses[-smooth:]
    return {
        "final_loss": sum(tail) / len(tail),
        "mean_loss": sum(losses) / max(1, len(losses)),
        "mean_staleness": (sum(staleness) / max(1, len(staleness))),
        "reads": committed,
        "updates": server.steps_applied,
        "wall_s": wall,
        "reads_per_sec": committed / wall if wall > 0 else 0.0,
        "worker_commits": worker_commits,
    }
