"""The ``mp`` execution backend: real processes behind ``repro.run``.

Registers the multi-process parameter server as the fifth execution
backend.  Records honor the same contract as every other backend —
bit-identical to :func:`repro.run.backends.execute_scalar` for the
same spec — because the sequenced runtime replays the simulator's
deterministic event schedule on real worker processes (see
:mod:`repro.mp.runtime`).  The environment block additionally records
``mp_transport`` and ``mp_workers`` so a record always says whether
real processes produced it (``env`` is excluded from the identity the
bit-equality tests compare).

The backend is capability-gated: it is only registered on platforms
where :func:`repro.mp.worker.mp_available` holds, and auto-selection
never picks it — real processes are strictly opt-in via
``run(..., backend="mp")`` or the CLI's ``--backend mp``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mp.runtime import build_mp_runtime
from repro.obs.session import StepTimer
from repro.run.backends import BackendCapabilities, ExecutionBackend
from repro.run.result import RunOptions
from repro.xp.runner import ScenarioResult, summarize_log
from repro.xp.spec import ScenarioSpec

#: Transports the backend accepts via ``RunOptions`` extension.
TRANSPORT_CHOICES = ("shm", "socket")


def execute_scalar_mp(spec: ScenarioSpec, transport: str = "shm"):
    """Execute one single-replicate spec on real worker processes.

    The multi-process mirror of
    :func:`repro.run.backends.execute_scalar`: identical build path,
    identical budgets, identical summarization — only the gradient
    computations happen in real worker processes.  On the same machine
    and NumPy build the returned record's identity (name, spec hash,
    metrics, series) is bit-identical to the scalar reference.

    Parameters
    ----------
    spec : ScenarioSpec
        A scenario with ``replicates == 1``.
    transport : str
        ``"shm"`` or ``"socket"``.

    Returns
    -------
    ScenarioResult
    """
    from repro.bench.report import environment_info

    runtime = build_mp_runtime(spec, transport=transport)
    try:
        with StepTimer(f"scenario:{spec.name}", cat="mp.backend") as timer:
            log = runtime.run(reads=spec.reads, updates=spec.updates)
        wall = timer.elapsed
        metrics, series = summarize_log(spec, log, runtime.reads_done,
                                        runtime.updates_done,
                                        runtime.diverged)
    finally:
        runtime.close()
    env = environment_info()
    env["seed"] = spec.resolved_seed()
    env["mp_transport"] = transport
    env["mp_workers"] = spec.workers
    return ScenarioResult(name=spec.name, spec_hash=spec.content_hash(),
                          metrics=metrics, series=series, env=env,
                          wall_s=wall)


class MPBackend(ExecutionBackend):
    """Real multi-process parameter-server backend.

    Each simulated worker is an actual OS process computing gradients
    over a shared-memory or socket transport; injected faults SIGKILL
    and respawn real PIDs.  Scheduling stays sequenced by the
    deterministic event queue, so records are bit-identical to the
    ``serial`` reference — the property the differential oracle
    (:mod:`repro.mp.oracle`) enforces.  Replicated specs run one
    sequenced multi-process execution per replicate seed and aggregate
    exactly as the serial replicate path does.

    Parameters
    ----------
    transport : str
        ``"shm"`` (default) or ``"socket"`` for every spawned channel.
    """

    name = "mp"

    def __init__(self, transport: str = "shm"):
        if transport not in TRANSPORT_CHOICES:
            raise ValueError(
                f"unknown transport {transport!r}; choose from "
                f"{TRANSPORT_CHOICES}")
        self.transport = transport

    def capabilities(self) -> BackendCapabilities:
        """Cluster-class features on real processes; never auto-picked."""
        return BackendCapabilities(cluster_features=True,
                                   subprocess=True, real_processes=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Run every spec, in order, on real worker processes."""
        return [self._execute_one(spec) for spec in specs]

    def _execute_one(self, spec: ScenarioSpec):
        from repro.bench.report import environment_info
        from repro.registry import registry

        if spec.replicates == 1:
            return execute_scalar_mp(spec, transport=self.transport)
        timer = StepTimer(f"replicated:{spec.name}",
                          cat="mp.backend").start()
        per_metrics, series = [], {}
        for r in range(spec.replicates):
            result = execute_scalar_mp(spec.replicate_spec(r),
                                       transport=self.transport)
            per_metrics.append(result.metrics)
            if r == 0:
                series = result.series
        wall = timer.stop(replicates=spec.replicates)
        env = environment_info()
        env["seed"] = spec.replicate_seeds()[0]
        env["mp_transport"] = self.transport
        env["mp_workers"] = spec.workers
        aggregate = registry.get("aggregator", "replicate_stats").factory()
        return ScenarioResult(
            name=spec.name, spec_hash=spec.content_hash(),
            metrics=aggregate(per_metrics), series=series,
            replicate_metrics=per_metrics, env=env, wall_s=wall)
