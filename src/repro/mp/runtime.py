"""Sequenced multi-process runtime: real workers, simulated clock.

:class:`MPClusterRuntime` subclasses the deterministic
:class:`~repro.cluster.runtime.ClusterRuntime` and overrides exactly
three hooks:

- ``_compute_gradient`` ships each read to the real worker process
  playing that cluster worker (parameters out, loss + gradient back
  over the transport) instead of computing in-process;
- ``_on_worker_crash`` SIGKILLs the worker's OS process the moment the
  fault injector decides the crash — a *real* crash, not an event;
- ``_on_worker_restart`` respawns a fresh process when the restart
  event lands; the newcomer resynchronizes its loss stream by absolute
  read position, so it produces exactly the gradients the crashed
  process would have.

Everything else — event queue, delays, fault draws, sharded server,
staleness gates, checkpointing — is inherited verbatim.  Because the
worker processes hold no authoritative state (parameters are shipped
per read, loss streams are positional), the trajectory is bit-identical
to the simulator's on the same machine, and ``state_dict`` /
``load_state_dict`` checkpoints transfer between the two runtimes in
either direction.

The parent's own ``loss_fn`` is *never called* in this runtime — the
real workers own the loss stream — so loader-backed closure state on
the parent side stays at position zero (documented in
``docs/mp_backend.md``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.runtime import ClusterRuntime, ClusterWorker
from repro.mp.worker import WorkerPool


class MPClusterRuntime(ClusterRuntime):
    """The event-driven cluster runtime over real worker processes.

    Parameters
    ----------
    model, optimizer, loss_fn:
        As for :class:`~repro.cluster.runtime.ClusterRuntime`; the
        parent keeps the authoritative parameters and the optimizer
        committing updates, while ``loss_fn`` is retained only for
        interface compatibility (real workers evaluate their own
        copies of the stream).
    pool : WorkerPool
        One real process per simulated worker, in ``"sequenced"``
        mode; the runtime takes ownership (``close()`` stops it).
    **kwargs
        Forwarded to :class:`~repro.cluster.runtime.ClusterRuntime`
        (workers, delay_model, num_shards, shard_policy,
        queue_staleness, delivery, faults, hooks, log, seed).
    """

    def __init__(self, model, optimizer, loss_fn, *, pool: WorkerPool,
                 **kwargs):
        super().__init__(model, optimizer, loss_fn, **kwargs)
        if len(pool.workers) != len(self.workers):
            raise ValueError(
                f"pool has {len(pool.workers)} processes for "
                f"{len(self.workers)} simulated workers")
        self.pool = pool

    def _compute_gradient(self, worker: ClusterWorker,
                          step: int) -> Tuple[float, List]:
        """Route read ``step`` to ``worker``'s real process."""
        params = [p.data for p in self.optimizer.params]
        return self.pool.compute(worker.worker_id, step, params)

    def _on_worker_crash(self, worker_id: int) -> None:
        """Realize the injector's decision: SIGKILL the process."""
        self.pool.kill(worker_id)

    def _on_worker_restart(self, worker_id: int) -> None:
        """Bring the worker back as a fresh OS process."""
        self.pool.respawn(worker_id)

    def close(self) -> None:
        """Stop every worker process and release transport endpoints."""
        self.pool.close()

    def __enter__(self) -> "MPClusterRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"MPClusterRuntime(workers={len(self.workers)}, "
                f"pids={self.pool.pids()}, clock={self.clock:.3g}, "
                f"reads={self.reads_done}, "
                f"updates={self.server.steps_applied})")


def build_mp_runtime(spec, transport: str = "shm",
                     ring_capacity: int = None) -> MPClusterRuntime:
    """Construct a ready-to-run :class:`MPClusterRuntime` from a spec.

    Mirrors the build path of
    :func:`repro.run.backends.execute_scalar` — same workload,
    optimizer, delay model, fault injector, and seed derivation — and
    spawns one real worker process per simulated worker.  The caller
    owns ``close()`` (or use the runtime as a context manager).

    Parameters
    ----------
    spec : ScenarioSpec
        A single-replicate scenario.
    transport : str
        ``"shm"`` (default) or ``"socket"``.
    ring_capacity : int, optional
        Shared-memory ring size override (for large models).

    Returns
    -------
    MPClusterRuntime
    """
    from repro.mp.transport import DEFAULT_RING_CAPACITY
    from repro.utils.deprecation import internal_calls
    from repro.xp.factories import (build_delay_model,
                                    build_fault_injector, build_optimizer)
    from repro.xp.workloads import build_workload

    if spec.replicates != 1:
        raise ValueError(
            f"build_mp_runtime needs replicates == 1, got "
            f"{spec.replicates}; use repro.mp.backend.MPBackend")
    seed = spec.resolved_seed()
    model, loss_fn = build_workload(
        spec.workload, **spec.workload_params)(seed)
    optimizer = build_optimizer(spec.optimizer, model.parameters(),
                                **spec.optimizer_params)
    pool = WorkerPool(
        spec.workers, key=f"{spec.content_hash()[:16]}:{seed}",
        workload=spec.workload, workload_params=spec.workload_params,
        seed=seed, transport=transport, mode="sequenced",
        ring_capacity=(DEFAULT_RING_CAPACITY if ring_capacity is None
                       else ring_capacity))
    try:
        with internal_calls():
            return MPClusterRuntime(
                model, optimizer, loss_fn, pool=pool,
                workers=spec.workers,
                delay_model=build_delay_model(spec.delay),
                num_shards=spec.num_shards,
                shard_policy=spec.shard_policy,
                queue_staleness=spec.queue_staleness,
                delivery=spec.delivery,
                faults=build_fault_injector(spec.faults), seed=seed)
    except Exception:
        pool.close()
        raise
