"""Binary message framing for the multi-process transports.

A message is an arbitrary nested tree of dicts / lists / tuples with
scalar leaves and NumPy arrays — the same value class the checkpoint
codec of :mod:`repro.utils.serialization` preserves.  The wire format
keeps array payloads as raw bytes (bit-exact for every dtype,
non-finite floats included, and cheap for gradient-sized buffers)
while the structural remainder rides in a JSON header encoded with
the existing tagged state codec:

``MAGIC | uint32 header length | header JSON | buffer 0 | buffer 1 …``

Arrays are pulled out of the tree in deterministic depth-first order
and replaced by ``{"__buf__": index, "dtype": ..., "shape": ...,
"order": ...}`` descriptors; :func:`decode_message` re-slices the raw
region by the recorded dtype/shape/order and substitutes writable
copies back into the tree.  Memory order ("C" vs Fortran) is
preserved, not just values: NumPy reductions traverse memory order,
so a layout change would shift downstream sums by an ulp and break
the mp backend's bit-identity oracle.  Everything else (tuples, ``None``, NaN/inf floats, NumPy
scalars) round-trips through ``encode_state`` / ``decode_state``
exactly as checkpoints do.
"""

from __future__ import annotations

import json
import struct
import time
from typing import List, Tuple

import numpy as np

from repro.obs.session import active as _obs_active
from repro.utils.serialization import decode_state, encode_state

#: Wire-format magic + version prefix of every frame.
MAGIC = b"RMP1"

_BUF_TAG = "__buf__"
_LEN = struct.Struct(">I")


def _strip_arrays(node, buffers: List[np.ndarray]):
    """Replace every ndarray in the tree by a buffer descriptor.

    Memory *order* is part of the round-trip contract, not just the
    values: NumPy reductions (``np.sum``, pairwise summation) traverse
    arrays in memory order, so shipping an F-ordered gradient as a
    C-ordered copy would change downstream floating-point results by
    an ulp — enough to break the mp backend's bit-identity oracle.
    Fortran-ordered arrays are therefore sent as their raw F-order
    bytes and rebuilt F-ordered on the other side.
    """
    if isinstance(node, np.ndarray):
        if (node.ndim > 1 and node.flags.f_contiguous
                and not node.flags.c_contiguous):
            order = "F"
            arr = np.ascontiguousarray(node.T)  # C bytes of the
        else:                                   # transpose = F bytes
            order = "C"
            arr = np.ascontiguousarray(node)
        index = len(buffers)
        buffers.append(arr)
        return {_BUF_TAG: index, "dtype": str(node.dtype),
                "shape": list(node.shape), "order": order}
    if isinstance(node, dict):
        for key in node:
            if key == _BUF_TAG:
                raise ValueError(
                    f"message dict key {key!r} collides with the "
                    "buffer tag")
        return {key: _strip_arrays(value, buffers)
                for key, value in node.items()}
    if isinstance(node, tuple):
        return tuple(_strip_arrays(value, buffers) for value in node)
    if isinstance(node, list):
        return [_strip_arrays(value, buffers) for value in node]
    return node


def _substitute_buffers(node, buffers: List[np.ndarray]):
    """Inverse of :func:`_strip_arrays` on a decoded header tree."""
    if isinstance(node, dict):
        if set(node) == {_BUF_TAG, "dtype", "shape", "order"}:
            return buffers[node[_BUF_TAG]]
        return {key: _substitute_buffers(value, buffers)
                for key, value in node.items()}
    if isinstance(node, tuple):
        return tuple(_substitute_buffers(value, buffers)
                     for value in node)
    if isinstance(node, list):
        return [_substitute_buffers(value, buffers) for value in node]
    return node


def encode_message(obj) -> bytes:
    """Serialize a message tree into one binary frame.

    Parameters
    ----------
    obj : object
        Nested dicts / lists / tuples with scalar or ndarray leaves.

    Returns
    -------
    bytes
        A self-delimiting frame (:data:`MAGIC`, header length, JSON
        header, concatenated raw array bytes).
    """
    session = _obs_active()
    if session is not None and session.profiler is not None:
        start = time.perf_counter()
        frame = _encode_message(obj)
        session.profiler.add("mp.codec.encode",
                             time.perf_counter() - start)
        return frame
    return _encode_message(obj)


def _encode_message(obj) -> bytes:
    """The un-instrumented frame assembly behind :func:`encode_message`."""
    buffers: List[np.ndarray] = []
    stripped = _strip_arrays(obj, buffers)
    header = json.dumps(encode_state(stripped), separators=(",", ":"),
                        allow_nan=False).encode("utf-8")
    parts = [MAGIC, _LEN.pack(len(header)), header]
    parts.extend(arr.tobytes() for arr in buffers)
    return b"".join(parts)


def decode_message(frame: bytes):
    """Inverse of :func:`encode_message`.

    Returns
    -------
    object
        The original message tree; array leaves come back as fresh
        writable ndarrays with the recorded dtype and shape, bit-for-
        bit equal to what was sent.

    Raises
    ------
    ValueError
        On a malformed frame (bad magic, truncated header or payload).
    """
    session = _obs_active()
    if session is not None and session.profiler is not None:
        start = time.perf_counter()
        message = _decode_message(frame)
        session.profiler.add("mp.codec.decode",
                             time.perf_counter() - start)
        return message
    return _decode_message(frame)


def _decode_message(frame: bytes):
    """The un-instrumented frame parsing behind :func:`decode_message`."""
    if frame[:4] != MAGIC:
        raise ValueError(
            f"bad frame magic {frame[:4]!r} (expected {MAGIC!r})")
    (header_len,) = _LEN.unpack_from(frame, 4)
    header_end = 8 + header_len
    if len(frame) < header_end:
        raise ValueError("truncated frame header")
    stripped = decode_state(
        json.loads(frame[8:header_end].decode("utf-8")))

    descriptors: List[Tuple[int, str, tuple, str]] = []

    def collect(node):
        if isinstance(node, dict):
            if set(node) == {_BUF_TAG, "dtype", "shape", "order"}:
                descriptors.append((node[_BUF_TAG], node["dtype"],
                                    tuple(node["shape"]),
                                    node["order"]))
                return
            for value in node.values():
                collect(value)
        elif isinstance(node, (list, tuple)):
            for value in node:
                collect(value)

    collect(stripped)
    descriptors.sort()
    buffers: List[np.ndarray] = []
    offset = header_end
    for index, dtype, shape, order in descriptors:
        if index != len(buffers):
            raise ValueError(f"buffer index {index} out of order")
        if order not in ("C", "F"):
            raise ValueError(f"unknown buffer order {order!r}")
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dt.itemsize
        if len(frame) < offset + nbytes:
            raise ValueError("truncated frame payload")
        flat = np.frombuffer(frame, dtype=dt, count=count, offset=offset)
        arr = flat.reshape(shape, order=order).copy(order=order)
        buffers.append(arr)
        offset += nbytes
    return _substitute_buffers(stripped, buffers)
