"""Deterministic, collision-retrying endpoint allocation.

CI matrices and ``pytest-xdist`` runs start many test processes at
once; anything that binds a fixed port or shared-memory name flakes
the moment two of them race.  The helpers here derive endpoint names
*deterministically* from a caller-supplied key (typically a spec
content hash) together with the current PID, so:

- the same test in the same process always asks for the same endpoint
  (reproducible, debuggable),
- concurrent processes ask for *different* endpoints (no cross-process
  races by construction), and
- a genuine collision (stale segment, occupied port) bumps an attempt
  counter and retries on the next derived name instead of failing.

Used by :mod:`repro.mp.transport` for both the socket listener ports
and the shared-memory segment names.
"""

from __future__ import annotations

import hashlib
import os
import socket
from multiprocessing import shared_memory
from typing import Tuple

#: Inclusive lower bound of the derived port range (above the
#: ephemeral-adjacent registered range commonly squatted by services).
PORT_BASE = 30000

#: Size of the derived port range.
PORT_SPAN = 20000

#: Default number of derivation attempts before giving up.
MAX_ATTEMPTS = 64


def _digest(key: str, pid: int, attempt: int) -> str:
    return hashlib.sha256(
        f"{key}:{pid}:{attempt}".encode("utf-8")).hexdigest()


def derive_port(key: str, attempt: int = 0,
                pid: int = None) -> int:
    """Deterministic localhost port for ``key`` at ``attempt``.

    Parameters
    ----------
    key : str
        Stable identity of the channel (e.g. spec hash + worker id).
    attempt : int
        Collision-retry counter; each value maps to a distinct port.
    pid : int, optional
        Process id mixed into the derivation (defaults to the calling
        process's own), so concurrent test processes never derive the
        same port for the same key.

    Returns
    -------
    int
        A port in ``[PORT_BASE, PORT_BASE + PORT_SPAN)``.
    """
    pid = os.getpid() if pid is None else int(pid)
    return PORT_BASE + int(_digest(key, pid, attempt)[:8], 16) % PORT_SPAN


def derive_shm_name(key: str, attempt: int = 0,
                    pid: int = None) -> str:
    """Deterministic shared-memory segment name for ``key``.

    Same derivation contract as :func:`derive_port`: stable per
    (key, pid, attempt), distinct across concurrent processes.  Names
    stay short — some platforms cap POSIX shm names around 30 chars.
    """
    pid = os.getpid() if pid is None else int(pid)
    return f"repro_{_digest(key, pid, attempt)[:12]}_{attempt}"


def allocate_listener(key: str, host: str = "127.0.0.1",
                      attempts: int = MAX_ATTEMPTS
                      ) -> Tuple[socket.socket, int]:
    """Bind a listening TCP socket on a deterministically derived port.

    Walks the attempt sequence of :func:`derive_port` until a bind
    succeeds, so a port squatted by another process costs one retry
    instead of a CI flake.

    Returns
    -------
    (socket, port) : tuple
        The listening socket (``listen(1)`` already called) and its
        port.

    Raises
    ------
    OSError
        When every derived port in ``attempts`` tries is taken.
    """
    last_error = None
    for attempt in range(attempts):
        port = derive_port(key, attempt)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(1)
            return sock, port
        except OSError as exc:
            sock.close()
            last_error = exc
    raise OSError(
        f"no free derived port for key {key!r} after {attempts} "
        f"attempts (last: {last_error})")


def allocate_shm(key: str, size: int,
                 attempts: int = MAX_ATTEMPTS
                 ) -> shared_memory.SharedMemory:
    """Create a shared-memory segment under a derived name.

    Walks the attempt sequence of :func:`derive_shm_name` past any
    already-existing segment (a stale leftover or a concurrent test),
    mirroring :func:`allocate_listener`'s retry contract.

    Returns
    -------
    multiprocessing.shared_memory.SharedMemory
        A freshly created segment of at least ``size`` bytes; the
        caller owns ``close()`` + ``unlink()``.

    Raises
    ------
    OSError
        When every derived name in ``attempts`` tries exists.
    """
    last_error = None
    for attempt in range(attempts):
        name = derive_shm_name(key, attempt)
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError as exc:
            last_error = exc
    raise OSError(
        f"no free derived shm name for key {key!r} after {attempts} "
        f"attempts (last: {last_error})")


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The creating process keeps sole unlink responsibility.  Workers
    are forked, so they share the parent's ``resource_tracker``
    process: the attach-side registration lands in the same tracker
    set the parent's creation already populated (a no-op), and the
    parent's ``unlink`` clears it exactly once.  Explicitly
    unregistering here would strip the *parent's* entry from the
    shared tracker — the inverse of the spawn-world ``SharedMemory``
    footgun — so the attachment is deliberately left as-is.
    """
    return shared_memory.SharedMemory(name=name)
