"""Real multi-process parameter server, with the simulator as oracle.

``repro.mp`` turns the deterministic :mod:`repro.cluster` simulation
into an actual system: worker *processes* compute gradients against
the sharded parameter server over a shared-memory or socket transport,
injected faults SIGKILL real PIDs, and the simulator doubles as a
differential oracle for the whole thing.

Layers (bottom up):

- :mod:`repro.mp.endpoints` — deterministic, collision-retrying port
  and shared-memory-name allocation (CI-race-proof by construction);
- :mod:`repro.mp.codec` — binary message framing (JSON header + raw
  array payloads, bit-exact for every dtype and non-finite floats);
- :mod:`repro.mp.transport` — socket framing and seqlock-style
  shared-memory rings behind one blocking/polling interface;
- :mod:`repro.mp.worker` — the worker child loops and the parent-side
  process pool (spawn / SIGKILL / respawn);
- :mod:`repro.mp.runtime` — the sequenced runtime: the simulator's
  event loop driving real processes, bit-identical trajectories;
- :mod:`repro.mp.freerun` — genuine free-running asynchrony for
  statistical comparison and throughput measurement;
- :mod:`repro.mp.backend` — the ``backend="mp"`` plug into
  :func:`repro.run.run` (registered only where
  :func:`mp_available` holds);
- :mod:`repro.mp.oracle` — the differential harness: bit-identity
  under sequenced scheduling, CI95 equivalence under real scheduling.

See ``docs/mp_backend.md`` for the transport wire format, the oracle
contract, and failure semantics.
"""

from repro.mp.backend import MPBackend, execute_scalar_mp
from repro.mp.codec import decode_message, encode_message
from repro.mp.endpoints import (allocate_listener, allocate_shm,
                                derive_port, derive_shm_name)
from repro.mp.freerun import free_run
from repro.mp.oracle import (assert_bit_identical, differential_check,
                             statistical_check)
from repro.mp.runtime import MPClusterRuntime, build_mp_runtime
from repro.mp.transport import (SharedMemoryTransport, SocketTransport,
                                Transport, TransportClosed,
                                TransportTimeout)
from repro.mp.worker import (WorkerPool, WorkerProcess, mp_available,
                             worker_main)

__all__ = [
    "MPBackend",
    "MPClusterRuntime",
    "SharedMemoryTransport",
    "SocketTransport",
    "Transport",
    "TransportClosed",
    "TransportTimeout",
    "WorkerPool",
    "WorkerProcess",
    "allocate_listener",
    "allocate_shm",
    "assert_bit_identical",
    "build_mp_runtime",
    "decode_message",
    "derive_port",
    "derive_shm_name",
    "differential_check",
    "encode_message",
    "execute_scalar_mp",
    "free_run",
    "mp_available",
    "statistical_check",
    "worker_main",
]
