"""Real worker processes: child loops and the parent-side pool.

A worker process rebuilds the spec's workload from its seed and serves
gradient computations over a transport channel.  Two child loops:

- **sequenced** (:func:`worker_main` with ``mode="sequenced"``) — the
  coordinator drives the deterministic event schedule and sends
  ``{"cmd": "compute", "step": k, "params": [...]}`` requests; the
  worker *resynchronizes its loss stream by absolute position* (it
  replays forward-only evaluations from its current position up to
  ``k``) before loading the received parameters and running the real
  forward/backward.  Position-based resync is what makes killed and
  respawned workers self-healing: a fresh process skips straight to
  the requested read and produces bit-identical gradients.
- **free** (``mode="free"``) — the worker races the others for real:
  pull current parameters, compute on its own stream, push the
  gradient, repeat until the coordinator says stop.  Arrival order is
  genuine OS scheduling — the nondeterminism the statistical oracle
  quantifies.

Both loops require *forward-pure* workloads: evaluating the loss
closure must advance its data stream identically regardless of the
current parameter values (true for every built-in workload; dropout
or batch-norm running statistics would break the contract and are out
of scope — see ``docs/mp_backend.md``).

The parent-side :class:`WorkerProcess` / :class:`WorkerPool` own
process lifecycle: spawn, graceful stop, hard SIGKILL (real crash
injection), and respawn with fresh deterministically derived
endpoints.
"""

from __future__ import annotations

import os
import signal
import traceback
from typing import List, Optional, Tuple

from repro.mp.endpoints import allocate_listener, allocate_shm
from repro.mp.transport import (DEFAULT_RING_CAPACITY, DEFAULT_TIMEOUT,
                                SharedMemoryTransport, SocketTransport,
                                Transport, TransportClosed,
                                shm_segment_size)
from repro.obs.session import active as _obs_active


def _obs_lifecycle(kind: str, worker_id: int, generation: int) -> None:
    """Record a worker lifecycle event on the active obs session.

    Emits an instant (category ``mp.worker``) and bumps the matching
    ``mp.worker_<kind>s`` counter — spawn after the ready handshake,
    kill at SIGKILL time, respawn when the fresh process is up.
    """
    session = _obs_active()
    if session is None:
        return
    if session.tracer is not None:
        session.tracer.instant(f"worker.{kind}", "mp.worker",
                               worker=worker_id, generation=generation)
    if session.metrics is not None:
        session.metrics.counter(f"mp.worker_{kind}s").inc()

#: Transport kinds the pool can set up.
TRANSPORTS = ("shm", "socket")

#: Seconds a graceful stop waits before escalating to SIGKILL.
STOP_GRACE = 2.0


def _fork_context():
    """The ``fork`` multiprocessing context the pool runs on."""
    import multiprocessing

    return multiprocessing.get_context("fork")


def mp_available() -> bool:
    """Whether this platform can run the multi-process backend.

    Requires the ``fork`` start method (cheap spawns that inherit the
    built workload registry) and POSIX shared memory; both hold on
    Linux/macOS CPython, neither on Windows' spawn-only runtime.
    """
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover — py>=3.8 always has it
        return False
    return True


def _connect_child(channel: tuple) -> Transport:
    """Open the child end of a channel spec produced by the parent."""
    kind = channel[0]
    if kind == "socket":
        import socket as socket_mod

        _, host, port = channel
        sock = socket_mod.create_connection((host, port),
                                            timeout=DEFAULT_TIMEOUT)
        return SocketTransport(sock)
    if kind == "shm":
        _, name, capacity = channel
        return SharedMemoryTransport.attach(name, ring_capacity=capacity)
    raise ValueError(f"unknown channel kind {kind!r}")


def _install_params(model, arrays) -> None:
    """Load received parameter values into the worker's local model."""
    params = model.parameters()
    if len(params) != len(arrays):
        raise ValueError(
            f"received {len(arrays)} parameter arrays for a model "
            f"with {len(params)} parameters")
    for param, arr in zip(params, arrays):
        if tuple(param.data.shape) != tuple(arr.shape):
            raise ValueError(
                f"parameter shape mismatch: {param.data.shape} vs "
                f"{arr.shape}")
        param.data = arr


def _compute(model, loss_fn) -> Tuple[float, list]:
    """One real forward/backward, mirroring the simulator's read."""
    model.zero_grad()
    loss = loss_fn()
    loss.backward()
    return float(loss.data), [p.grad for p in model.parameters()]


def _sequenced_loop(transport: Transport, model, loss_fn) -> None:
    position = 0
    while True:
        message = transport.recv(timeout=None)
        cmd = message["cmd"]
        if cmd == "stop":
            return
        if cmd != "compute":
            raise ValueError(f"unexpected command {cmd!r}")
        step = int(message["step"])
        if step < position:
            raise ValueError(
                f"loss stream cannot rewind: at {position}, "
                f"asked for {step}")
        # forward-only replay advances the data stream to `step`
        while position < step:
            loss_fn()
            position += 1
        _install_params(model, message["params"])
        loss_value, grads = _compute(model, loss_fn)
        position += 1
        transport.send({"cmd": "result", "loss": loss_value,
                        "grads": grads})


def _free_loop(transport: Transport, model, loss_fn,
               stream_offset: int = 0) -> None:
    # stagger this worker's position in the shared iid batch stream so
    # concurrent workers do not all draw the same batch at once
    for _ in range(stream_offset):
        loss_fn()
    while True:
        transport.send({"cmd": "pull"})
        message = transport.recv(timeout=None)
        if message["cmd"] == "stop":
            return
        _install_params(model, message["params"])
        loss_value, grads = _compute(model, loss_fn)
        transport.send({"cmd": "push", "loss": loss_value,
                        "grads": grads})
        ack = transport.recv(timeout=None)
        if ack["cmd"] == "stop":
            return


def worker_main(channel: tuple, workload: str, workload_params: dict,
                seed: int, mode: str = "sequenced",
                stream_offset: int = 0) -> None:
    """Entry point of a worker process.

    Connects the child end of ``channel``, rebuilds ``(model,
    loss_fn)`` from the named workload and seed, reports readiness,
    then serves the requested loop until told to stop.  Any exception
    is shipped back as an ``{"cmd": "error"}`` message before exit so
    the coordinator fails with the child's traceback instead of a
    timeout.  ``stream_offset`` staggers a free-mode worker's starting
    position in the loss stream (ignored in sequenced mode, where the
    coordinator's absolute step numbers place the stream exactly).
    """
    transport = _connect_child(channel)
    try:
        from repro.xp.workloads import build_workload

        model, loss_fn = build_workload(workload, **workload_params)(seed)
        transport.send({"cmd": "ready"})
        if mode == "sequenced":
            _sequenced_loop(transport, model, loss_fn)
        elif mode == "free":
            _free_loop(transport, model, loss_fn,
                       stream_offset=stream_offset)
        else:
            raise ValueError(f"unknown worker mode {mode!r}")
    except TransportClosed:  # parent went away: nothing to report to
        pass
    except Exception:
        try:
            transport.send({"cmd": "error",
                            "error": traceback.format_exc()})
        except Exception:  # pragma: no cover — peer already gone
            pass
    finally:
        transport.close()


class WorkerProcess:
    """Parent-side handle of one real worker process.

    Owns the channel endpoints and the OS process: spawn (fork),
    request/response compute calls, graceful stop, hard kill (the real
    crash the fault injector triggers), and respawn under a fresh
    generation of deterministically derived endpoints.

    Parameters
    ----------
    worker_id : int
        The cluster worker index this process plays.
    key : str
        Stable channel-identity prefix (typically the spec hash).
    workload, workload_params, seed:
        The workload the child rebuilds.
    transport : str
        ``"shm"`` or ``"socket"``.
    mode : str
        ``"sequenced"`` or ``"free"`` child loop.
    ring_capacity : int
        Per-direction shm ring bytes (ignored for sockets).
    stream_offset : int
        Free-mode loss-stream stagger (see :func:`worker_main`).
    """

    def __init__(self, worker_id: int, key: str, workload: str,
                 workload_params: dict, seed: int,
                 transport: str = "shm", mode: str = "sequenced",
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 stream_offset: int = 0):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from "
                f"{TRANSPORTS}")
        self.worker_id = int(worker_id)
        self.key = key
        self.workload = workload
        self.workload_params = dict(workload_params)
        self.seed = int(seed)
        self.transport_kind = transport
        self.mode = mode
        self.stream_offset = int(stream_offset)
        self.ring_capacity = int(ring_capacity)
        self.generation = 0
        self.transport: Optional[Transport] = None
        self._process = None
        self.spawn()

    # ------------------------------------------------------------- #
    # lifecycle
    # ------------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        """Whether the OS process is currently running."""
        return self._process is not None and self._process.is_alive()

    def _channel_key(self) -> str:
        return f"{self.key}/w{self.worker_id}/g{self.generation}"

    def spawn(self) -> None:
        """Start a fresh child process on fresh endpoints."""
        if self.alive:
            raise RuntimeError(
                f"worker {self.worker_id} already running")
        ctx = _fork_context()
        key = self._channel_key()
        self.generation += 1
        if self.transport_kind == "socket":
            listener, port = allocate_listener(key)
            channel = ("socket", "127.0.0.1", port)
            self._process = ctx.Process(
                target=worker_main,
                args=(channel, self.workload, self.workload_params,
                      self.seed, self.mode, self.stream_offset),
                daemon=True)
            self._process.start()
            listener.settimeout(DEFAULT_TIMEOUT)
            try:
                conn, _ = listener.accept()
            finally:
                listener.close()
            self.transport = SocketTransport(conn)
        else:
            segment = allocate_shm(
                key, shm_segment_size(self.ring_capacity))
            channel = ("shm", segment.name, self.ring_capacity)
            self.transport = SharedMemoryTransport(
                segment, role="parent",
                ring_capacity=self.ring_capacity, owns_segment=True)
            self._process = ctx.Process(
                target=worker_main,
                args=(channel, self.workload, self.workload_params,
                      self.seed, self.mode, self.stream_offset),
                daemon=True)
            self._process.start()
        ready = self.transport.recv()
        if ready.get("cmd") == "error":
            raise RuntimeError(
                f"worker {self.worker_id} failed to start:\n"
                f"{ready.get('error')}")
        if ready.get("cmd") != "ready":
            raise RuntimeError(
                f"worker {self.worker_id} bad handshake: {ready!r}")
        _obs_lifecycle("spawn", self.worker_id, self.generation)

    def kill(self) -> None:
        """SIGKILL the process — a *real* crash, not an event."""
        if self._process is not None and self._process.is_alive():
            os.kill(self._process.pid, signal.SIGKILL)
            self._process.join()
            _obs_lifecycle("kill", self.worker_id, self.generation)
        self._teardown()

    def respawn(self) -> None:
        """Restart after a crash (kills any survivor first)."""
        self.kill()
        self.spawn()
        _obs_lifecycle("respawn", self.worker_id, self.generation)

    def stop(self, grace: float = STOP_GRACE) -> None:
        """Graceful shutdown; escalates to SIGKILL after ``grace``."""
        if self.transport is not None and self.alive:
            try:
                self.transport.send({"cmd": "stop"})
            except (TransportClosed, ValueError):
                pass
        if self._process is not None:
            self._process.join(timeout=grace)
            if self._process.is_alive():
                os.kill(self._process.pid, signal.SIGKILL)
                self._process.join()
        self._teardown()

    def _teardown(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        self._process = None

    # ------------------------------------------------------------- #
    # sequenced-mode request/response
    # ------------------------------------------------------------- #
    def compute(self, step: int, params: list,
                timeout: float = DEFAULT_TIMEOUT) -> Tuple[float, list]:
        """Ship read ``step`` to the child; block for its gradient.

        Returns
        -------
        (loss_value, grads) : tuple
            Exactly what the simulator's in-process computation would
            produce, bit for bit.
        """
        if self.transport is None:
            raise RuntimeError(
                f"worker {self.worker_id} has no live process")
        self.transport.send({"cmd": "compute", "step": int(step),
                             "params": params})
        reply = self.transport.recv(timeout=timeout)
        if reply.get("cmd") == "error":
            raise RuntimeError(
                f"worker {self.worker_id} failed:\n{reply.get('error')}")
        return float(reply["loss"]), reply["grads"]


class WorkerPool:
    """One :class:`WorkerProcess` per simulated cluster worker.

    The coordinator-facing surface the multi-process runtime drives:
    ``compute`` routes a read to the right real process, ``kill`` /
    ``respawn`` realize fault-injector decisions on actual PIDs, and
    ``close`` tears every process down.  Usable as a context manager.
    """

    def __init__(self, workers: int, key: str, workload: str,
                 workload_params: dict, seed, transport: str = "shm",
                 mode: str = "sequenced",
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 stream_offsets=None):
        seeds = (list(seed) if isinstance(seed, (list, tuple))
                 else [int(seed)] * int(workers))
        if len(seeds) != workers:
            raise ValueError(
                f"{len(seeds)} seeds for {workers} workers")
        offsets = ([0] * int(workers) if stream_offsets is None
                   else [int(o) for o in stream_offsets])
        if len(offsets) != workers:
            raise ValueError(
                f"{len(offsets)} stream offsets for {workers} workers")
        self.workers: List[WorkerProcess] = []
        try:
            for worker_id in range(int(workers)):
                self.workers.append(WorkerProcess(
                    worker_id, key, workload, workload_params,
                    seeds[worker_id], transport=transport, mode=mode,
                    ring_capacity=ring_capacity,
                    stream_offset=offsets[worker_id]))
        except Exception:
            self.close()
            raise

    def compute(self, worker_id: int, step: int,
                params: list) -> Tuple[float, list]:
        """Sequenced-mode gradient computation on worker ``worker_id``."""
        return self.workers[worker_id].compute(step, params)

    def kill(self, worker_id: int) -> None:
        """SIGKILL one worker process (real crash injection)."""
        self.workers[worker_id].kill()

    def respawn(self, worker_id: int) -> None:
        """Bring a killed worker back as a fresh process."""
        self.workers[worker_id].respawn()

    def pids(self) -> List[Optional[int]]:
        """Live PIDs by worker (``None`` for dead workers)."""
        return [w._process.pid if w.alive else None
                for w in self.workers]

    def close(self) -> None:
        """Stop every worker process and release all endpoints."""
        for worker in self.workers:
            try:
                worker.stop()
            except Exception:  # pragma: no cover — best-effort teardown
                worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
