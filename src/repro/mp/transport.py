"""Message transports: TCP sockets and shared-memory rings.

Both transports move the binary frames of :mod:`repro.mp.codec`
between the coordinator and one worker process, behind one tiny
blocking/polling interface:

- :class:`SocketTransport` — length-prefixed frames over a connected
  localhost TCP socket; handles frames of any size and is the robust
  default for large models.
- :class:`SharedMemoryTransport` — a pair of single-producer /
  single-consumer byte rings in one ``multiprocessing.shared_memory``
  segment.  Reads are lock-free-ish in the seqlock style: the writer
  publishes payload bytes *before* advancing its monotone write
  counter, the reader only consumes up to the published counter and
  advances its own read counter afterwards, so neither side ever takes
  a lock and torn reads are impossible by construction (each byte
  region is owned by exactly one side between the counter updates).

Every blocking receive takes a timeout and raises
:class:`TransportTimeout` instead of wedging, so a hung or killed
worker process fails fast in CI.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Optional

import numpy as np

from repro.mp.codec import decode_message, encode_message
from repro.mp.endpoints import attach_shm
from repro.obs.session import active as _obs_active

_LEN = struct.Struct(">Q")

#: Default blocking-receive timeout (seconds).
DEFAULT_TIMEOUT = 60.0

#: Default per-direction ring capacity (bytes) of the shm transport.
DEFAULT_RING_CAPACITY = 1 << 20

_HEADER = 16           # two uint64 counters per ring
_SPIN_POLLS = 200      # busy polls before backing off to sleeps
_POLL_SLEEP = 0.0002


class TransportTimeout(TimeoutError):
    """A blocking transport receive ran past its deadline."""


class TransportClosed(ConnectionError):
    """The peer endpoint is gone (socket closed or process dead)."""


class Transport:
    """Interface both transports implement.

    ``send`` ships one message tree; ``recv`` blocks (bounded by
    ``timeout``) for the next one; ``try_recv`` polls without
    blocking, returning ``None`` when no complete message is ready —
    the primitive the free-running coordinator multiplexes over.
    """

    def send(self, obj) -> None:
        """Ship one message to the peer."""
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = DEFAULT_TIMEOUT):
        """Block until the next message arrives (or timeout)."""
        raise NotImplementedError

    def try_recv(self):
        """Return the next message if fully available, else ``None``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the endpoint's resources (idempotent)."""
        raise NotImplementedError


class SocketTransport(Transport):
    """Length-prefixed codec frames over a connected TCP socket.

    Parameters
    ----------
    sock : socket.socket
        A connected stream socket; the transport takes ownership.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = bytearray()
        self._closed = False

    def send(self, obj) -> None:
        """Ship one message (8-byte length prefix + frame)."""
        session = _obs_active()
        start = time.perf_counter() if session is not None else 0.0
        frame = encode_message(obj)
        try:
            self._sock.sendall(_LEN.pack(len(frame)) + frame)
        except OSError as exc:
            raise TransportClosed(f"peer socket gone: {exc}") from exc
        if session is not None and session.profiler is not None:
            session.profiler.add("mp.transport.socket.send",
                                 time.perf_counter() - start)

    def _parse(self):
        if len(self._buffer) < 8:
            return None
        (length,) = _LEN.unpack_from(self._buffer, 0)
        if len(self._buffer) < 8 + length:
            return None
        frame = bytes(self._buffer[8:8 + length])
        del self._buffer[:8 + length]
        return decode_message(frame)

    def _fill(self, timeout: Optional[float]) -> bool:
        """Read whatever is available within ``timeout`` seconds."""
        self._sock.settimeout(timeout)
        try:
            chunk = self._sock.recv(1 << 16)
        except socket.timeout:
            return False
        except OSError as exc:
            raise TransportClosed(f"peer socket gone: {exc}") from exc
        if not chunk:
            raise TransportClosed("peer closed the connection")
        self._buffer.extend(chunk)
        return True

    def recv(self, timeout: Optional[float] = DEFAULT_TIMEOUT):
        """Block for the next message, bounded by ``timeout``."""
        session = _obs_active()
        start = time.perf_counter() if session is not None else 0.0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            message = self._parse()
            if message is not None:
                if session is not None and session.profiler is not None:
                    session.profiler.add("mp.transport.socket.recv",
                                         time.perf_counter() - start)
                return message
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TransportTimeout(
                    f"no message within {timeout:.1f}s")
            self._fill(remaining)

    def try_recv(self):
        """Non-blocking poll: drain the socket, parse if complete."""
        message = self._parse()
        if message is not None:
            return message
        self._sock.settimeout(0.0)
        try:
            while True:
                chunk = self._sock.recv(1 << 16)
                if not chunk:
                    raise TransportClosed("peer closed the connection")
                self._buffer.extend(chunk)
        except (BlockingIOError, socket.timeout):
            pass
        except OSError as exc:
            raise TransportClosed(f"peer socket gone: {exc}") from exc
        return self._parse()

    def close(self) -> None:
        """Close the underlying socket."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover — close is best-effort
                pass


class _Ring:
    """One single-producer/single-consumer byte ring in shared memory.

    The first 16 bytes hold two monotone ``uint64`` counters (total
    bytes written, total bytes read); the remainder is the data
    region.  Payload bytes are stored before the write counter
    advances and consumed before the read counter advances — the
    seqlock-style publication protocol that makes unlocked
    cross-process reads safe.
    """

    def __init__(self, buffer: memoryview, capacity: int):
        self._counters = np.frombuffer(buffer[:_HEADER], dtype=np.uint64)
        self._data = np.frombuffer(buffer[_HEADER:_HEADER + capacity],
                                   dtype=np.uint8)
        self._capacity = capacity

    @property
    def _written(self) -> int:
        return int(self._counters[0])

    @property
    def _read(self) -> int:
        return int(self._counters[1])

    def _copy_in(self, payload: bytes, pos: int) -> None:
        start = pos % self._capacity
        end = start + len(payload)
        view = np.frombuffer(payload, dtype=np.uint8)
        if end <= self._capacity:
            self._data[start:end] = view
        else:
            split = self._capacity - start
            self._data[start:] = view[:split]
            self._data[:end - self._capacity] = view[split:]

    def _copy_out(self, pos: int, length: int) -> bytes:
        start = pos % self._capacity
        end = start + length
        if end <= self._capacity:
            return self._data[start:end].tobytes()
        split = self._capacity - start
        return (self._data[start:].tobytes()
                + self._data[:end - self._capacity].tobytes())

    def write(self, frame: bytes,
              deadline: Optional[float] = None) -> None:
        """Append one length-prefixed frame, blocking for ring space."""
        payload = _LEN.pack(len(frame)) + frame
        if len(payload) > self._capacity:
            raise ValueError(
                f"message of {len(payload)} bytes exceeds the ring "
                f"capacity {self._capacity}; raise ring_capacity or "
                "use the socket transport")
        polls = 0
        while self._capacity - (self._written - self._read) \
                < len(payload):
            polls += 1
            if deadline is not None and time.monotonic() > deadline:
                raise TransportTimeout("ring full past deadline")
            time.sleep(0 if polls < _SPIN_POLLS else _POLL_SLEEP)
        pos = self._written
        self._copy_in(payload, pos)
        # publish: counter store strictly after the payload store
        self._counters[0] = np.uint64(pos + len(payload))

    def try_read(self) -> Optional[bytes]:
        """Pop the next frame if fully published, else ``None``."""
        available = self._written - self._read
        if available < 8:
            return None
        pos = self._read
        (length,) = _LEN.unpack(self._copy_out(pos, 8))
        if available < 8 + length:
            return None
        frame = self._copy_out(pos + 8, length)
        # consume: counter store strictly after the payload copy
        self._counters[1] = np.uint64(pos + 8 + length)
        return frame


def shm_segment_size(ring_capacity: int) -> int:
    """Total segment bytes for a bidirectional channel."""
    return 2 * (_HEADER + ring_capacity)


class SharedMemoryTransport(Transport):
    """Bidirectional message channel over one shared-memory segment.

    The segment holds two independent SPSC rings — parent-to-child and
    child-to-parent — so each direction has exactly one producer and
    one consumer and no locking is needed.

    Parameters
    ----------
    segment : multiprocessing.shared_memory.SharedMemory
        The backing segment (sized by :func:`shm_segment_size`).
    role : str
        ``"parent"`` or ``"child"``; decides which ring is outbound.
    ring_capacity : int
        Per-direction data capacity in bytes.
    owns_segment : bool
        Whether :meth:`close` should also unlink the segment (true
        only for the creating side).
    """

    def __init__(self, segment, role: str,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 owns_segment: bool = False):
        if role not in ("parent", "child"):
            raise ValueError(f"unknown role {role!r}")
        self._segment = segment
        self._owns = owns_segment
        self._closed = False
        buf = segment.buf
        slot = _HEADER + ring_capacity
        ring_a = _Ring(buf[:slot], ring_capacity)
        ring_b = _Ring(buf[slot:2 * slot], ring_capacity)
        self._out, self._in = ((ring_a, ring_b) if role == "parent"
                               else (ring_b, ring_a))

    @classmethod
    def attach(cls, name: str,
               ring_capacity: int = DEFAULT_RING_CAPACITY
               ) -> "SharedMemoryTransport":
        """Attach the child end to a parent-created segment by name."""
        return cls(attach_shm(name), role="child",
                   ring_capacity=ring_capacity)

    def send(self, obj) -> None:
        """Ship one message through the outbound ring."""
        session = _obs_active()
        start = time.perf_counter() if session is not None else 0.0
        self._out.write(encode_message(obj),
                        deadline=time.monotonic() + DEFAULT_TIMEOUT)
        if session is not None:
            if session.profiler is not None:
                session.profiler.add("mp.transport.shm.send",
                                     time.perf_counter() - start)
            if session.metrics is not None:
                # occupancy after the write: bytes published and not
                # yet consumed by the peer (counters are reads only)
                session.metrics.gauge("mp.ring_occupancy").set(
                    self._out._written - self._out._read)

    def recv(self, timeout: Optional[float] = DEFAULT_TIMEOUT):
        """Block (spin, then sleep-poll) for the next inbound frame."""
        session = _obs_active()
        start = time.perf_counter() if session is not None else 0.0
        deadline = None if timeout is None else time.monotonic() + timeout
        polls = 0
        while True:
            frame = self._in.try_read()
            if frame is not None:
                if session is not None and session.profiler is not None:
                    session.profiler.add("mp.transport.shm.recv",
                                         time.perf_counter() - start)
                return decode_message(frame)
            polls += 1
            if deadline is not None and time.monotonic() > deadline:
                raise TransportTimeout(f"no message within {timeout:.1f}s")
            time.sleep(0 if polls < _SPIN_POLLS else _POLL_SLEEP)

    def try_recv(self):
        """Non-blocking poll of the inbound ring."""
        frame = self._in.try_read()
        return None if frame is None else decode_message(frame)

    def close(self) -> None:
        """Detach from the segment; the owner also unlinks it."""
        if self._closed:
            return
        self._closed = True
        # drop numpy views into the buffer before closing the segment
        self._out = self._in = None
        try:
            self._segment.close()
            if self._owns:
                self._segment.unlink()
        except (OSError, BufferError, FileNotFoundError):
            pass  # pragma: no cover — close is best-effort
