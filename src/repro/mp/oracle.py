"""Differential oracle: the simulator judges the real system.

Two complementary checks tie the multi-process backend to the
deterministic simulator, giving every simulation-backed claim in this
repo a tested bridge to real concurrency:

- **Bit-identity** (:func:`differential_check` /
  :func:`assert_bit_identical`): under the sequenced runtime the mp
  backend must reproduce the simulator's record *exactly* — every
  metric, every series value, bit for bit — for any spec, any fused
  optimizer, any shard count.  A single differing bit is a transport,
  codec, or scheduling bug.
- **Statistical equivalence** (:func:`statistical_check`): under
  genuine free-running scheduling (:mod:`repro.mp.freerun`) no single
  trajectory is reproducible, but the *distribution* must match the
  simulator's replicate distribution.  Both sides run ``R`` seeds; the
  check passes when the mp mean lies within the combined CI95 bands
  (simulator band from the existing
  :func:`repro.bench.report.replicate_statistics` machinery, mp band
  computed the same way).

Checks return plain-dict verdicts so tests can assert on them and
failures print the exact divergence.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.mp.backend import execute_scalar_mp
from repro.mp.freerun import free_run
from repro.xp.spec import ScenarioSpec


def _first_difference(serial_identity: dict, mp_identity: dict
                      ) -> Optional[str]:
    """Human-readable description of the first differing field."""
    for key in ("name", "spec_hash"):
        if serial_identity[key] != mp_identity[key]:
            return (f"{key}: {serial_identity[key]!r} != "
                    f"{mp_identity[key]!r}")
    s_metrics, m_metrics = (serial_identity["metrics"],
                            mp_identity["metrics"])
    for key in sorted(set(s_metrics) | set(m_metrics)):
        if key not in s_metrics or key not in m_metrics:
            return f"metric {key!r} present on one side only"
        if s_metrics[key] != m_metrics[key] and not (
                _both_nan(s_metrics[key], m_metrics[key])):
            return (f"metric {key!r}: sim {s_metrics[key]!r} != "
                    f"mp {m_metrics[key]!r}")
    s_series, m_series = serial_identity["series"], mp_identity["series"]
    for key in sorted(set(s_series) | set(m_series)):
        if key not in s_series or key not in m_series:
            return f"series {key!r} present on one side only"
        if len(s_series[key]) != len(m_series[key]):
            return (f"series {key!r} length: {len(s_series[key])} != "
                    f"{len(m_series[key])}")
        for i, (a, b) in enumerate(zip(s_series[key], m_series[key])):
            if a != b and not _both_nan(a, b):
                return (f"series {key!r}[{i}]: sim {a!r} != mp {b!r}")
    return None


def _both_nan(a, b) -> bool:
    try:
        return math.isnan(a) and math.isnan(b)
    except TypeError:
        return False


def differential_check(spec: ScenarioSpec,
                       transport: str = "shm") -> dict:
    """Run one spec through simulator and mp backend; compare records.

    Parameters
    ----------
    spec : ScenarioSpec
        A single-replicate scenario (sequenced mode is defined over
        the scalar reference semantics).
    transport : str
        ``"shm"`` or ``"socket"``.

    Returns
    -------
    dict
        ``{"match": bool, "difference": str or None,
        "sim": identity, "mp": identity}``.
    """
    from repro.run.backends import execute_scalar

    sim = execute_scalar(spec).identity()
    mp = execute_scalar_mp(spec, transport=transport).identity()
    difference = _first_difference(sim, mp)
    return {"match": difference is None, "difference": difference,
            "sim": sim, "mp": mp}


def assert_bit_identical(spec: ScenarioSpec,
                         transport: str = "shm") -> None:
    """Assert the mp backend reproduces the simulator bit-for-bit.

    Raises
    ------
    AssertionError
        Naming the first differing metric or series entry.
    """
    verdict = differential_check(spec, transport=transport)
    assert verdict["match"], (
        f"mp backend diverged from the simulator on "
        f"{spec.name!r} ({transport}): {verdict['difference']}")


def statistical_check(spec: ScenarioSpec, replicates: int = 8,
                      transport: str = "shm",
                      metric: str = "final_loss",
                      slack: float = 1.0) -> dict:
    """Compare free-running mp statistics to the simulator's bands.

    Parameters
    ----------
    spec : ScenarioSpec
        Base scenario (its ``replicates`` field is overridden).
    replicates : int
        Seeds per side.
    transport : str
        ``"shm"`` or ``"socket"``.
    metric : str
        Which free-run metric to compare (must also exist in the
        simulator record, e.g. ``"final_loss"``).
    slack : float
        Multiplier on the combined CI band (``1.0`` = plain combined
        CI95; tests may widen it for very small ``replicates``).

    Returns
    -------
    dict
        ``match`` plus both means, both CI95 half-widths, the absolute
        difference, and the tolerance actually applied.
    """
    from repro.run.backends import execute_spec

    rep_spec = spec.with_overrides({"replicates": int(replicates)})
    sim_result = execute_spec(rep_spec)
    sim_mean = sim_result.metrics[metric]
    sim_ci = sim_result.metrics.get(f"{metric}_ci95", 0.0)

    values = []
    for r in range(int(replicates)):
        outcome = free_run(rep_spec.replicate_spec(r),
                           transport=transport)
        values.append(float(outcome[metric]))
    mp_mean = sum(values) / len(values)
    if len(values) > 1:
        var = (sum((v - mp_mean) ** 2 for v in values)
               / (len(values) - 1))
        mp_ci = 1.96 * math.sqrt(var) / math.sqrt(len(values))
    else:
        mp_ci = 0.0
    tolerance = slack * (sim_ci + mp_ci)
    difference = abs(sim_mean - mp_mean)
    return {"match": difference <= tolerance, "metric": metric,
            "sim_mean": sim_mean, "sim_ci95": sim_ci,
            "mp_mean": mp_mean, "mp_ci95": mp_ci,
            "difference": difference, "tolerance": tolerance,
            "values": values}
