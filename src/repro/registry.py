"""Typed central registry for every pluggable component family.

Before PR 5, each subsystem grew its own name-to-factory dict —
optimizers and delay models in :mod:`repro.xp.factories`, workloads in
:mod:`repro.xp.workloads`, sharding policies in
:mod:`repro.sim.sharding`, batched twins in :mod:`repro.vec` — with
ad-hoc ``register_*`` / ``*_names`` / ``build_*`` triples and no shared
validation.  This module is the single store behind all of them:

- a component is ``(kind, name, factory, schema, description)``;
- the **kind** partitions the namespace (``"optimizer"``,
  ``"workload"``, ``"delay"``, ``"fault"``, ``"sharding"``,
  ``"aggregator"``, ``"vec_optimizer"``, ``"vec_workload"``,
  ``"backend"``, ``"obs"``, ``"serve"``);
- the **schema** declares the factory's configuration surface.  By
  default it is derived from the factory signature
  (:func:`schema_from_callable`), so every registration is typed for
  free; an explicit schema overrides the derivation;
- :meth:`Registry.build` validates keyword configuration against the
  schema *before* instantiating, so a typo'd spec fails with the
  component's declared parameters instead of a deep ``TypeError``.

Provider modules register at import time; :data:`_PROVIDERS` lists, per
kind, the modules that must be imported before a lookup can be answered,
so ``registry.build("optimizer", ...)`` works without the caller
importing :mod:`repro.xp` first.

The legacy helpers (``repro.xp.register_optimizer`` and friends) still
exist and now delegate here, so downstream registrations land in the
same store the new :mod:`repro.run` API resolves from.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

# Kinds whose components live in modules that register on import: the
# registry imports these lazily on first lookup, so `repro.registry` has
# no import-time dependency on the heavy subsystems it serves.
_PROVIDERS: Dict[str, Tuple[str, ...]] = {
    "optimizer": ("repro.xp.factories",),
    "delay": ("repro.xp.factories",),
    "fault": ("repro.xp.factories",),
    "workload": ("repro.xp.workloads",),
    "sharding": ("repro.sim.sharding",),
    "aggregator": ("repro.bench.report",),
    "vec_optimizer": ("repro.vec.optim",),
    "vec_workload": ("repro.vec.workloads",),
    "fleet_workload": ("repro.fleet.workloads",),
    "topology": ("repro.fleet.topology",),
    "backend": ("repro.run.backends",),
    "obs": ("repro.obs",),
    "serve": ("repro.serve.policies",),
    "device": ("repro.lazy.devices",),
}

# Annotation types the schema checker actually enforces; anything more
# exotic (unions, containers, protocol classes) is recorded but passes
# validation untouched.
_CHECKED_TYPES = (bool, int, float, str)


@dataclass(frozen=True)
class ParamSpec:
    """One declared configuration parameter of a component factory.

    Attributes
    ----------
    name : str
        Keyword name as the spec/config dict spells it.
    annotation : type or None
        Declared type when the factory annotates it with a plain
        scalar type (``bool``/``int``/``float``/``str``); ``None``
        means unchecked.
    default : object
        Default value, or :data:`inspect.Parameter.empty` when the
        parameter is required.
    required : bool
        Whether a configuration must supply this parameter.
    """

    name: str
    annotation: Optional[type] = None
    default: Any = inspect.Parameter.empty

    @property
    def required(self) -> bool:
        """Whether the parameter has no default."""
        return self.default is inspect.Parameter.empty


@dataclass(frozen=True)
class ComponentSchema:
    """The declared configuration surface of a registered factory.

    Attributes
    ----------
    params : tuple of ParamSpec
        Accepted keyword parameters, in declaration order.
    open_ended : bool
        Whether the factory accepts arbitrary extra keywords
        (``**kwargs`` in its signature) — unknown keys then pass
        through unvalidated.
    positional : tuple of str
        Names of leading positional-style arguments the *caller*
        supplies (a parameter list, a buffer); these are not part of
        the keyword configuration surface.
    """

    params: Tuple[ParamSpec, ...] = ()
    open_ended: bool = False
    positional: Tuple[str, ...] = ()

    def names(self) -> List[str]:
        """Declared keyword parameter names, in declaration order."""
        return [p.name for p in self.params]

    def validate(self, config: Mapping[str, Any], *,
                 where: str = "component") -> None:
        """Check a configuration dict against the schema.

        Parameters
        ----------
        config : mapping
            Keyword configuration about to be passed to the factory.
        where : str
            Human-readable component label for error messages.

        Raises
        ------
        ValueError
            On unknown keys (unless the schema is open-ended), missing
            required keys, or a value whose type contradicts a checked
            scalar annotation.
        """
        declared = {p.name: p for p in self.params}
        if not self.open_ended:
            unknown = sorted(set(config) - set(declared))
            if unknown:
                raise ValueError(
                    f"{where}: unknown config keys {unknown}; declared "
                    f"keys are {sorted(declared)}")
        missing = [p.name for p in self.params
                   if p.required and p.name not in config]
        if missing:
            raise ValueError(
                f"{where}: missing required config keys {missing}")
        for key, value in config.items():
            spec = declared.get(key)
            if spec is None or spec.annotation is None or value is None:
                continue
            expected = spec.annotation
            ok = isinstance(value, expected)
            # ints are acceptable floats, but bools are neither
            if expected is float:
                ok = (isinstance(value, (int, float))
                      and not isinstance(value, bool))
            elif expected is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            if not ok:
                raise ValueError(
                    f"{where}: config key {key!r} expects "
                    f"{expected.__name__}, got {type(value).__name__} "
                    f"({value!r})")


def schema_from_callable(factory: Callable,
                         skip: int = 0) -> ComponentSchema:
    """Derive a :class:`ComponentSchema` from a factory's signature.

    Parameters
    ----------
    factory : callable
        The component factory (a function or a class).
    skip : int
        Leading positional parameters the caller supplies directly
        (e.g. the parameter list of an optimizer factory); they are
        recorded as :attr:`ComponentSchema.positional` rather than as
        configuration keys.

    Returns
    -------
    ComponentSchema
        Derived schema; factories whose signature cannot be inspected
        (some builtins) get an open-ended empty schema.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return ComponentSchema(open_ended=True)
    params: List[ParamSpec] = []
    positional: List[str] = []
    open_ended = False
    seen = 0
    # modules using `from __future__ import annotations` expose their
    # annotations as strings; map the scalar names back to types
    by_name = {t.__name__: t for t in _CHECKED_TYPES}
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            open_ended = True
            continue
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if seen < skip and parameter.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD):
            positional.append(parameter.name)
            seen += 1
            continue
        annotation = parameter.annotation
        if isinstance(annotation, str):
            annotation = by_name.get(annotation, annotation)
        checked = annotation if (isinstance(annotation, type)
                                 and annotation in _CHECKED_TYPES) else None
        params.append(ParamSpec(name=parameter.name, annotation=checked,
                                default=parameter.default))
    return ComponentSchema(params=tuple(params), open_ended=open_ended,
                           positional=tuple(positional))


@dataclass(frozen=True)
class Component:
    """One registered component: identity, factory, schema, metadata.

    Attributes
    ----------
    kind : str
        Namespace the component lives in (``"optimizer"``, ...).
    name : str
        Registry key within the kind.
    factory : callable
        ``factory(*args, **config) -> instance``.
    schema : ComponentSchema
        Declared configuration surface (validated by ``build``).
    description : str
        One-line human-readable summary (CLI listings, docs).
    extra : dict
        Free-form registration metadata (e.g. the scalar twin a
        batched workload was registered against).
    """

    kind: str
    name: str
    factory: Callable
    schema: ComponentSchema
    description: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """Typed name-to-factory store partitioned by component kind.

    One process-global instance (:data:`registry`) backs every
    subsystem; tests may instantiate private registries.
    """

    def __init__(self):
        self._components: Dict[str, Dict[str, Component]] = {}
        self._loaded_kinds: set = set()

    # ------------------------------------------------------------- #
    # registration
    # ------------------------------------------------------------- #
    def register(self, kind: str, name: str, factory: Callable, *,
                 schema: Optional[ComponentSchema] = None,
                 skip_positional: int = 0,
                 description: str = "",
                 extra: Optional[Dict[str, Any]] = None) -> Component:
        """Register (or replace) a component.

        Parameters
        ----------
        kind : str
            Component namespace.
        name : str
            Key within the namespace; re-registering replaces.
        factory : callable
            ``factory(*args, **config) -> instance``.
        schema : ComponentSchema, optional
            Explicit configuration schema; derived from the factory
            signature when omitted.
        skip_positional : int
            Leading positional arguments supplied by the caller (not
            configuration) when deriving the schema.
        description : str
            One-line summary; defaults to the factory docstring's
            first line.
        extra : dict, optional
            Free-form metadata stored on the component.

        Returns
        -------
        Component
            The stored registration.
        """
        if schema is None:
            schema = schema_from_callable(factory, skip=skip_positional)
        if not description:
            doc = inspect.getdoc(factory) or ""
            description = doc.splitlines()[0] if doc else ""
        component = Component(kind=str(kind), name=str(name),
                              factory=factory, schema=schema,
                              description=description,
                              extra=dict(extra or {}))
        self._components.setdefault(component.kind, {})[
            component.name] = component
        return component

    def unregister(self, kind: str, name: str) -> None:
        """Remove a registration (missing entries are a no-op)."""
        self._components.get(kind, {}).pop(name, None)

    # ------------------------------------------------------------- #
    # lookup
    # ------------------------------------------------------------- #
    def _ensure_loaded(self, kind: str) -> None:
        if kind in self._loaded_kinds:
            return
        self._loaded_kinds.add(kind)
        for module in _PROVIDERS.get(kind, ()):
            try:
                importlib.import_module(module)
            except ImportError:
                # a broken provider (e.g. a missing dependency) is a
                # real environment error: surface the ImportError to
                # the caller rather than masking it as an unknown
                # name, but un-mark the kind so a fixed environment
                # retries the import on the next lookup
                self._loaded_kinds.discard(kind)
                raise

    def get(self, kind: str, name: str) -> Component:
        """The registration for ``(kind, name)``.

        Raises
        ------
        ValueError
            When no component of that kind/name exists, listing the
            registered alternatives.
        """
        self._ensure_loaded(kind)
        try:
            return self._components[kind][name]
        except KeyError:
            raise ValueError(
                f"unknown {kind} {name!r}; choose from "
                f"{self.names(kind)} or register your own via "
                f"repro.registry") from None

    def has(self, kind: str, name: str) -> bool:
        """Whether ``(kind, name)`` is registered."""
        self._ensure_loaded(kind)
        return name in self._components.get(kind, {})

    def names(self, kind: str) -> List[str]:
        """Sorted registered names of a kind."""
        self._ensure_loaded(kind)
        return sorted(self._components.get(kind, {}))

    def kinds(self) -> List[str]:
        """Sorted kinds with at least one registration or provider."""
        known = set(self._components) | set(_PROVIDERS)
        return sorted(known)

    # ------------------------------------------------------------- #
    # validation + construction
    # ------------------------------------------------------------- #
    def validate(self, kind: str, name: str,
                 config: Mapping[str, Any]) -> Component:
        """Check ``config`` against the component's declared schema.

        Returns
        -------
        Component
            The validated component (so callers can chain into its
            factory).
        """
        component = self.get(kind, name)
        component.schema.validate(config, where=f"{kind} {name!r}")
        return component

    def build(self, kind: str, name: str, *args, **config):
        """Validate ``config`` and instantiate the component.

        Parameters
        ----------
        kind, name : str
            Component identity.
        *args
            Caller-supplied positional arguments (a parameter list, a
            batched buffer) preceding the keyword configuration.
        **config
            Keyword configuration, validated against the schema.

        Returns
        -------
        object
            ``factory(*args, **config)``.
        """
        component = self.validate(kind, name, config)
        return component.factory(*args, **config)

    def describe(self, kind: str) -> List[Dict[str, Any]]:
        """Human-readable listing of a kind (for CLI/doc tooling).

        Returns
        -------
        list of dict
            One entry per component: name, description, declared
            parameter names, and whether extra keys are accepted.
        """
        out = []
        for name in self.names(kind):
            component = self.get(kind, name)
            out.append({
                "name": name,
                "description": component.description,
                "params": component.schema.names(),
                "open_ended": component.schema.open_ended,
            })
        return out

    def __repr__(self) -> str:
        sizes = {kind: len(items)
                 for kind, items in sorted(self._components.items())}
        return f"Registry({sizes})"


#: The process-global component registry every subsystem registers into.
registry = Registry()

__all__ = [
    "Component", "ComponentSchema", "ParamSpec", "Registry",
    "registry", "schema_from_callable",
]
