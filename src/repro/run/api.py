"""`repro.run.run` — one entry point over every execution backend.

The public face of the unified execution API::

    from repro.run import run

    outcome = run(spec)                         # auto-selected backend
    outcome = run(matrix, backend="parallel",   # pinned backend
                  jobs=8, cache=ResultCache())
    outcome.result.metrics["final_loss"]

``run`` accepts a single :class:`~repro.xp.spec.ScenarioSpec`, a
:class:`~repro.xp.spec.Matrix`, a sequence of specs, or a path to a
scenario JSON file.  The API layer owns everything that used to be
scattered across entry points: component validation against the typed
registry, duplicate-spec collapsing, the content-addressed result
cache, and capability-based backend auto-selection.  Backends receive
only deduplicated, uncached, validated specs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.session import ObsSession
from repro.obs.session import active as _obs_active
from repro.registry import registry
from repro.xp.cache import ResultCache
from repro.xp.runner import XP_JOBS_ENV, ScenarioResult
from repro.xp.spec import Matrix, ScenarioSpec, load_scenarios

from repro.run.result import RunOptions, RunResult, _Stopwatch

Runnable = Union[ScenarioSpec, Matrix, Sequence[ScenarioSpec], str, Path]


# worker count from which worker-axis batching pays for its setup;
# below it the existing selection order (parallel/cluster/serial) wins
_FLEET_AUTO_WORKERS = 64


def _normalize(scenarios: Runnable) -> List[ScenarioSpec]:
    """Expand any accepted input form into a concrete spec list.

    Fleet-topology specs expand here (:func:`repro.fleet.topology.
    expand_fleet`), before hashing, so the cache key, the record's
    ``spec_hash``, and the resolved seed are those of the expanded
    spec no matter which backend runs it.
    """
    if isinstance(scenarios, ScenarioSpec):
        specs = [scenarios]
    elif isinstance(scenarios, Matrix):
        specs = scenarios.expand()
    elif isinstance(scenarios, (str, Path)):
        specs = load_scenarios(scenarios)
    else:
        specs = list(scenarios)
        bad = [s for s in specs if not isinstance(s, ScenarioSpec)]
        if bad:
            raise TypeError(
                f"expected ScenarioSpec items, got "
                f"{type(bad[0]).__name__}")
    if any(s.fleet for s in specs):
        from repro.fleet.topology import expand_fleet

        specs = [expand_fleet(s) for s in specs]
    return specs


def _effective_jobs(jobs: Optional[int]) -> int:
    """The process budget auto-selection reasons about.

    Mirrors :class:`~repro.xp.runner.ParallelRunner`'s resolution:
    explicit argument, else ``$REPRO_XP_JOBS``, else the CPU count.
    """
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(XP_JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"${XP_JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    return os.cpu_count() or 1


def select_backend(specs: Sequence[ScenarioSpec],
                   jobs: Optional[int] = None) -> Tuple[str, str]:
    """Pick the execution backend for a batch of specs.

    Capability-based policy over the registered backends (most
    specific opportunity first):

    1. ``vec`` when every spec is lockstep-schedulable and at least one
       carries ``replicates > 1`` — replicate batching is the biggest
       single win the system has.
    2. ``fleet`` when every spec is single-replicate fleet-eligible
       and at least one is fleet-scale (``workers >= 64`` or a fleet
       topology) — worker-axis batching is the analogous win for
       large clusters.
    3. ``parallel`` when there are several scenarios and more than one
       worker process is available — scenario fan-out.
    4. ``cluster`` when any spec needs cluster-class machinery
       (stochastic delays, fault plans, staleness gates, random
       delivery) — the general engine is the right tool, not a
       fallback.
    5. ``serial`` otherwise.

    Specs with ``lazy=True`` skip the ``vec``/``fleet`` branches:
    the batched engines do not carry the ``lazy_autograd``
    capability, so selection prefers a backend that honors the
    spec's requested execution strategy (records are identical
    either way).

    A backend is only chosen if it is registered *and* declares the
    matching capability, so replacing a built-in with a degraded
    third-party backend degrades selection rather than breaking it.

    Parameters
    ----------
    specs : sequence of ScenarioSpec
        The batch about to run.
    jobs : int, optional
        Worker-process budget (resolved like ``ParallelRunner``).

    Returns
    -------
    (name, reason) : tuple of str
        The backend's registry key and a human-readable rationale.
    """
    if not specs:
        return "serial", "empty batch"
    from repro.vec.engine import supports_batched

    def caps(name):
        if not registry.has("backend", name):
            return None
        return registry.build("backend", name).capabilities()

    lazy_batch = any(s.lazy for s in specs)
    vec_caps = caps("vec")
    if (vec_caps is not None and vec_caps.batched_replicates
            and not lazy_batch
            and any(s.replicates > 1 for s in specs)
            and all(supports_batched(s) for s in specs)):
        return "vec", ("lockstep-schedulable specs with replicates > 1 "
                       "batch on the replicate axis")
    fleet_caps = caps("fleet")
    if (fleet_caps is not None and fleet_caps.batched_workers
            and not lazy_batch
            and all(s.replicates == 1 for s in specs)
            and any(s.workers >= _FLEET_AUTO_WORKERS or s.fleet
                    for s in specs)):
        from repro.fleet.engine import supports_fleet

        if all(supports_fleet(s) for s in specs):
            return "fleet", ("fleet-eligible specs at fleet scale "
                             "batch on the worker axis")
    par_caps = caps("parallel")
    if (par_caps is not None and par_caps.matrix and len(specs) > 1
            and _effective_jobs(jobs) > 1):
        return "parallel", (f"{len(specs)} scenarios fan out across "
                            "worker processes")
    cluster_caps = caps("cluster")

    def needs_cluster(spec: ScenarioSpec) -> bool:
        return (spec.delay.get("kind") != "constant"
                or bool(spec.faults)
                or spec.queue_staleness > 0
                or spec.delivery != "fifo")

    if (cluster_caps is not None and cluster_caps.cluster_features
            and any(needs_cluster(s) for s in specs)):
        return "cluster", ("stochastic delays / faults / staleness "
                           "gates need the general event-driven engine")
    return "serial", "single plain scenario; reference path"


def _resolve_obs(obs) -> Optional[ObsSession]:
    """Map the ``run(..., obs=...)`` argument to a session or ``None``.

    Accepted forms: ``None`` / ``False`` / ``"disabled"`` (no
    observability — the default), ``True`` / ``"enabled"`` (a full
    registry-built session), or an explicit :class:`ObsSession` (use
    its components, e.g. a metrics-only session with subscribers
    already attached).
    """
    if obs is None or obs is False or obs == "disabled":
        return None
    if obs is True or obs == "enabled":
        return ObsSession.from_registry()
    if isinstance(obs, ObsSession):
        return obs
    raise TypeError(
        f"obs must be None/False/'disabled', True/'enabled', or an "
        f"ObsSession, got {type(obs).__name__}")


def run(scenarios: Runnable, backend: str = "auto", *,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        validate: bool = True, obs=None,
        on_iteration=None) -> RunResult:
    """Execute scenarios through one unified entry point.

    Parameters
    ----------
    scenarios : ScenarioSpec or Matrix or sequence or path
        What to run: a single spec, a matrix (expanded in axis order),
        an explicit spec list, or a scenario JSON file path.
    backend : str
        ``"auto"`` (capability-based selection, the default) or a
        registered backend name — ``"serial"``, ``"cluster"``,
        ``"parallel"``, ``"vec"``, or anything added via
        :func:`repro.run.register_backend`.
    jobs : int, optional
        Worker-process budget for fan-out backends (``None`` defers to
        ``$REPRO_XP_JOBS`` / CPU count).
    cache : ResultCache, optional
        Content-addressed result store consulted before execution and
        updated after; ``None`` (default) recomputes everything.
    validate : bool
        Pre-flight every distinct spec's component names and
        parameters against the typed registry (clear errors instead
        of mid-run failures in a worker process).  Disable only for
        specs referencing components registered after fork.
    obs : bool or str or ObsSession, optional
        Observe the call: ``True`` / ``"enabled"`` installs a fresh
        registry-built :class:`~repro.obs.session.ObsSession` for the
        duration of the run, an explicit session installs that one,
        and the default (``None`` / ``False`` / ``"disabled"``) runs
        unobserved.  The session's report is attached as
        :attr:`RunResult.obs`.  Observability never changes records:
        identities are bit-identical with ``obs`` on or off (the
        differential suite enforces this per backend).  The
        ``parallel`` backend's worker processes run uninstrumented —
        only coordinator-side orchestration is recorded there.
    on_iteration : callable, optional
        ``on_iteration(step, payload)`` invoked once per committed
        optimizer iteration, straight off the
        :meth:`~repro.obs.metrics.MetricsRegistry.emit` subscriber
        seam — the same streaming contract a
        :class:`repro.serve.Client` consumes remotely, so local and
        served runs share one iteration feed.  The payload carries
        ``step``, ``staleness``, ``worker``, ``sim_time``,
        ``queue_depth``, and ``updates``.  Works with or without
        ``obs=``: when no session was requested, a private
        metrics-only session carries the subscription and no report
        is attached.  Only in-process scalar execution (the
        ``serial`` and ``cluster`` backends) emits per-iteration
        payloads; ``parallel`` workers and the lockstep vec engine do
        not.  The callback must only read — mutating run state would
        void the deterministic records contract.

    Returns
    -------
    RunResult
        Per-scenario records in input order plus backend identity,
        selection rationale, and cache statistics.

    Notes
    -----
    Records are **backend-independent**: the same spec yields the same
    deterministic identity (name, spec hash, metrics, series) on every
    backend — the cross-backend equivalence suite enforces it.
    Duplicate specs (same content hash) are computed once and share
    the record.
    """
    session = _resolve_obs(obs)
    report = session is not None
    if on_iteration is not None:
        if not callable(on_iteration):
            raise TypeError(
                f"on_iteration must be callable(step, payload), got "
                f"{type(on_iteration).__name__}")
        if session is None:
            from repro.obs.metrics import MetricsRegistry

            session = ObsSession(metrics=MetricsRegistry())
        elif session.metrics is None:
            from repro.obs.metrics import MetricsRegistry

            session.metrics = MetricsRegistry()
        session.metrics.subscribe(on_iteration)
    if session is None:
        return _run_specs(scenarios, backend, jobs=jobs, cache=cache,
                          validate=validate)
    try:
        with session:
            outcome = _run_specs(scenarios, backend, jobs=jobs,
                                 cache=cache, validate=validate)
    finally:
        if on_iteration is not None:
            session.metrics.unsubscribe(on_iteration)
    if report:
        outcome.obs = session.report()
    return outcome


def _run_specs(scenarios: Runnable, backend: str, *,
               jobs: Optional[int], cache: Optional[ResultCache],
               validate: bool) -> RunResult:
    """The orchestration core of :func:`run` (observed ambiently)."""
    watch = _Stopwatch()
    specs = _normalize(scenarios)
    # hash once per spec: hashing re-serializes the whole spec (trace
    # payloads included), so it must not be O(duplicates)
    keys = [spec.content_hash() for spec in specs]

    first_idx: Dict[str, int] = {}
    results: List[Optional[ScenarioResult]] = [None] * len(specs)
    hits = 0
    todo: List[int] = []
    for idx, (spec, key) in enumerate(zip(specs, keys)):
        if key in first_idx:
            continue
        first_idx[key] = idx
        if cache is not None:
            cached = cache.get(spec, key=key)
            if cached is not None:
                results[idx] = cached
                hits += 1
                continue
        todo.append(idx)

    if validate:
        for idx in todo:
            specs[idx].validate_components()

    if backend == "auto":
        name, reason = select_backend([specs[i] for i in todo] or specs,
                                      jobs=jobs)
    else:
        name, reason = backend, "explicitly requested"
    impl = registry.build("backend", name)
    if not hasattr(impl, "execute"):
        raise ValueError(
            f"backend {name!r} does not implement ExecutionBackend")

    session = _obs_active()
    if session is not None and session.metrics is not None:
        session.metrics.counter("run.cache_hits").inc(hits)
        session.metrics.counter("run.cache_misses").inc(len(todo))

    if todo:
        if session is not None and session.tracer is not None:
            with session.tracer.span("execute", "run.api", backend=name,
                                     specs=len(todo)):
                fresh = impl.execute([specs[i] for i in todo],
                                     RunOptions(jobs=jobs))
        else:
            fresh = impl.execute([specs[i] for i in todo],
                                 RunOptions(jobs=jobs))
        if len(fresh) != len(todo):
            raise RuntimeError(
                f"backend {name!r} returned {len(fresh)} records for "
                f"{len(todo)} specs")
        for idx, record in zip(todo, fresh):
            results[idx] = record
            if cache is not None:
                cache.put(specs[idx], record, key=keys[idx])

    for idx, key in enumerate(keys):
        if results[idx] is None:      # duplicate of an earlier spec
            results[idx] = results[first_idx[key]]
    assert all(r is not None for r in results)
    return RunResult(backend=name, reason=reason,
                     results=results,  # type: ignore[arg-type]
                     hits=hits, misses=len(todo),
                     wall_s=watch.elapsed())
