"""Result and option types of the unified execution API.

:class:`RunResult` is what :func:`repro.run.run` returns regardless of
which backend executed: the per-scenario
:class:`~repro.xp.runner.ScenarioResult` records (in input order, with
the same deterministic-identity contract they have always had), plus
which backend ran, why it was selected, and the cache statistics of the
call.  :class:`RunOptions` is the typed bag of execution knobs the API
layer hands every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.xp.runner import ScenarioResult


@dataclass
class RunOptions:
    """Execution knobs forwarded to a backend's ``execute``.

    Attributes
    ----------
    jobs : int, optional
        Worker-process budget for backends that fan out
        (``parallel``).  ``None`` defers to ``$REPRO_XP_JOBS`` / CPU
        count; in-process backends ignore it.
    """

    jobs: Optional[int] = None


@dataclass
class RunResult:
    """The outcome of one :func:`repro.run.run` call.

    Attributes
    ----------
    backend : str
        Name of the execution backend that ran (``"serial"``,
        ``"cluster"``, ``"parallel"``, ``"vec"``, or a registered
        third-party backend).
    reason : str
        Why this backend was used — the auto-selection rationale, or
        ``"explicitly requested"``.
    results : list of ScenarioResult
        One record per input scenario, in input order.  Records carry
        the exact deterministic identity the legacy entry points
        produced; ``cached=True`` marks cache hits.
    hits, misses : int
        Result-cache statistics of this call (both zero when caching
        was off).
    wall_s : float
        Wall-clock seconds of the whole call, orchestration included.
    obs : dict, optional
        The observability report of the call's
        :class:`~repro.obs.session.ObsSession` (tracer / metrics /
        profiler summaries) when the run was observed via
        ``run(..., obs=...)``; ``None`` otherwise.  Excluded from the
        per-record deterministic identity, like ``env`` and
        ``wall_s``.
    """

    backend: str
    reason: str = ""
    results: List[ScenarioResult] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    wall_s: float = 0.0
    obs: Optional[dict] = None

    @property
    def result(self) -> ScenarioResult:
        """The single record of a one-scenario run.

        Raises
        ------
        ValueError
            When the run held more than one scenario (use
            :attr:`results`).
        """
        if len(self.results) != 1:
            raise ValueError(
                f"run produced {len(self.results)} records; use "
                ".results for multi-scenario runs")
        return self.results[0]

    def identities(self) -> List[dict]:
        """Per-record deterministic identities (see
        :meth:`ScenarioResult.identity`) — the dicts any two backends
        must agree on exactly."""
        return [r.identity() for r in self.results]

    def metrics_by_name(self) -> Dict[str, Dict[str, float]]:
        """``{scenario name: metrics}`` over the run's records.

        Later duplicates of a repeated name win (matrix expansion
        never repeats names).
        """
        return {r.name: dict(r.metrics) for r in self.results}

    def as_dict(self) -> dict:
        """Plain-data mirror (JSON-able after the codec).

        Keeps the historical CLI payload keys (``results`` / ``hits``
        / ``misses``) and adds the backend fields, so existing record
        consumers keep parsing.
        """
        out = {"backend": self.backend, "reason": self.reason,
               "results": [r.as_dict() for r in self.results],
               "hits": self.hits, "misses": self.misses,
               "wall_s": self.wall_s}
        if self.obs is not None:
            out["obs"] = self.obs
        return out

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class _Stopwatch:
    """Tiny perf_counter stopwatch for orchestration timing."""

    def __init__(self):
        self.start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self.start
