"""Unified execution API: one ``run()`` over interchangeable backends.

Before PR 5 the reproduction had four ways to execute the same
experiment — the legacy serial trainer facade
(:func:`repro.sim.train_async`), direct
:class:`~repro.cluster.runtime.ClusterRuntime` construction, the
multiprocessing :class:`~repro.xp.runner.ParallelRunner`, and the
batched :class:`~repro.vec.engine.BatchedClusterEngine` — each with its
own construction idioms and result shapes.  This package is the single
public surface over all of them:

- :func:`run` — ``run(spec | matrix | specs | path, backend="auto")``
  returning a :class:`RunResult`; handles validation, duplicate
  collapsing, and the content-addressed result cache uniformly.
- :class:`ExecutionBackend` / :class:`BackendCapabilities` — the
  protocol new backends implement, registered by name in the central
  typed registry (kind ``"backend"``) next to optimizers, workloads,
  delay and fault models.
- :func:`select_backend` — the capability-based auto-selection policy
  (lockstep + replicates → ``vec``; matrix + workers → ``parallel``;
  cluster-class features → ``cluster``; else ``serial``).
- :func:`run_cluster` / :func:`build_cluster` /
  :func:`run_round_robin` — the object-level entry points behind the
  deprecated ``train_async`` facade and direct engine construction
  (``run_round_robin`` is the single home of the paper's Section 5.2
  protocol derivation).

Every backend preserves the bit-identical-records contract: the same
spec produces the same deterministic identity (name, spec hash,
metrics, series) no matter which backend executes it — enforced by the
cross-backend equivalence suite and ``make api-smoke``.
"""

from repro.run.api import run, select_backend
from repro.run.backends import (BackendCapabilities, ClusterBackend,
                                ExecutionBackend, ParallelBackend,
                                SerialBackend, VecBackend,
                                backend_names, build_cluster,
                                execute_scalar, execute_spec,
                                register_backend, run_cluster,
                                run_round_robin)
from repro.run.result import RunOptions, RunResult

__all__ = [
    "run", "select_backend",
    "RunResult", "RunOptions",
    "ExecutionBackend", "BackendCapabilities",
    "SerialBackend", "ClusterBackend", "ParallelBackend", "VecBackend",
    "register_backend", "backend_names",
    "build_cluster", "run_cluster", "run_round_robin",
    "execute_scalar", "execute_spec",
]
