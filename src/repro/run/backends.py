"""Execution backends: one protocol, four interchangeable engines.

An :class:`ExecutionBackend` turns a list of
:class:`~repro.xp.spec.ScenarioSpec` into
:class:`~repro.xp.runner.ScenarioResult` records.  Every backend honors
the same contract — **bit-identical deterministic records** (name,
spec hash, metrics, series) for the same specs — so the choice between
them is purely an orchestration/performance decision, made by
capability-based auto-selection in :func:`repro.run.api.select_backend`
or pinned explicitly by the caller.

Built-ins (registered in the central typed registry under the
``"backend"`` kind):

- ``serial`` — the reference: every scenario and every replicate runs
  strictly sequentially through the scalar event-driven engine.
- ``cluster`` — the full-featured scalar path: same records, selected
  when a spec needs cluster-class machinery (stochastic delays, fault
  plans, staleness gates) that rules out lockstep batching.
- ``parallel`` — scenario-level fan-out across a process pool
  (:class:`~repro.xp.runner.ParallelRunner`); records are
  bit-identical to serial because scenario execution is a pure
  function of the spec.
- ``vec`` — replicate-level batching through the lockstep
  :class:`~repro.vec.engine.BatchedClusterEngine` (transparent serial
  fallback outside the lockstep class).
- ``fleet`` — worker-level batching through the
  :class:`~repro.fleet.engine.FleetEngine` (transparent serial
  fallback outside the fleet-eligible class).
- ``mp`` — real worker processes behind an IPC transport
  (:mod:`repro.mp`); registered only where the platform supports it
  and never auto-selected — callers opt in with ``backend="mp"``.

The module also owns the *object-level* entry points
:func:`build_cluster` / :func:`run_cluster`, the blessed replacements
for direct :class:`~repro.cluster.runtime.ClusterRuntime` construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.bench.report import environment_info
from repro.cluster.runtime import ClusterRuntime
from repro.obs.session import StepTimer
from repro.registry import registry
from repro.utils.deprecation import internal_calls
from repro.utils.logging import TrainLog
from repro.xp.factories import (build_delay_model, build_fault_injector,
                                build_optimizer)
from repro.xp.runner import (ParallelRunner, ScenarioResult,
                             summarize_log)
from repro.xp.spec import ScenarioSpec
from repro.xp.workloads import build_workload

from repro.run.result import RunOptions


# ----------------------------------------------------------------- #
# scalar execution (the reference semantics every backend reproduces)
# ----------------------------------------------------------------- #
def build_cluster(model, optimizer, loss_fn, **kwargs) -> ClusterRuntime:
    """Construct a :class:`ClusterRuntime` through the unified API.

    The blessed replacement for direct ``ClusterRuntime(...)``
    construction (which now warns): same arguments, same engine, but
    routed through :mod:`repro.run` so the construction idiom is one
    place instead of scattered call sites.  Use this when you need the
    engine object itself — e.g. for the checkpoint/restore workflow —
    and :func:`run_cluster` when you only need the training log.

    Parameters
    ----------
    model, optimizer, loss_fn:
        As for :class:`~repro.cluster.runtime.ClusterRuntime`.
    **kwargs
        Forwarded verbatim (workers, delay_model, num_shards,
        shard_policy, queue_staleness, delivery, faults, hooks, log,
        seed).

    Returns
    -------
    ClusterRuntime
    """
    with internal_calls():
        return ClusterRuntime(model, optimizer, loss_fn, **kwargs)


def run_cluster(model, optimizer, loss_fn, *, reads: int,
                updates: Optional[int] = None,
                drain_final: bool = False, **kwargs) -> TrainLog:
    """Run one object-level cluster simulation and return its log.

    The unified object-level entry point behind the deprecated
    :func:`repro.sim.train_async` facade: construct the event-driven
    engine (via :func:`build_cluster`) and run it to the given
    budgets.  Spec-level callers should prefer :func:`repro.run.run`.

    Parameters
    ----------
    model, optimizer, loss_fn:
        As for :class:`~repro.cluster.runtime.ClusterRuntime`.
    reads : int
        Gradient-computation budget.
    updates : int, optional
        Update budget (``None`` commits whatever arrives in time).
    drain_final : bool
        Apply still-in-flight gradients after the last read instead of
        discarding them.
    **kwargs
        Engine configuration forwarded to :func:`build_cluster`.

    Returns
    -------
    TrainLog
        The run's training log (loss at read time, plus the cluster
        series).
    """
    runtime = build_cluster(model, optimizer, loss_fn, **kwargs)
    return runtime.run(reads=reads, updates=updates,
                       drain_final=drain_final)


def run_round_robin(model, optimizer, loss_fn, *, steps: int,
                    workers: int = 16,
                    staleness_model: str = "round_robin",
                    drain_final: bool = False, **kwargs) -> TrainLog:
    """Run the paper's Section 5.2 asynchronous protocol.

    The one place the protocol's derivation lives: staleness is
    ``tau = workers - 1``; ``"round_robin"`` schedules ``workers``
    timed workers under a unit constant delay (arrivals keep read
    order, so each gradient is exactly ``tau`` updates stale after
    warmup), ``"random"`` runs the depth-gated memoryless discipline
    (one reader, gate ``tau``, random delivery); the update budget is
    ``max(0, steps - tau)``.  The deprecated
    :func:`repro.sim.train_async` facade and every protocol-level
    caller (tuning, benchmarks, examples) delegate here, so the
    mapping cannot drift between call sites.

    Parameters
    ----------
    model, optimizer, loss_fn:
        As for :class:`~repro.cluster.runtime.ClusterRuntime`.
    steps : int
        Worker read/push iterations (the gradient budget).
    workers : int
        Simulated worker count; the gradient delay is ``workers - 1``.
    staleness_model : str
        ``"round_robin"`` (timed N-worker schedule) or ``"random"``
        (memoryless completion order).
    drain_final : bool
        Apply the ``tau`` still-in-flight gradients after the last
        step instead of discarding them.
    **kwargs
        Engine configuration forwarded to :func:`build_cluster`
        (num_shards, shard_policy, hooks, log, seed).

    Returns
    -------
    TrainLog
        Loss at read time plus the cluster series, exactly as
        ``train_async`` always returned.
    """
    from repro.cluster.delays import ConstantDelay

    if workers < 1:
        raise ValueError("need at least one worker")
    if staleness_model not in ("round_robin", "random"):
        raise ValueError(f"unknown staleness model {staleness_model!r}")
    tau = workers - 1
    if staleness_model == "round_robin":
        topology = dict(workers=workers)
    else:
        # memoryless release is a property of the server queue, not of
        # transit timing: one reader, depth gate tau, random delivery
        topology = dict(workers=1, queue_staleness=tau,
                        delivery="random")
    return run_cluster(model, optimizer, loss_fn, reads=steps,
                       updates=max(0, steps - tau),
                       drain_final=drain_final,
                       delay_model=ConstantDelay(1.0), **topology,
                       **kwargs)


class _LazyLoss:
    """Adapter that runs a workload's loss callable in lazy mode.

    Each evaluation records the loss graph through a persistent
    :class:`~repro.lazy.runtime.LazyRuntime` (one per scenario, so the
    buffer pool stays warm across reads) and returns the deferred loss
    tensor; the cluster runtime's ``loss.backward()`` then realizes
    the whole training step as one fused graph.  Results are
    bit-identical to calling ``loss_fn`` eagerly — only the execution
    strategy changes.  Workloads whose ops the engine does not model
    fall back to eager execution transparently; ``engine()`` reports
    which strategy actually ran.
    """

    def __init__(self, loss_fn: Callable[[], "object"]):
        from repro.lazy import LazyRuntime

        self._loss_fn = loss_fn
        self.runtime = LazyRuntime()

    def __call__(self):
        from repro.lazy.runtime import lazy_mode

        with lazy_mode(runtime=self.runtime):
            return self._loss_fn()

    def engine(self) -> str:
        """``"fused"`` once any graph realized, else ``"fallback"``."""
        return "fused" if self.runtime.stats.realizations else "fallback"

    def __getattr__(self, name):
        return getattr(self._loss_fn, name)


def execute_scalar(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one single-replicate spec through the scalar engine.

    The pure reference semantics of the whole API: build the workload,
    optimizer, delay model, and fault injector from the spec (all
    seeded from ``spec.resolved_seed()`` or their own declared seeds),
    run the event-driven simulation to the spec's budgets, and
    summarize the log.  Every backend's records are defined as
    bit-identical to this function's.

    Parameters
    ----------
    spec : ScenarioSpec
        A scenario with ``replicates == 1``.

    Returns
    -------
    ScenarioResult
    """
    if spec.replicates != 1:
        raise ValueError(
            f"execute_scalar needs replicates == 1, got "
            f"{spec.replicates}; use repro.vec.runner.execute_replicated")
    if spec.fleet:
        # fleet topologies expand to flat fields before execution; the
        # expansion pins the original resolved seed, so hashing and
        # seeding are identical no matter which layer expanded first
        from repro.fleet.topology import expand_fleet

        spec = expand_fleet(spec)
    seed = spec.resolved_seed()
    build = build_workload(spec.workload, **spec.workload_params)
    model, loss_fn = build(seed)
    if spec.lazy:
        loss_fn = _LazyLoss(loss_fn)
    optimizer = build_optimizer(spec.optimizer, model.parameters(),
                                **spec.optimizer_params)
    runtime = build_cluster(
        model, optimizer, loss_fn, workers=spec.workers,
        delay_model=build_delay_model(spec.delay),
        num_shards=spec.num_shards, shard_policy=spec.shard_policy,
        queue_staleness=spec.queue_staleness, delivery=spec.delivery,
        faults=build_fault_injector(spec.faults), seed=seed)
    with StepTimer(f"scenario:{spec.name}", cat="run.backend") as timer:
        log = runtime.run(reads=spec.reads, updates=spec.updates)
    wall = timer.elapsed

    metrics, series = summarize_log(spec, log, runtime.reads_done,
                                    runtime.updates_done,
                                    runtime.diverged)
    env = environment_info()
    env["seed"] = seed
    if spec.lazy:
        env["lazy_engine"] = loss_fn.engine()
    return ScenarioResult(name=spec.name, spec_hash=spec.content_hash(),
                          metrics=metrics, series=series, env=env,
                          wall_s=wall)


def execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one spec with default per-spec strategy selection.

    Single-replicate specs run the scalar engine; replicated specs run
    the replicate engine of :mod:`repro.vec` with its automatic
    batched/serial choice.  This is the unit of work the ``parallel``
    backend ships to its pool, and the semantics the deprecated
    :func:`repro.xp.runner.run_scenario` shim delegates to.

    Parameters
    ----------
    spec : ScenarioSpec

    Returns
    -------
    ScenarioResult
    """
    if spec.replicates > 1:
        from repro.vec.runner import execute_replicated

        return execute_replicated(spec, strategy="auto")
    return execute_scalar(spec)


# ----------------------------------------------------------------- #
# the backend protocol
# ----------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution backend can exploit (not what it can run —
    every backend runs every spec correctly; capabilities drive
    *selection*, they are not feature gates).

    Attributes
    ----------
    matrix : bool
        Executes multi-scenario batches faster than one-by-one
        (process fan-out).
    batched_replicates : bool
        Collapses a spec's replicate axis into lockstep batched
        execution when the spec allows it.
    batched_workers : bool
        Collapses a spec's worker axis into batched per-event
        execution when the spec allows it (the fleet engine).
    cluster_features : bool
        Positioned for cluster-class machinery — stochastic delay
        models, fault plans, staleness gates — that rules out
        lockstep batching.
    subprocess : bool
        Executes in worker processes (components must be importable,
        not closures).
    real_processes : bool
        Gradients are computed by real OS processes over an IPC
        transport (the ``mp`` backend).  Strictly opt-in: the
        auto-selection policy never chooses a backend with this
        capability, callers pin it explicitly.
    lazy_autograd : bool
        Honors ``spec.lazy`` by routing workload loss evaluations
        through the :mod:`repro.lazy` deferred-execution engine
        (results stay bit-identical; only execution strategy changes).
        Backends without the capability run lazy specs eagerly, so
        auto-selection prefers a capable backend for them.
    """

    matrix: bool = False
    batched_replicates: bool = False
    batched_workers: bool = False
    cluster_features: bool = False
    subprocess: bool = False
    real_processes: bool = False
    lazy_autograd: bool = False


class ExecutionBackend:
    """Protocol base class for execution backends.

    A backend is registered in the central typed registry under the
    ``"backend"`` kind and must provide:

    - :attr:`name` — its registry key;
    - :meth:`capabilities` — the static :class:`BackendCapabilities`
      auto-selection consults;
    - :meth:`execute` — specs in, records out, preserving order, with
      records bit-identical to :func:`execute_scalar` semantics.

    Subclasses are stateless by convention: ``execute`` may be called
    repeatedly and concurrently-ish (the API layer constructs a fresh
    instance per call).
    """

    #: Registry key of the backend.
    name: str = "abstract"

    def capabilities(self) -> BackendCapabilities:
        """The backend's static capability declaration."""
        raise NotImplementedError

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Execute every spec, in order.

        Parameters
        ----------
        specs : sequence of ScenarioSpec
            Deduplicated, validated scenarios (the API layer handles
            caching and duplicate collapsing before this call).
        options : RunOptions
            Execution knobs (jobs, ...).

        Returns
        -------
        list of ScenarioResult
            One record per spec, same order.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Reference backend: strictly sequential scalar execution.

    Every scenario — and every replicate of a replicated scenario —
    runs one at a time through the scalar event-driven engine.  The
    slowest backend and the ground truth: all other backends' records
    are defined (and tested) as bit-identical to this one's.
    """

    name = "serial"

    def capabilities(self) -> BackendCapabilities:
        """Nothing to exploit: the baseline."""
        return BackendCapabilities(cluster_features=True,
                                   lazy_autograd=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Run specs sequentially; replicates forced serial."""
        from repro.vec.runner import execute_replicated

        out = []
        for spec in specs:
            if spec.replicates > 1:
                out.append(execute_replicated(spec, strategy="serial"))
            else:
                out.append(execute_scalar(spec))
        return out


class ClusterBackend(ExecutionBackend):
    """Full-featured scalar backend for cluster-class scenarios.

    Record-wise identical to ``serial`` (both run the event-driven
    scalar engine); selected by the auto-policy when a spec's delay
    model, fault plan, or queue discipline rules out lockstep
    batching, making the general engine the right tool rather than a
    fallback.  Unlike the ``serial`` reference, replicated specs keep
    their per-spec strategy choice — a lockstep-schedulable spec in a
    mixed batch still gets the batched replicate engine.
    """

    name = "cluster"

    def capabilities(self) -> BackendCapabilities:
        """Claims the cluster-class scenario territory."""
        return BackendCapabilities(cluster_features=True,
                                   lazy_autograd=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Run specs sequentially with automatic replicate strategy."""
        return [execute_spec(spec) for spec in specs]


class ParallelBackend(ExecutionBackend):
    """Scenario-level fan-out across a process pool.

    Wraps :class:`~repro.xp.runner.ParallelRunner` (without its cache
    — caching is the API layer's job since PR 5): uncached scenarios
    are distributed over ``options.jobs`` worker processes, and
    because scenario execution is a pure function of the spec, the
    assembled records are bit-identical to serial execution.
    """

    name = "parallel"

    def capabilities(self) -> BackendCapabilities:
        """Exploits multi-scenario batches; runs in subprocesses."""
        return BackendCapabilities(matrix=True, cluster_features=True,
                                   subprocess=True, lazy_autograd=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Fan specs out over the pool (serial for a single spec)."""
        runner = ParallelRunner(processes=options.jobs, cache=None)
        return runner.run(list(specs))


class VecBackend(ExecutionBackend):
    """Replicate-level batching through the lockstep engine.

    Scenarios in the lockstep-schedulable class run all replicates in
    one batched event loop (:class:`~repro.vec.engine.
    BatchedClusterEngine`) — including single-replicate specs, which
    run the engine with ``R = 1`` and keep the scalar record shape.
    Anything outside the class falls back to serial scalar execution
    transparently; the executed strategy is recorded in each result's
    ``env["vec_engine"]``.
    """

    name = "vec"

    def capabilities(self) -> BackendCapabilities:
        """Exploits the replicate axis of lockstep-schedulable specs."""
        return BackendCapabilities(batched_replicates=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Run each spec through the batched engine (or fallback)."""
        from repro.vec.runner import execute_replicated

        return [execute_replicated(spec, strategy="batched")
                for spec in specs]


class FleetBackend(ExecutionBackend):
    """Worker-axis batching through the fleet engine.

    Fleet-eligible single-replicate scenarios — vec optimizer kernel,
    deterministic delay/fault configuration — run through the
    :class:`~repro.fleet.engine.FleetEngine`, which batches the
    per-event worker-axis work while the model stays scalar.
    Fleet-topology specs are expanded first; anything outside the
    eligible class falls back to serial scalar execution
    transparently, with the executed strategy recorded in each
    result's ``env["fleet_engine"]``.
    """

    name = "fleet"

    def capabilities(self) -> BackendCapabilities:
        """Exploits the worker axis of fleet-eligible specs."""
        return BackendCapabilities(batched_workers=True)

    def execute(self, specs: Sequence[ScenarioSpec],
                options: RunOptions) -> List[ScenarioResult]:
        """Run each spec through the fleet engine (or fallback)."""
        from repro.fleet.runner import execute_fleet

        return [execute_fleet(spec, strategy="fleet")
                for spec in specs]


# ----------------------------------------------------------------- #
# registration
# ----------------------------------------------------------------- #
def register_backend(name: str,
                     factory: Callable[[], ExecutionBackend]) -> None:
    """Register an execution backend under ``name``.

    Parameters
    ----------
    name : str
        Registry key (usable as ``run(..., backend=name)``).
    factory : callable
        Zero-argument callable returning an
        :class:`ExecutionBackend` instance.
    """
    registry.register("backend", str(name), factory)


def backend_names() -> list:
    """Sorted registered backend names."""
    return registry.names("backend")


def _mp_backend() -> ExecutionBackend:
    """Lazy factory for the real multi-process backend."""
    from repro.mp.backend import MPBackend

    return MPBackend()


for _cls in (SerialBackend, ClusterBackend, ParallelBackend, VecBackend,
             FleetBackend):
    registry.register("backend", _cls.name, _cls)

# the mp backend needs fork + POSIX shared memory; capability-gate the
# registration so `backend="mp"` fails with a clear unknown-backend
# error on platforms that cannot run it (imported directly from
# repro.mp.worker — the package __init__ would import us right back)
from repro.mp.worker import mp_available  # noqa: E402

if mp_available():
    registry.register("backend", "mp", _mp_backend)
