"""Shard-assignment policies for the sharded parameter-server runtime.

A policy maps each parameter to one of ``num_shards`` server shards.  The
runtime (:class:`~repro.sim.parameter_server.ShardedParameterServer`)
treats the policy as pluggable: anything with an ``assign`` method works.

Three built-ins cover the standard trade-offs:

- :class:`HashSharding` — stable hash of the parameter name, the classic
  parameter-server placement (placement survives model growth; no state).
- :class:`RoundRobinSharding` — index modulo shard count (uniform tensor
  counts, ignores tensor sizes).
- :class:`GreedyBalancedSharding` — largest-first bin packing into the
  currently lightest shard (uniform *element* counts, best for skewed
  tensor sizes such as embedding + bias mixes).
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Union


class ShardAssignmentPolicy:
    """Interface: map parameters to shard indices.

    Subclasses implement :meth:`assign`; the runtime never inspects
    anything else, so custom policies (e.g. colocating layers) plug in
    freely.
    """

    name = "base"

    def assign(self, names: Sequence[str], sizes: Sequence[int],
               num_shards: int) -> List[int]:
        """Return one shard index in ``[0, num_shards)`` per parameter.

        Parameters
        ----------
        names : sequence of str
            Stable per-parameter identifiers.
        sizes : sequence of int
            Element count of each parameter (for size-aware policies).
        num_shards : int
            Number of server shards.
        """
        raise NotImplementedError

    def _validate(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")


class HashSharding(ShardAssignmentPolicy):
    """Stable-hash placement: ``crc32(name) % num_shards``.

    Deterministic across processes and runs (unlike builtin ``hash``,
    which is salted), so a checkpointed sharded run can be resumed with
    identical placement.
    """

    name = "hash"

    def assign(self, names: Sequence[str], sizes: Sequence[int],
               num_shards: int) -> List[int]:
        self._validate(num_shards)
        return [zlib.crc32(n.encode("utf-8")) % num_shards for n in names]


class RoundRobinSharding(ShardAssignmentPolicy):
    """Cyclic placement: parameter ``i`` goes to shard ``i % num_shards``."""

    name = "round_robin"

    def assign(self, names: Sequence[str], sizes: Sequence[int],
               num_shards: int) -> List[int]:
        self._validate(num_shards)
        return [i % num_shards for i in range(len(names))]


class GreedyBalancedSharding(ShardAssignmentPolicy):
    """Largest-first greedy bin packing by element count.

    Sorts parameters by size (descending) and assigns each to the shard
    with the fewest elements so far — the standard LPT heuristic, within
    4/3 of the optimal makespan.
    """

    name = "balanced"

    def assign(self, names: Sequence[str], sizes: Sequence[int],
               num_shards: int) -> List[int]:
        self._validate(num_shards)
        loads = [0] * num_shards
        shard_of = [0] * len(names)
        order = sorted(range(len(names)), key=lambda i: -int(sizes[i]))
        for i in order:
            target = loads.index(min(loads))
            shard_of[i] = target
            loads[target] += int(sizes[i])
        return shard_of


def _register_policies() -> None:
    """File the built-in policies in the central typed registry."""
    from repro.registry import registry

    for cls in (HashSharding, RoundRobinSharding,
                GreedyBalancedSharding):
        registry.register("sharding", cls.name, cls)


_register_policies()

PolicySpec = Union[str, ShardAssignmentPolicy]


def sharding_policy_names() -> list:
    """Sorted registered policy names (error messages, CLI listings)."""
    from repro.registry import registry

    return registry.names("sharding")


def make_policy(spec: PolicySpec) -> ShardAssignmentPolicy:
    """Resolve a policy name or pass through a policy instance.

    Names resolve through the central typed registry
    (:mod:`repro.registry`, kind ``"sharding"``), so downstream
    policies registered there are usable from specs by name.

    Parameters
    ----------
    spec : str or ShardAssignmentPolicy
        One of ``"hash"``, ``"round_robin"``, ``"balanced"``, or an object
        implementing :meth:`ShardAssignmentPolicy.assign`.
    """
    from repro.registry import registry

    if isinstance(spec, str):
        if not registry.has("sharding", spec):
            raise ValueError(
                f"unknown shard policy {spec!r}; "
                f"choose from {sharding_policy_names()}")
        return registry.build("sharding", spec)
    if hasattr(spec, "assign"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a shard policy")
