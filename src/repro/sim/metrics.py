"""Validation and runtime metrics: accuracy, perplexity, staleness.

Two metric families live here: held-out evaluation loops (accuracy,
language-model perplexity) and cluster-runtime observability — per-worker
staleness histograms and event-timeline summaries computed from the
series the event-driven runtime records (``"staleness"``, ``"worker"``,
``"sim_time"``) and from its timeline records.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import no_grad
from repro.nn.module import Module
from repro.utils.logging import TrainLog


def classification_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy from raw logits."""
    preds = np.argmax(np.asarray(logits), axis=-1)
    return float(np.mean(preds == np.asarray(targets)))


def evaluate_classifier(model: Module, x: np.ndarray, y: np.ndarray,
                        batch_size: int = 128) -> dict:
    """Accuracy + mean loss over a held-out set."""
    model.eval()
    losses, correct, total = [], 0, 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            logits = model(xb)
            losses.append(float(F.cross_entropy(logits, yb).data) * len(xb))
            correct += int((np.argmax(logits.data, axis=1) == yb).sum())
            total += len(xb)
    model.train()
    return {"loss": sum(losses) / total, "accuracy": correct / total}


def evaluate_lm(model: Module, tokens: np.ndarray, batch_size: int = 8,
                seq_len: int = 16, max_batches: Optional[int] = None) -> dict:
    """Mean NLL and perplexity of a language model over a token stream."""
    from repro.data.loader import SequenceLoader
    from repro.models.lstm_lm import perplexity

    loader = SequenceLoader(tokens, batch_size=batch_size, seq_len=seq_len)
    n_batches = loader.batches_per_epoch
    if max_batches is not None:
        n_batches = min(n_batches, max_batches)
    total_nll, count, state = 0.0, 0, None
    model.eval()
    with no_grad():
        for _ in range(n_batches):
            ids, targets = loader.next_batch()
            loss, state = model.loss(ids, targets, state)
            total_nll += float(loss.data) * ids.size
            count += ids.size
    model.train()
    mean_nll = total_nll / max(count, 1)
    return {"nll": mean_nll, "perplexity": perplexity(mean_nll)}


# --------------------------------------------------------------------- #
# cluster-runtime observability
# --------------------------------------------------------------------- #
def staleness_histogram(log: TrainLog) -> Dict[int, Dict[int, int]]:
    """Per-worker histogram of committed-update staleness.

    Consumes the aligned ``"staleness"`` and ``"worker"`` series the
    cluster runtime logs per committed update.

    Parameters
    ----------
    log : TrainLog
        A log produced by a cluster (or ``train_async``) run.

    Returns
    -------
    dict
        ``{worker_id: {staleness: count}}``.  Only in-loop commits are
        counted (drained end-of-run updates log no staleness); commits
        whose origin metadata was lost appear under ``-1``.  A
        ``"worker"`` series shorter than ``"staleness"`` (misaligned
        logs from resumed/merged runs) is padded with ``-1`` so the
        trailing staleness entries land in the documented ``-1`` bucket
        instead of being silently dropped.
    """
    staleness = log.scalars.get("staleness", [])
    workers = log.scalars.get("worker", [-1.0] * len(staleness))
    if len(workers) < len(staleness):
        workers = list(workers) + [-1.0] * (len(staleness) - len(workers))
    hist: Dict[int, Dict[int, int]] = {}
    for s, w in zip(staleness, workers):
        per_worker = hist.setdefault(int(w), {})
        key = int(s)
        per_worker[key] = per_worker.get(key, 0) + 1
    return hist


def staleness_summary(log: TrainLog) -> dict:
    """Aggregate staleness statistics of a cluster run.

    Returns
    -------
    dict
        ``count`` / ``mean`` / ``median`` / ``p95`` / ``max`` of the
        per-update staleness series (all NaN except ``count`` when no
        update committed).
    """
    values = log.series("staleness")
    if values.size == 0:
        return {"count": 0, "mean": float("nan"), "median": float("nan"),
                "p95": float("nan"), "max": float("nan")}
    return {
        "count": int(values.size),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "p95": float(np.percentile(values, 95)),
        "max": float(values.max()),
    }


def event_timeline_summary(timeline: List[dict]) -> dict:
    """Summarize a cluster runtime's event timeline.

    Parameters
    ----------
    timeline : list of dict
        ``ClusterRuntime.timeline`` records (``{"t", "kind", ...}``).

    Returns
    -------
    dict
        Total event count, counts per kind, per-worker arrival counts,
        and the simulated time span ``(t_first, t_last)``.
    """
    by_kind: Dict[str, int] = {}
    arrivals_per_worker: Dict[int, int] = {}
    for entry in timeline:
        kind = entry["kind"]
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "arrival":
            worker = int(entry.get("worker", -1))
            arrivals_per_worker[worker] = \
                arrivals_per_worker.get(worker, 0) + 1
    times = [entry["t"] for entry in timeline]
    span = (min(times), max(times)) if times else (0.0, 0.0)
    return {"events": len(timeline), "by_kind": by_kind,
            "arrivals_per_worker": arrivals_per_worker, "span": span}
