"""Validation metrics: accuracy, perplexity, and generic evaluation loops."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import no_grad
from repro.nn.module import Module


def classification_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy from raw logits."""
    preds = np.argmax(np.asarray(logits), axis=-1)
    return float(np.mean(preds == np.asarray(targets)))


def evaluate_classifier(model: Module, x: np.ndarray, y: np.ndarray,
                        batch_size: int = 128) -> dict:
    """Accuracy + mean loss over a held-out set."""
    model.eval()
    losses, correct, total = [], 0, 0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            logits = model(xb)
            losses.append(float(F.cross_entropy(logits, yb).data) * len(xb))
            correct += int((np.argmax(logits.data, axis=1) == yb).sum())
            total += len(xb)
    model.train()
    return {"loss": sum(losses) / total, "accuracy": correct / total}


def evaluate_lm(model: Module, tokens: np.ndarray, batch_size: int = 8,
                seq_len: int = 16, max_batches: Optional[int] = None) -> dict:
    """Mean NLL and perplexity of a language model over a token stream."""
    from repro.data.loader import SequenceLoader
    from repro.models.lstm_lm import perplexity

    loader = SequenceLoader(tokens, batch_size=batch_size, seq_len=seq_len)
    n_batches = loader.batches_per_epoch
    if max_batches is not None:
        n_batches = min(n_batches, max_batches)
    total_nll, count, state = 0.0, 0, None
    model.eval()
    with no_grad():
        for _ in range(n_batches):
            ids, targets = loader.next_batch()
            loss, state = model.loss(ids, targets, state)
            total_nll += float(loss.data) * ids.size
            count += ids.size
    model.train()
    mean_nll = total_nll / max(count, 1)
    return {"nll": mean_nll, "perplexity": perplexity(mean_nll)}
