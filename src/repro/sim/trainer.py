"""Synchronous training loop.

Workloads expose a single ``loss_fn()`` closure that draws the next
minibatch, runs the forward pass and returns the scalar loss tensor; the
trainer owns backward, optimizer stepping and logging.  This keeps every
experiment (image, LM, parsing, seq2seq) on the identical code path the
optimizers are compared on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.optim.grad_clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.utils.logging import TrainLog


@dataclass
class TrainerHooks:
    """Optional per-step callbacks and static clipping configuration.

    Attributes
    ----------
    grad_clip_norm:
        If set, apply *manual* static clipping before the optimizer step
        (the baseline protocol of Table 1; YellowFin's adaptive clipping
        is internal to the optimizer and needs no hook).
    on_step:
        Called as ``on_step(step, log)`` after each optimizer step.
    stop_on_divergence:
        Abort when the loss becomes non-finite or exceeds this value
        (training "diverged to loss overflow", as the paper puts it).
    """

    grad_clip_norm: Optional[float] = None
    on_step: Optional[Callable[[int, TrainLog], None]] = None
    stop_on_divergence: Optional[float] = 1e6


def train_sync(model: Module, optimizer: Optimizer,
               loss_fn: Callable[[], Tensor], steps: int,
               hooks: Optional[TrainerHooks] = None,
               log: Optional[TrainLog] = None) -> TrainLog:
    """Run ``steps`` optimizer steps; returns the training log.

    The log always contains series ``"loss"``; if the optimizer exposes
    ``stats()`` (YellowFin variants), per-step ``"lr"``/``"momentum"``
    series are recorded too.  On divergence, the log gains a final
    ``"diverged"`` record and training stops early.
    """
    hooks = hooks or TrainerHooks()
    log = log if log is not None else TrainLog()
    for step in range(steps):
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        loss_value = float(loss.data)
        log.append("loss", loss_value, step)

        if not math.isfinite(loss_value) or (
                hooks.stop_on_divergence is not None
                and loss_value > hooks.stop_on_divergence):
            log.append("diverged", 1.0, step)
            break

        if hooks.grad_clip_norm is not None:
            norm = clip_grad_norm(optimizer.params, hooks.grad_clip_norm)
            log.append("grad_norm", norm, step)

        optimizer.step()

        if hasattr(optimizer, "stats"):
            stats = optimizer.stats()
            log.append("lr", stats["lr"], step)
            log.append("momentum", stats["momentum"], step)
            if "target_momentum" in stats:
                log.append("target_momentum", stats["target_momentum"], step)
            if "total_momentum" in stats:
                log.append("total_momentum", stats["total_momentum"], step)
                log.append("algorithmic_momentum",
                           stats["algorithmic_momentum"], step)
        if hooks.on_step is not None:
            hooks.on_step(step, log)
    return log
