"""Training loops and the simulated distributed runtime.

- :mod:`repro.sim.trainer` — the synchronous loop every optimizer
  comparison runs on.
- :mod:`repro.sim.async_trainer` — the paper's Section 5.2 staleness
  protocol, a facade over the event-driven cluster runtime
  (:mod:`repro.cluster`).
- :mod:`repro.sim.parameter_server` — worker-centric
  (:class:`ParameterServer`) and sharded server-centric
  (:class:`ShardedParameterServer`) parameter-server simulations.
- :mod:`repro.sim.sharding` — pluggable shard-assignment policies.
- :mod:`repro.sim.metrics` — held-out evaluation helpers plus
  cluster observability (staleness histograms, timeline summaries).
"""

from repro.sim.trainer import train_sync, TrainerHooks
from repro.sim.async_trainer import train_async
from repro.sim.parameter_server import (ParameterServer, ParameterShard,
                                        ShardedParameterServer, WorkerState)
from repro.sim.sharding import (GreedyBalancedSharding, HashSharding,
                                RoundRobinSharding, ShardAssignmentPolicy,
                                make_policy)
from repro.sim.metrics import (classification_accuracy, evaluate_lm,
                               evaluate_classifier, event_timeline_summary,
                               staleness_histogram, staleness_summary)

__all__ = [
    "train_sync", "TrainerHooks", "train_async",
    "ParameterServer", "ParameterShard", "ShardedParameterServer",
    "WorkerState",
    "ShardAssignmentPolicy", "HashSharding", "RoundRobinSharding",
    "GreedyBalancedSharding", "make_policy",
    "classification_accuracy", "evaluate_lm", "evaluate_classifier",
    "staleness_histogram", "staleness_summary", "event_timeline_summary",
]
