"""Training loops: synchronous trainer and the asynchronous-staleness
simulator used for the paper's 16-worker experiments."""

from repro.sim.trainer import train_sync, TrainerHooks
from repro.sim.async_trainer import train_async
from repro.sim.parameter_server import ParameterServer, WorkerState
from repro.sim.metrics import (classification_accuracy, evaluate_lm,
                               evaluate_classifier)

__all__ = [
    "train_sync", "TrainerHooks", "train_async",
    "ParameterServer", "WorkerState",
    "classification_accuracy", "evaluate_lm", "evaluate_classifier",
]
