"""Asynchronous-training simulator (Section 5.2 protocol).

The paper runs 16 asynchronous workers "forced to update the model in a
round-robin fashion, i.e. the gradient is delayed for 15 iterations".
That protocol is a deterministic delay queue, which we reproduce exactly:

- at step ``t`` the active worker *reads* the current model and computes a
  gradient (pushed to the queue);
- the oldest queued gradient — computed ``tau = workers - 1`` steps ago —
  is popped, loaded into the parameters, and the optimizer steps.

With ``workers=1`` the queue has no delay and the simulator is
step-for-step identical to :func:`repro.sim.trainer.train_sync` (a
property the test suite checks).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.optim.grad_clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog


def train_async(model: Module, optimizer: Optimizer,
                loss_fn: Callable[[], Tensor], steps: int, workers: int = 16,
                hooks: Optional[TrainerHooks] = None,
                log: Optional[TrainLog] = None,
                staleness_model: str = "round_robin",
                seed=None) -> TrainLog:
    """Asynchronous training with staleness ``workers - 1``.

    ``staleness_model``:

    - ``"round_robin"`` — the paper's Section 5.2 protocol: the gradient is
      delayed exactly ``workers - 1`` iterations.
    - ``"random"`` — memoryless completion order (the model of Mitliagkas
      et al.): each step applies a uniformly random queued gradient, so
      staleness has mean ``workers - 1`` but is random per step.

    The logged ``"loss"`` series is the loss observed at gradient-compute
    (read) time, mirroring how asynchronous systems report training loss.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if staleness_model not in ("round_robin", "random"):
        raise ValueError(f"unknown staleness model {staleness_model!r}")
    from repro.utils.rng import new_rng
    rng = new_rng(seed)
    hooks = hooks or TrainerHooks()
    log = log if log is not None else TrainLog()
    staleness = workers - 1
    queue: Deque[tuple] = deque()

    # Pre-fill: the first `staleness` reads happen against the initial
    # model before any update lands (workers all start at once).
    params = optimizer.params
    for step in range(steps):
        # active worker reads the current model
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        loss_value = float(loss.data)
        log.append("loss", loss_value, step)
        if not math.isfinite(loss_value) or (
                hooks.stop_on_divergence is not None
                and loss_value > hooks.stop_on_divergence):
            log.append("diverged", 1.0, step)
            break
        queue.append(([None if p.grad is None else p.grad.copy()
                       for p in params], step))

        if len(queue) <= staleness:
            continue  # no gradient old enough to apply yet

        if staleness_model == "round_robin":
            grads, _read_step = queue.popleft()
        else:
            idx = int(rng.integers(len(queue)))
            grads, _read_step = queue[idx]
            del queue[idx]
        for p, g in zip(params, grads):
            p.grad = g
        if hooks.grad_clip_norm is not None:
            clip_grad_norm(params, hooks.grad_clip_norm)
        optimizer.step()

        if hasattr(optimizer, "stats"):
            stats = optimizer.stats()
            log.append("lr", stats["lr"], step)
            log.append("momentum", stats["momentum"], step)
            if "target_momentum" in stats:
                log.append("target_momentum", stats["target_momentum"], step)
            if "total_momentum" in stats:
                log.append("total_momentum", stats["total_momentum"], step)
                log.append("algorithmic_momentum",
                           stats["algorithmic_momentum"], step)
        if hooks.on_step is not None:
            hooks.on_step(step, log)
    return log
