"""Asynchronous-training simulator (Section 5.2 protocol).

The paper runs 16 asynchronous workers "forced to update the model in a
round-robin fashion, i.e. the gradient is delayed for 15 iterations".
That protocol is a deterministic delay queue, which we reproduce exactly:

- at step ``t`` the active worker *reads* the current model and computes a
  gradient (pushed to the queue);
- the oldest queued gradient — computed ``tau = workers - 1`` steps ago —
  is popped, loaded into the parameters, and the optimizer steps.

Since PR 1 the queue lives inside
:class:`~repro.sim.parameter_server.ShardedParameterServer`: parameters
are partitioned across ``num_shards`` server shards, each with its own
staleness queue, and the delayed gradient is reassembled from the shard
slices at application time.  Assembly is exact, so the trajectory is
bit-for-bit independent of the shard count — ``num_shards`` scales the
simulated storage/traffic topology without touching the math.

With ``workers=1`` the queue has no delay and the simulator is
step-for-step identical to :func:`repro.sim.trainer.train_sync` (a
property the test suite checks).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.sim.parameter_server import ShardedParameterServer
from repro.sim.sharding import PolicySpec
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog


def train_async(model: Module, optimizer: Optimizer,
                loss_fn: Callable[[], Tensor], steps: int, workers: int = 16,
                hooks: Optional[TrainerHooks] = None,
                log: Optional[TrainLog] = None,
                staleness_model: str = "round_robin",
                seed=None, num_shards: int = 1,
                shard_policy: PolicySpec = "hash",
                drain_final: bool = False) -> TrainLog:
    """Asynchronous training with staleness ``workers - 1``.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer applying delayed updates.
    loss_fn : callable
        Draws the next minibatch and returns the loss tensor.
    steps : int
        Number of worker read/push iterations.
    workers : int, optional
        Simulated worker count; the gradient delay is ``workers - 1``.
    hooks : TrainerHooks, optional
        Static clipping / callbacks / divergence threshold.
    log : TrainLog, optional
        Log to append to (a fresh one by default).
    staleness_model : str, optional
        - ``"round_robin"`` — the paper's Section 5.2 protocol: the
          gradient is delayed exactly ``workers - 1`` iterations.
        - ``"random"`` — memoryless completion order (the model of
          Mitliagkas et al.): each step applies a uniformly random queued
          gradient, so staleness has mean ``workers - 1`` but is random
          per step.
    seed:
        RNG seed for the ``"random"`` staleness model.
    num_shards : int, optional
        Partition the parameters across this many server shards (see
        :class:`~repro.sim.parameter_server.ShardedParameterServer`).
        Trajectory-neutral by construction.
    shard_policy : str or ShardAssignmentPolicy, optional
        Placement policy for ``num_shards > 1``.
    drain_final : bool, optional
        Apply the ``workers - 1`` still-queued gradients after the last
        step instead of discarding them.

    Returns
    -------
    TrainLog
        The logged ``"loss"`` series is the loss observed at
        gradient-compute (read) time, mirroring how asynchronous systems
        report training loss.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    server = ShardedParameterServer(model, optimizer,
                                    num_shards=num_shards,
                                    staleness=workers - 1,
                                    policy=shard_policy, seed=seed)
    return server.run(loss_fn, steps, hooks=hooks, log=log,
                      staleness_model=staleness_model,
                      drain_final=drain_final)
