"""Asynchronous-training simulator (Section 5.2 protocol).

The paper runs 16 asynchronous workers "forced to update the model in a
round-robin fashion, i.e. the gradient is delayed for 15 iterations".
Since PR 2 this module is a thin facade over the event-driven
:class:`~repro.cluster.runtime.ClusterRuntime`:

- ``staleness_model="round_robin"`` schedules ``workers`` simulated
  workers with a :class:`~repro.cluster.delays.ConstantDelay` model —
  identical compute times make arrivals keep read order, so each
  gradient is exactly ``workers - 1`` updates stale after warmup.  This
  reproduces the historical queue-based trajectories **bit-for-bit**
  (the test suite enforces it).
- ``staleness_model="random"`` uses the depth-gated discipline with
  uniformly random release — the memoryless completion-order model of
  Mitliagkas et al., unchanged from the queue implementation.

Parameters are still partitioned across ``num_shards`` server shards
(:class:`~repro.sim.parameter_server.ShardedParameterServer`), and the
trajectory remains bit-for-bit independent of the shard count.  For
heterogeneous, heavy-tailed, trace-replayed, or failure-prone clusters
— anything beyond this one delay knob — use the unified API:
:func:`repro.run.run` with a :class:`~repro.xp.spec.ScenarioSpec`, or
:func:`repro.run.build_cluster` for object-level control.

.. deprecated:: PR 5
    :func:`train_async` is a thin shim over
    :func:`repro.run.run_cluster` and emits a
    :class:`DeprecationWarning`; records stay bit-identical.

With ``workers=1`` the schedule has no delay and the simulator is
step-for-step identical to :func:`repro.sim.trainer.train_sync` (a
property the test suite checks).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.sim.sharding import PolicySpec
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog


def train_async(model: Module, optimizer: Optimizer,
                loss_fn: Callable[[], Tensor], steps: int, workers: int = 16,
                hooks: Optional[TrainerHooks] = None,
                log: Optional[TrainLog] = None,
                staleness_model: str = "round_robin",
                seed=None, num_shards: int = 1,
                shard_policy: PolicySpec = "hash",
                drain_final: bool = False) -> TrainLog:
    """Asynchronous training with staleness ``workers - 1``.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer applying delayed updates.
    loss_fn : callable
        Draws the next minibatch and returns the loss tensor.
    steps : int
        Number of worker read/push iterations.
    workers : int, optional
        Simulated worker count; the gradient delay is ``workers - 1``.
    hooks : TrainerHooks, optional
        Static clipping / callbacks / divergence threshold.
    log : TrainLog, optional
        Log to append to (a fresh one by default).
    staleness_model : str, optional
        - ``"round_robin"`` — the paper's Section 5.2 protocol: the
          gradient is delayed exactly ``workers - 1`` iterations
          (constant-delay cluster schedule).
        - ``"random"`` — memoryless completion order (the model of
          Mitliagkas et al.): each update releases a uniformly random
          queued gradient, so staleness has mean ``workers - 1`` but is
          random per step.
    seed:
        RNG seed for the ``"random"`` staleness model.
    num_shards : int, optional
        Partition the parameters across this many server shards (see
        :class:`~repro.sim.parameter_server.ShardedParameterServer`).
        Trajectory-neutral by construction.
    shard_policy : str or ShardAssignmentPolicy, optional
        Placement policy for ``num_shards > 1``.
    drain_final : bool, optional
        Apply the ``workers - 1`` still-in-flight gradients after the
        last step instead of discarding them.

    Returns
    -------
    TrainLog
        The logged ``"loss"`` series is the loss observed at
        gradient-compute (read) time, mirroring how asynchronous systems
        report training loss.  Cluster runs add per-update
        ``"staleness"``/``"worker"``/``"sim_time"`` series; note the
        ``"random"`` model is a single-reader queue protocol, so its
        ``"worker"`` series is identically 0 — per-worker attribution
        only exists on the ``"round_robin"`` (timed N-worker) path.

    .. deprecated:: PR 5
        A thin shim over :func:`repro.run.run_cluster`; it emits a
        :class:`DeprecationWarning` and stays bit-identical.
    """
    # imported lazily: repro.run sits above repro.sim in the layer
    # map, so a module-level import here would be circular
    from repro.run import run_round_robin
    from repro.utils.deprecation import warn_deprecated

    warn_deprecated("repro.sim.train_async", "repro.run.run_round_robin "
                    "(or repro.run.run with a ScenarioSpec)")
    return run_round_robin(
        model, optimizer, loss_fn, steps=steps, workers=workers,
        staleness_model=staleness_model, drain_final=drain_final,
        num_shards=num_shards, shard_policy=shard_policy, hooks=hooks,
        log=log, seed=seed)
