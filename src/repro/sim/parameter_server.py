"""Explicit parameter-server simulation with per-worker data shards.

The queue-based :func:`repro.sim.async_trainer.train_async` reproduces the
paper's round-robin protocol exactly but evaluates every gradient on a
shared loss closure.  This module models the system one level more
faithfully: each worker owns a data shard and a read snapshot of the
model, computes its gradient on its own minibatches, and ships it to a
central server that applies updates in arrival order.  Staleness emerges
from the schedule rather than being imposed on a single stream.

Used by the test suite to cross-validate the simpler simulator: with a
round-robin schedule and a single shared shard the two coincide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.utils.logging import TrainLog
from repro.utils.rng import new_rng

# A worker loss closure: given nothing, draws its next local minibatch and
# returns the loss tensor (the model must already hold the read snapshot).
WorkerLossFn = Callable[[], "object"]


@dataclass
class WorkerState:
    """Bookkeeping for one simulated worker."""

    worker_id: int
    loss_fn: WorkerLossFn
    read_step: int = -1
    snapshot: Optional[Dict[str, np.ndarray]] = field(default=None,
                                                      repr=False)
    pending_grads: Optional[List[np.ndarray]] = field(default=None,
                                                      repr=False)
    pending_loss: float = math.nan


class ParameterServer:
    """Central model + update application in gradient-arrival order.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer applying updates.
    worker_loss_fns:
        One loss closure per worker (e.g. each bound to its own data
        shard and batch stream).
    schedule:
        ``"round_robin"`` — workers deliver in fixed cyclic order
        (staleness exactly ``workers - 1``); ``"random"`` — a uniformly
        random worker delivers each step (memoryless staleness).
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 worker_loss_fns: Sequence[WorkerLossFn],
                 schedule: str = "round_robin", seed=None):
        if not worker_loss_fns:
            raise ValueError("need at least one worker")
        if schedule not in ("round_robin", "random"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        self.rng = new_rng(seed)
        self.workers = [WorkerState(worker_id=i, loss_fn=fn)
                        for i, fn in enumerate(worker_loss_fns)]
        self.step_count = 0

    # ------------------------------------------------------------- #
    def _compute_gradient(self, worker: WorkerState) -> None:
        """Worker reads the current model and computes its local gradient."""
        worker.read_step = self.step_count
        worker.snapshot = self.model.state_dict()
        self.model.zero_grad()
        loss = worker.loss_fn()
        loss.backward()
        worker.pending_grads = [
            None if p.grad is None else p.grad.copy()
            for p in self.optimizer.params]
        worker.pending_loss = float(loss.data)

    def _next_worker(self) -> WorkerState:
        if self.schedule == "round_robin":
            return self.workers[self.step_count % len(self.workers)]
        return self.workers[int(self.rng.integers(len(self.workers)))]

    def run(self, steps: int, log: Optional[TrainLog] = None,
            stop_on_divergence: Optional[float] = 1e6) -> TrainLog:
        """Simulate ``steps`` server updates; returns the training log.

        The log records, per applied update, the delivering worker's loss
        (at read time) and its staleness ``current_step - read_step``.
        """
        log = log if log is not None else TrainLog()
        # initial reads: every worker snapshots the initial model
        for worker in self.workers:
            self._compute_gradient(worker)

        for _ in range(steps):
            worker = self._next_worker()
            if worker.pending_grads is None:
                self._compute_gradient(worker)

            loss_value = worker.pending_loss
            log.append("loss", loss_value, self.step_count)
            log.append("staleness", self.step_count - worker.read_step,
                       self.step_count)
            log.append("worker", worker.worker_id, self.step_count)
            if not math.isfinite(loss_value) or (
                    stop_on_divergence is not None
                    and loss_value > stop_on_divergence):
                log.append("diverged", 1.0, self.step_count)
                break

            for p, g in zip(self.optimizer.params, worker.pending_grads):
                p.grad = g
            self.optimizer.step()
            self.step_count += 1

            # the delivering worker immediately reads the fresh model and
            # starts computing its next gradient
            self._compute_gradient(worker)
        return log

    @property
    def mean_staleness(self) -> float:
        """Expected staleness of the configured schedule."""
        m = len(self.workers)
        return float(m - 1)
