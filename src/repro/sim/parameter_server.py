"""Parameter-server simulations: worker-centric and sharded-server views.

Two complementary models of the paper's asynchronous training system live
here:

- :class:`ParameterServer` — worker-centric: each simulated worker owns a
  data shard and a read snapshot, ships gradients to a single central
  server, and staleness emerges from the delivery schedule.
- :class:`ShardedParameterServer` — server-centric: the *parameters* are
  hash-partitioned across N shards (the TensorFlow/ps-lite layout), each
  shard keeps its own staleness queue, and workers interact through
  batched ``pull``/``push`` calls.  With any shard count the applied
  update sequence is identical to the single-queue simulator — sharding
  changes the storage and delivery topology, never the math — which the
  test suite checks bit-for-bit.

The queue-based :func:`repro.sim.async_trainer.train_async` facade drives
:class:`ShardedParameterServer` under the hood and reproduces the paper's
round-robin protocol exactly.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from repro.nn.module import Module
from repro.optim.grad_clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.sim.sharding import PolicySpec, make_policy
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog
from repro.utils.rng import get_rng_state, new_rng, set_rng_state
from repro.utils.serialization import copy_array_list

# A worker loss closure: given nothing, draws its next local minibatch and
# returns the loss tensor (the model must already hold the read snapshot).
WorkerLossFn = Callable[[], "object"]


@dataclass
class WorkerState:
    """Bookkeeping for one simulated worker.

    Attributes
    ----------
    worker_id : int
        Position in the server's worker table.
    loss_fn : callable
        Draws the worker's next local minibatch and returns the loss.
    read_step : int
        Server step at which this worker last snapshotted the model.
    snapshot : dict or None
        The model state read at ``read_step``.
    pending_grads : list of ndarray or None
        Gradient computed at ``read_step``, awaiting delivery.
    pending_loss : float
        Loss observed at ``read_step``.
    """

    worker_id: int
    loss_fn: WorkerLossFn
    read_step: int = -1
    snapshot: Optional[Dict[str, np.ndarray]] = field(default=None,
                                                      repr=False)
    pending_grads: Optional[List[np.ndarray]] = field(default=None,
                                                      repr=False)
    pending_loss: float = math.nan


class ParameterServer:
    """Central model + update application in gradient-arrival order.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer applying updates.
    worker_loss_fns:
        One loss closure per worker (e.g. each bound to its own data
        shard and batch stream).
    schedule:
        ``"round_robin"`` — workers deliver in fixed cyclic order
        (staleness exactly ``workers - 1``); ``"random"`` — a uniformly
        random worker delivers each step (memoryless staleness).
    seed:
        RNG seed for the ``"random"`` schedule.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 worker_loss_fns: Sequence[WorkerLossFn],
                 schedule: str = "round_robin", seed=None):
        if not worker_loss_fns:
            raise ValueError("need at least one worker")
        if schedule not in ("round_robin", "random"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        self.rng = new_rng(seed)
        self.workers = [WorkerState(worker_id=i, loss_fn=fn)
                        for i, fn in enumerate(worker_loss_fns)]
        self.step_count = 0

    # ------------------------------------------------------------- #
    def _compute_gradient(self, worker: WorkerState) -> None:
        """Worker reads the current model and computes its local gradient."""
        worker.read_step = self.step_count
        worker.snapshot = self.model.state_dict()
        self.model.zero_grad()
        loss = worker.loss_fn()
        loss.backward()
        worker.pending_grads = [
            None if p.grad is None else p.grad.copy()
            for p in self.optimizer.params]
        worker.pending_loss = float(loss.data)

    def _next_worker(self) -> WorkerState:
        if self.schedule == "round_robin":
            return self.workers[self.step_count % len(self.workers)]
        return self.workers[int(self.rng.integers(len(self.workers)))]

    def run(self, steps: int, log: Optional[TrainLog] = None,
            stop_on_divergence: Optional[float] = 1e6) -> TrainLog:
        """Simulate ``steps`` server updates; returns the training log.

        The log records, per applied update, the delivering worker's loss
        (at read time) and its staleness ``current_step - read_step``.
        """
        log = log if log is not None else TrainLog()
        # initial reads: every worker snapshots the initial model
        for worker in self.workers:
            self._compute_gradient(worker)

        for _ in range(steps):
            worker = self._next_worker()
            if worker.pending_grads is None:
                self._compute_gradient(worker)

            loss_value = worker.pending_loss
            log.append("loss", loss_value, self.step_count)
            log.append("staleness", self.step_count - worker.read_step,
                       self.step_count)
            log.append("worker", worker.worker_id, self.step_count)
            if not math.isfinite(loss_value) or (
                    stop_on_divergence is not None
                    and loss_value > stop_on_divergence):
                log.append("diverged", 1.0, self.step_count)
                break

            for p, g in zip(self.optimizer.params, worker.pending_grads):
                p.grad = g
            self.optimizer.step()
            self.step_count += 1

            # the delivering worker immediately reads the fresh model and
            # starts computing its next gradient
            self._compute_gradient(worker)
        return log

    @property
    def mean_staleness(self) -> float:
        """Expected staleness of the configured schedule."""
        m = len(self.workers)
        return float(m - 1)


# ===================================================================== #
# sharded runtime
# ===================================================================== #
@dataclass
class ParameterShard:
    """One server shard: a subset of parameters plus its staleness queue.

    Attributes
    ----------
    shard_id : int
        Position in the server's shard table.
    indices : list of int
        Indices (into the optimizer's parameter list) this shard owns.
    staleness : int
        Minimum number of younger pushes that must be queued behind an
        entry before it may be applied (``tau``).
    queue : deque
        Pending ``(logical_step, gradient_slices)`` entries, oldest first.
    pushes, applied, pulls : int
        Traffic counters (pushes received, updates applied through this
        shard, batched reads served).
    """

    shard_id: int
    indices: List[int]
    staleness: int
    queue: Deque[Tuple[int, List[Optional[np.ndarray]]]] = \
        field(default_factory=deque, repr=False)
    pushes: int = 0
    applied: int = 0
    pulls: int = 0

    @property
    def empty(self) -> bool:
        """Whether this shard owns no parameters (it still exists, but is
        skipped by readiness checks so it can never stall the server)."""
        return not self.indices

    @property
    def ready(self) -> bool:
        """Whether the oldest queued entry has aged past ``staleness``."""
        return len(self.queue) > self.staleness

    @property
    def num_elements(self) -> int:
        """Total parameter elements owned (set by the server at init)."""
        return self._num_elements

    _num_elements: int = 0


class ShardedParameterServer:
    """Parameters hash-partitioned across N shards with staleness queues.

    The server-centric view of asynchronous training: workers ``pull`` the
    model (a batched read over every shard) and ``push`` gradients (a
    batched write that routes each parameter's slice to its owning
    shard's queue).  An update is applied once *every* non-empty shard has
    the corresponding logical step ready — the assembled whole-model
    gradient then drives one optimizer step, so tuners that need global
    gradient state (YellowFin, closed-loop YellowFin) work unchanged under
    any shard count.

    Because assembly is exact, the applied update sequence — and therefore
    the training trajectory — is bit-for-bit identical for every value of
    ``num_shards``, at any staleness.  Sharding changes the storage and
    traffic layout (what a real multi-node server would scale), never the
    optimization math.  The equivalence is enforced by
    ``tests/test_sim_sharded_ps.py``.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer applying assembled updates.
    num_shards : int, optional
        Number of server shards.  May exceed the number of parameters;
        surplus shards sit empty and are skipped by readiness checks.
    staleness : int or sequence of int, optional
        Gradient delay ``tau``: a queued gradient is applied only once
        ``staleness`` younger pushes sit behind it.  A sequence gives each
        shard its own delay; updates then wait for the slowest shard, so
        the effective system staleness is the maximum.
    policy : str or ShardAssignmentPolicy, optional
        Shard-placement policy (``"hash"``, ``"round_robin"``,
        ``"balanced"``, or a custom object); see :mod:`repro.sim.sharding`.
    seed:
        RNG seed for the ``"random"`` staleness model in :meth:`run`.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 num_shards: int = 1,
                 staleness: Union[int, Sequence[int]] = 0,
                 policy: PolicySpec = "hash", seed=None):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.model = model
        self.optimizer = optimizer
        self.num_shards = num_shards
        self.policy = make_policy(policy)
        self.rng = new_rng(seed)

        params = optimizer.params
        names = self._parameter_names(model, params)
        sizes = [int(p.size) for p in params]
        per_shard_staleness = self._expand_staleness(staleness, num_shards)
        self.shard_of = self.policy.assign(names, sizes, num_shards)
        if len(self.shard_of) != len(params):
            raise ValueError(
                f"policy returned {len(self.shard_of)} assignments for "
                f"{len(params)} parameters")
        for i, s in enumerate(self.shard_of):
            if not 0 <= s < num_shards:
                raise ValueError(
                    f"policy assigned parameter {i} to shard {s}, outside "
                    f"[0, {num_shards})")
        self.shards: List[ParameterShard] = []
        for k in range(num_shards):
            indices = [i for i, s in enumerate(self.shard_of) if s == k]
            shard = ParameterShard(shard_id=k, indices=indices,
                                   staleness=per_shard_staleness[k])
            shard._num_elements = sum(sizes[i] for i in indices)
            self.shards.append(shard)
        self._active = [s for s in self.shards if not s.empty]
        if not self._active:  # optimizer guarantees >= 1 parameter
            raise ValueError("no shard received any parameter")
        self.steps_pushed = 0
        self.steps_applied = 0

    # ------------------------------------------------------------- #
    # construction helpers
    # ------------------------------------------------------------- #
    @staticmethod
    def _parameter_names(model: Module, params: Sequence) -> List[str]:
        """Stable names for hashing: qualified module path when available,
        else a positional fallback."""
        by_id = {}
        if model is not None:
            for name, p in model.named_parameters():
                by_id[id(p)] = name
        return [by_id.get(id(p), f"param.{i}") for i, p in enumerate(params)]

    @staticmethod
    def _expand_staleness(staleness, num_shards: int) -> List[int]:
        if isinstance(staleness, (int, np.integer)):
            values = [int(staleness)] * num_shards
        else:
            values = [int(s) for s in staleness]
            if len(values) != num_shards:
                raise ValueError(
                    f"got {len(values)} staleness values for "
                    f"{num_shards} shards")
        for v in values:
            if v < 0:
                raise ValueError(f"staleness must be >= 0, got {v}")
        return values

    # ------------------------------------------------------------- #
    # batched pull / push
    # ------------------------------------------------------------- #
    def pull(self, shard_ids: Optional[Sequence[int]] = None) -> Dict[int, dict]:
        """Batched read of current parameter values, grouped by shard.

        Parameters
        ----------
        shard_ids : sequence of int, optional
            Restrict the read to these shards (default: all).

        Returns
        -------
        dict
            ``{shard_id: {"version": applied_count,
            "params": {param_index: copy}}}``.  One call covers the whole
            model — the batching a real system uses to amortize RPCs.
        """
        if shard_ids is None:
            shard_ids = range(self.num_shards)
        params = self.optimizer.params
        out: Dict[int, dict] = {}
        for k in shard_ids:
            shard = self.shards[k]
            shard.pulls += 1
            out[k] = {"version": shard.applied,
                      "params": {i: params[i].data.copy()
                                 for i in shard.indices}}
        return out

    def push(self, grads: Sequence[Optional[np.ndarray]],
             step: Optional[int] = None) -> int:
        """Batched gradient push: route each slice to its owning shard.

        Parameters
        ----------
        grads : sequence of ndarray or None
            One entry per optimizer parameter (``None`` for parameters
            without a gradient this step).
        step : int, optional
            Logical step the gradient was computed at (defaults to the
            push counter).

        Returns
        -------
        int
            The logical step the push was tagged with.
        """
        params = self.optimizer.params
        if len(grads) != len(params):
            raise ValueError(
                f"push got {len(grads)} gradients for {len(params)} "
                "parameters")
        if step is None:
            step = self.steps_pushed
        # copy at the ingest boundary (like pull does on the way out):
        # callers may legally reuse their gradient buffers next step, and
        # queued history must keep the values as pushed
        slices = copy_array_list(grads)
        for shard in self._active:
            shard.queue.append((step, [slices[i] for i in shard.indices]))
            shard.pushes += 1
        self.steps_pushed += 1
        return step

    def push_many(self, batch: Sequence[Tuple[int, Sequence]]) -> None:
        """Push several ``(step, grads)`` pairs in one batched call."""
        for step, grads in batch:
            self.push(grads, step=step)

    # ------------------------------------------------------------- #
    # update application
    # ------------------------------------------------------------- #
    @property
    def pending(self) -> int:
        """Number of pushed-but-unapplied logical steps."""
        return len(self._active[0].queue)

    @property
    def ready(self) -> bool:
        """Whether every non-empty shard can legally release an update.

        Empty shards are skipped — a shard with no parameters receives no
        pushes, and requiring it to be ready would deadlock the server
        (the "empty shard" edge case).
        """
        return all(s.ready for s in self._active)

    @property
    def effective_staleness(self) -> int:
        """The system delay an applied update actually experienced: the
        slowest shard gates assembly, so this is the max over shards."""
        return max(s.staleness for s in self._active)

    def _pop_assemble(self, pos: int = 0
                      ) -> Tuple[int, List[Optional[np.ndarray]]]:
        """Remove entry ``pos`` from every shard queue and reassemble the
        whole-model gradient."""
        grads: List[Optional[np.ndarray]] = [None] * len(self.optimizer.params)
        read_step = None
        for shard in self._active:
            step, slices = shard.queue[pos]
            del shard.queue[pos]
            shard.applied += 1
            for i, g in zip(shard.indices, slices):
                grads[i] = g
            if read_step is None:
                read_step = step
            elif read_step != step:
                raise RuntimeError(
                    f"shard queues desynchronized: step {step} vs "
                    f"{read_step}")
        return read_step, grads

    def apply_one(self, pos: int = 0, force: bool = False,
                  grad_transform: Optional[Callable[[], None]] = None
                  ) -> Optional[int]:
        """Assemble one queued logical step and run the optimizer on it.

        Parameters
        ----------
        pos : int, optional
            Queue position to release (0 = oldest; the round-robin
            protocol.  The memoryless model draws a random position).
        force : bool, optional
            Apply even if the staleness gate has not opened — used by
            :meth:`flush` to drain queues at the end of training.
        grad_transform : callable, optional
            Invoked after the assembled gradient is loaded into the
            parameters and before the optimizer steps (e.g. static
            clipping).

        Returns
        -------
        int or None
            The logical step of the applied gradient, or ``None`` when
            nothing was eligible.
        """
        if self.pending == 0:
            return None
        if not force and not self.ready:
            return None
        read_step, grads = self._pop_assemble(pos)
        for p, g in zip(self.optimizer.params, grads):
            p.grad = g
        if grad_transform is not None:
            grad_transform()
        self.optimizer.step()
        self.steps_applied += 1
        return read_step

    def flush(self, grad_transform: Optional[Callable[[], None]] = None
              ) -> List[int]:
        """Drain every queued gradient in arrival order, ignoring the
        staleness gates.

        This is the "final step" edge case: when training stops, ``tau``
        gradients are still in flight.  A real server either discards them
        or drains them; draining keeps the last few examples' signal and
        leaves the queues empty for checkpointing.

        Parameters
        ----------
        grad_transform : callable, optional
            Per-update hook forwarded to :meth:`apply_one`, so drained
            updates get the same treatment (clipping) as in-loop ones.

        Returns
        -------
        list of int
            Logical steps applied, oldest first.
        """
        applied = []
        while self.pending:
            applied.append(self.apply_one(force=True,
                                          grad_transform=grad_transform))
        return applied

    # ------------------------------------------------------------- #
    # training loop
    # ------------------------------------------------------------- #
    def run(self, loss_fn: Callable[[], "object"], steps: int,
            hooks: Optional[TrainerHooks] = None,
            log: Optional[TrainLog] = None,
            staleness_model: str = "round_robin",
            drain_final: bool = False) -> TrainLog:
        """Simulate asynchronous training against the sharded server.

        Per step: the active worker reads the live model, computes a
        gradient, and pushes it (batched) to the shards; if every shard's
        staleness gate is open, one queued logical step is assembled and
        applied.  This is exactly the Section 5.2 protocol of the paper,
        generalized to N shards.

        Parameters
        ----------
        loss_fn : callable
            Draws the next minibatch and returns the loss tensor.
        steps : int
            Number of worker read/push iterations.
        hooks : TrainerHooks, optional
            Static clipping / callbacks / divergence threshold.
        log : TrainLog, optional
            Log to append to (a fresh one by default).
        staleness_model : str, optional
            ``"round_robin"`` — oldest-first delivery (staleness exactly
            ``tau``); ``"random"`` — a uniformly random queued gradient is
            delivered (memoryless staleness with the same mean).
        drain_final : bool, optional
            After the loop, :meth:`flush` the ``tau`` still-queued
            gradients (logged under series ``"drained"``).

        Returns
        -------
        TrainLog
            With ``"loss"`` per worker read, optimizer ``stats()`` series
            per applied update, and ``"diverged"``/``"drained"`` markers.
        """
        if staleness_model not in ("round_robin", "random"):
            raise ValueError(f"unknown staleness model {staleness_model!r}")
        hooks = hooks or TrainerHooks()
        log = log if log is not None else TrainLog()
        params = self.optimizer.params
        clip = None
        if hooks.grad_clip_norm is not None:
            clip = lambda: clip_grad_norm(params, hooks.grad_clip_norm)
        diverged = False
        for step in range(steps):
            # active worker reads the current model
            self.model.zero_grad()
            loss = loss_fn()
            loss.backward()
            loss_value = float(loss.data)
            log.append("loss", loss_value, step)
            if not math.isfinite(loss_value) or (
                    hooks.stop_on_divergence is not None
                    and loss_value > hooks.stop_on_divergence):
                log.append("diverged", 1.0, step)
                diverged = True
                break
            self.push([p.grad for p in params], step)

            if not self.ready:
                continue  # no gradient old enough to apply yet
            if staleness_model == "round_robin":
                pos = 0
            else:
                pos = int(self.rng.integers(self.pending))
            self.apply_one(pos=pos, grad_transform=clip)

            self._log_stats(log, step)
            if hooks.on_step is not None:
                hooks.on_step(step, log)
        if drain_final and not diverged:
            # never drain past a divergence stop: the queued gradients
            # belong to a trajectory the run just declared broken
            for read_step in self.flush(grad_transform=clip):
                log.append("drained", float(read_step), steps)
        return log

    def _log_stats(self, log: TrainLog, step: int) -> None:
        """Record tuner statistics after an applied update (YellowFin)."""
        optimizer = self.optimizer
        if not hasattr(optimizer, "stats"):
            return
        stats = optimizer.stats()
        log.append("lr", stats["lr"], step)
        log.append("momentum", stats["momentum"], step)
        if "target_momentum" in stats:
            log.append("target_momentum", stats["target_momentum"], step)
        if "total_momentum" in stats:
            log.append("total_momentum", stats["total_momentum"], step)
            log.append("algorithmic_momentum",
                       stats["algorithmic_momentum"], step)

    def queued_steps(self) -> List[int]:
        """Logical steps of the pushed-but-unapplied queue entries,
        oldest first."""
        return [step for step, _ in self._active[0].queue]

    def drop_queued(self) -> List[int]:
        """Clear every shard queue, discarding unapplied gradients.

        The end-of-run protocol when in-flight work is abandoned rather
        than drained.

        Returns
        -------
        list of int
            Logical steps of the dropped entries, oldest first.
        """
        dropped = self.queued_steps()
        for shard in self.shards:
            shard.queue.clear()
        return dropped

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable server state: queues, counters, and RNG position.

        Parameters and optimizer state are *not* included — they belong
        to the model and optimizer checkpoints.  Restore with
        :meth:`load_state_dict` on a server constructed with the same
        configuration (shard count, policy, staleness); the placement is
        re-derived at construction, so only dynamic state travels.
        """
        return {
            "steps_pushed": self.steps_pushed,
            "steps_applied": self.steps_applied,
            "rng": get_rng_state(self.rng),
            "shards": [{
                "pushes": s.pushes,
                "applied": s.applied,
                "pulls": s.pulls,
                "queue": [(step, copy_array_list(slices))
                          for step, slices in s.queue],
            } for s in self.shards],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore dynamic state captured by :meth:`state_dict`."""
        if len(state["shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint has {len(state['shards'])} shards, server "
                f"has {self.num_shards}")
        self.steps_pushed = int(state["steps_pushed"])
        self.steps_applied = int(state["steps_applied"])
        set_rng_state(self.rng, state["rng"])
        for shard, shard_state in zip(self.shards, state["shards"]):
            shard.pushes = int(shard_state["pushes"])
            shard.applied = int(shard_state["applied"])
            shard.pulls = int(shard_state["pulls"])
            shard.queue.clear()
            # copy on restore (mirroring push's copy-at-ingest): queued
            # gradients must never alias the caller's checkpoint dict,
            # or a later in-place grad mutation corrupts the snapshot
            for step, slices in shard_state["queue"]:
                shard.queue.append((int(step), copy_array_list(slices)))

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #
    def shard_sizes(self) -> List[int]:
        """Elements owned by each shard (the balance the policy achieved)."""
        return [s.num_elements for s in self.shards]

    def __repr__(self) -> str:
        return (f"ShardedParameterServer(shards={self.num_shards}, "
                f"policy={self.policy.name!r}, "
                f"staleness={[s.staleness for s in self.shards]}, "
                f"pending={self.pending if self._active else 0})")
