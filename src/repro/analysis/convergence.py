"""Empirical convergence measurement and the paper's speedup metric.

Section 5.1 protocol: smooth training losses with a uniform window, find
the lowest smoothed loss achieved by *both* algorithms, and report the
ratio of iterations each needs to reach it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def smooth_losses(losses: Sequence[float], window: int = 1000) -> np.ndarray:
    """Uniform moving average with a growing head (no leading NaNs)."""
    losses = np.asarray(losses, dtype=float)
    if losses.ndim != 1:
        raise ValueError("losses must be 1-D")
    if window <= 1 or losses.size == 0:
        return losses.copy()
    window = min(window, losses.size)
    cumsum = np.cumsum(np.concatenate([[0.0], losses]))
    out = np.empty_like(losses)
    # growing head: average of everything so far
    head = min(window, losses.size)
    idx = np.arange(1, head + 1)
    out[:head] = cumsum[idx] / idx
    if losses.size > window:
        out[window:] = (cumsum[window + 1:] - cumsum[1:-window]) / window
    return out


def fit_linear_rate(distances: Sequence[float], burn_in: int = 0,
                    floor: float = 1e-14) -> float:
    """Least-squares fit of ``beta`` in ``dist_t ~ dist_0 * beta^t``.

    Used to verify the sqrt(mu) linear convergence of Fig. 3(b-d); values
    at or below ``floor`` (numerical zero) are excluded.
    """
    d = np.asarray(distances, dtype=float)[burn_in:]
    t = np.arange(d.size, dtype=float)
    mask = d > floor
    if mask.sum() < 2:
        raise ValueError("not enough positive distances to fit a rate")
    slope = np.polyfit(t[mask], np.log(d[mask]), 1)[0]
    return float(np.exp(slope))


def iterations_to_loss(losses: Sequence[float], target: float,
                       smooth_window: int = 0) -> Optional[int]:
    """First iteration whose (smoothed) loss is at or below ``target``."""
    series = smooth_losses(losses, smooth_window) if smooth_window > 1 \
        else np.asarray(losses, dtype=float)
    hits = np.nonzero(series <= target)[0]
    return int(hits[0]) if hits.size else None


def speedup_ratio(baseline_losses: Sequence[float],
                  candidate_losses: Sequence[float],
                  smooth_window: int = 0) -> Tuple[float, float]:
    """The paper's Table 2 metric.

    Returns ``(speedup, common_loss)``: the lowest smoothed loss achieved
    by both runs, and ``iters_baseline / iters_candidate`` to first reach
    it (>1 means the candidate is faster than the baseline).
    """
    base = smooth_losses(baseline_losses, smooth_window) \
        if smooth_window > 1 else np.asarray(baseline_losses, dtype=float)
    cand = smooth_losses(candidate_losses, smooth_window) \
        if smooth_window > 1 else np.asarray(candidate_losses, dtype=float)
    if base.size == 0 or cand.size == 0:
        raise ValueError("both loss curves must be non-empty")
    common = max(base.min(), cand.min())
    iters_base = np.nonzero(base <= common)[0][0] + 1
    iters_cand = np.nonzero(cand <= common)[0][0] + 1
    return float(iters_base) / float(iters_cand), float(common)
