"""Momentum bias/variance operators and their spectral radii.

The momentum update on a scalar quadratic with curvature ``h`` is the
linear system (paper eq. 4-5)

    [x_{t+1} - x*]   [1 - a h + mu   -mu] [x_t     - x*]
    [x_t     - x*] = [1               0 ] [x_{t-1} - x*],

whose matrix is :func:`momentum_operator` ``A``.  Lemma 3: inside the
robust region ``(1-sqrt(mu))^2 <= a h <= (1+sqrt(mu))^2`` the spectral
radius is exactly ``sqrt(mu)``.  The second-moment dynamics use the 3x3
operator ``B`` of eq. (12); Lemma 6 gives ``rho(B) = mu`` under the same
condition.
"""

from __future__ import annotations

import numpy as np


def momentum_operator(lr: float, curvature: float, momentum: float
                      ) -> np.ndarray:
    """The 2x2 bias operator ``A`` of eq. (5)."""
    return np.array([
        [1.0 - lr * curvature + momentum, -momentum],
        [1.0, 0.0],
    ])


def variance_operator(lr: float, curvature: float, momentum: float
                      ) -> np.ndarray:
    """The 3x3 variance operator ``B`` of eq. (12)."""
    m = 1.0 - lr * curvature + momentum
    return np.array([
        [m * m, momentum * momentum, -2.0 * momentum * m],
        [1.0, 0.0, 0.0],
        [m, 0.0, -momentum],
    ])


def spectral_radius(matrix: np.ndarray) -> float:
    """Magnitude of the largest eigenvalue."""
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def momentum_spectral_radius(lr: float, curvature: float, momentum: float
                             ) -> float:
    """``rho(A)`` — numerically, for any hyperparameters (Fig. 2)."""
    return spectral_radius(momentum_operator(lr, curvature, momentum))


def variance_spectral_radius(lr: float, curvature: float, momentum: float
                             ) -> float:
    """``rho(B)`` — numerically, for any hyperparameters."""
    return spectral_radius(variance_operator(lr, curvature, momentum))
