"""Hyperparameter-sensitivity analysis on quadratic models.

Quantifies the paper's Section 2 robustness claims empirically: how the
convergence rate of momentum SGD responds to learning-rate
misspecification at different momentum values, and how wide the "working"
band of learning rates is — the measurable counterpart of Fig. 2's
robust-region plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.convergence import fit_linear_rate
from repro.analysis.quadratic import NoisyQuadratic, run_momentum_gd


@dataclass
class SensitivityCurve:
    """Convergence rate as a function of learning rate, at fixed momentum."""

    momentum: float
    lrs: np.ndarray
    rates: np.ndarray  # fitted per-step contraction; >= 1 means no progress

    @property
    def working_band(self) -> float:
        """Width (in log10-lr units) of the lr range that converges at a
        rate within 5% of the best observed rate."""
        finite = self.rates < 1.0
        if not finite.any():
            return 0.0
        best = self.rates[finite].min()
        good = finite & (self.rates <= best + 0.05 * (1 - best))
        if not good.any():
            return 0.0
        lrs = self.lrs[good]
        return float(np.log10(lrs.max()) - np.log10(lrs.min()))


def lr_sensitivity(curvature: float, momentum: float,
                   lrs: Sequence[float], steps: int = 200,
                   x0: float = 1.0) -> SensitivityCurve:
    """Measure empirical contraction rates across a learning-rate sweep."""
    obj = NoisyQuadratic(curvature=curvature)
    floor = 1e-12 * max(abs(x0), 1.0)
    rates = []
    for lr in lrs:
        xs = np.abs(run_momentum_gd(obj, x0, lr, momentum, steps))
        if not np.isfinite(xs[-1]) or xs[-1] > 1e6 * abs(x0):
            rates.append(np.inf)
            continue
        # fit only the pre-underflow window: once |x| reaches numerical
        # zero, log-distances are meaningless
        below = np.nonzero(xs < floor)[0]
        cut = int(below[0]) if below.size else len(xs)
        xs_fit = xs[:cut]
        if len(xs_fit) < 4:
            rates.append(0.0)  # converged essentially instantly
            continue
        burn_in = min(len(xs_fit) // 4, steps // 4)
        try:
            rates.append(fit_linear_rate(xs_fit, burn_in=burn_in,
                                         floor=floor))
        except ValueError:
            rates.append(0.0)
    return SensitivityCurve(momentum=momentum, lrs=np.asarray(lrs, float),
                            rates=np.asarray(rates, float))


def robustness_gain(curvature: float, low_momentum: float,
                    high_momentum: float,
                    lrs: Optional[Sequence[float]] = None,
                    steps: int = 200) -> float:
    """How much wider the working lr band becomes at higher momentum.

    Returns the difference in working-band width (log10-lr units) — the
    quantitative version of "higher momentum is more robust to learning
    rate misspecification".
    """
    if lrs is None:
        lrs = np.logspace(-3, 1, 60) / curvature
    low = lr_sensitivity(curvature, low_momentum, lrs, steps=steps)
    high = lr_sensitivity(curvature, high_momentum, lrs, steps=steps)
    return high.working_band - low.working_band
