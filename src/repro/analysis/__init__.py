"""Momentum-dynamics analysis: the paper's Section 2 / Appendices A-D.

Spectral radii of the bias and variance operators, the robust region,
generalized condition numbers, the exact quadratic MSE recursion of
Lemma 5, and empirical convergence-rate fitting.
"""

from repro.analysis.operators import (momentum_operator, variance_operator,
                                      spectral_radius,
                                      momentum_spectral_radius,
                                      variance_spectral_radius)
from repro.analysis.robust_region import (in_robust_region, robust_lr_range,
                                          optimal_momentum,
                                          generalized_condition_number,
                                          tune_noiseless)
from repro.analysis.quadratic import (NoisyQuadratic, exact_expected_sq_dist,
                                      surrogate_expected_sq_dist,
                                      run_momentum_gd)
from repro.analysis.convergence import (smooth_losses, fit_linear_rate,
                                        iterations_to_loss, speedup_ratio)
from repro.analysis.sensitivity import (SensitivityCurve, lr_sensitivity,
                                        robustness_gain)

__all__ = [
    "momentum_operator", "variance_operator", "spectral_radius",
    "momentum_spectral_radius", "variance_spectral_radius",
    "in_robust_region", "robust_lr_range", "optimal_momentum",
    "generalized_condition_number", "tune_noiseless",
    "NoisyQuadratic", "exact_expected_sq_dist", "surrogate_expected_sq_dist",
    "run_momentum_gd",
    "smooth_losses", "fit_linear_rate", "iterations_to_loss", "speedup_ratio",
    "SensitivityCurve", "lr_sensitivity", "robustness_gain",
]
