"""The robust region (Lemma 3) and the noiseless tuning rule (eq. 9).

A hyperparameter pair ``(lr, mu)`` is *robust* for curvature ``h`` when

    (1 - sqrt(mu))^2 <= lr * h <= (1 + sqrt(mu))^2,

which pins the spectral radius of the momentum operator at ``sqrt(mu)``
regardless of ``lr`` and ``h`` — the insight behind YellowFin's design.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np


def in_robust_region(lr: float, curvature: float, momentum: float,
                     tol: float = 1e-12) -> bool:
    """Test membership of ``(lr, mu)`` in the robust region for ``h``."""
    if momentum < 0.0:
        return False
    s = math.sqrt(momentum)
    product = lr * curvature
    return (1.0 - s) ** 2 - tol <= product <= (1.0 + s) ** 2 + tol


def robust_lr_range(curvature: float, momentum: float) -> Tuple[float, float]:
    """Learning-rate interval achieving spectral radius ``sqrt(mu)`` (eq. 7)."""
    if curvature <= 0:
        raise ValueError(f"curvature must be positive, got {curvature}")
    s = math.sqrt(momentum)
    return ((1.0 - s) ** 2 / curvature, (1.0 + s) ** 2 / curvature)


def optimal_momentum(condition_number: float) -> float:
    """``mu* = ((sqrt(kappa) - 1)/(sqrt(kappa) + 1))^2`` (eq. 2)."""
    if condition_number < 1.0:
        raise ValueError(f"condition number must be >= 1, got {condition_number}")
    s = math.sqrt(condition_number)
    return ((s - 1.0) / (s + 1.0)) ** 2


def generalized_condition_number(curvature_fn: Callable[[np.ndarray], np.ndarray],
                                 domain: np.ndarray) -> float:
    """GCN ``nu`` (Definition 4): dynamic range of generalized curvature."""
    h = np.asarray(curvature_fn(np.asarray(domain)), dtype=float)
    h = h[np.isfinite(h)]
    if h.size == 0 or (h <= 0).any():
        raise ValueError("generalized curvature must be positive on the domain")
    return float(h.max() / h.min())


def tune_noiseless(h_min: float, h_max: float,
                   margin: float = 0.0) -> Tuple[float, float]:
    """The noiseless tuning rule (eq. 9): smallest robust ``mu`` and its lr.

    Returns ``(mu, lr)`` with ``mu = mu*(GCN)`` and
    ``lr = (1 - sqrt(mu))^2 / h_min``, the unique learning rate placing both
    extremal curvatures inside the robust region when ``mu = mu*``.

    ``margin`` optionally inflates ``mu`` by a relative factor (still
    satisfying the rule's ``mu >= mu*``).  At exactly ``mu*`` both extremal
    curvatures sit on the *edges* of the robust region, where the momentum
    operator is defective and compositions of different-curvature operators
    can resonate instead of contracting (the paper's own caveat that
    homogeneous spectral radii do not guarantee the product's norm); a few
    percent of margin restores the empirical ``sqrt(mu)`` rate.
    """
    if h_min <= 0 or h_max < h_min:
        raise ValueError(f"need 0 < h_min <= h_max, got ({h_min}, {h_max})")
    if margin < 0:
        raise ValueError(f"margin must be >= 0, got {margin}")
    mu = optimal_momentum(h_max / h_min)
    mu = min(mu * (1.0 + margin), 1.0 - 1e-9)
    lr = (1.0 - math.sqrt(mu)) ** 2 / h_min
    return mu, lr
