"""The noisy quadratic model (eq. 10) and the Lemma 5 exact MSE recursion.

``f(x) = (h/2) x^2 + C`` seen through minibatch gradients with variance
``C``.  Lemma 5 gives the exact expected squared distance to the optimum
after ``t`` steps of momentum SGD:

    E (x_{t+1} - x*)^2 = (e1^T A^t [x1 - x*, x0 - x*]^T)^2
                         + lr^2 C e1^T (I - B^t)(I - B)^{-1} e1,

with ``A``/``B`` the operators of :mod:`repro.analysis.operators`.  The
asymptotic surrogate (eq. 13/14) replaces operator powers by spectral
radii; in the robust region it reduces to

    E ... ~= mu^t (x0 - x*)^2 + (1 - mu^t) lr^2 C / (1 - mu).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.operators import (momentum_operator,
                                      momentum_spectral_radius,
                                      variance_operator,
                                      variance_spectral_radius)
from repro.utils.rng import new_rng


@dataclass
class NoisyQuadratic:
    """Scalar quadratic observed through noisy gradients.

    Parameters
    ----------
    curvature:
        ``h`` in eq. (10).
    noise_var:
        Gradient variance ``C``.
    optimum:
        Location of ``x*`` (eq. 10 centers it at 0).
    """

    curvature: float = 1.0
    noise_var: float = 0.0
    optimum: float = 0.0

    def gradient(self, x: float, rng: Optional[np.random.Generator] = None
                 ) -> float:
        """Full gradient plus, if an rng is given, mean-zero noise of
        variance ``noise_var`` (the SGD minibatch model)."""
        g = self.curvature * (x - self.optimum)
        if rng is not None and self.noise_var > 0:
            g += rng.normal(0.0, np.sqrt(self.noise_var))
        return float(g)

    def loss(self, x: float) -> float:
        return 0.5 * self.curvature * (x - self.optimum) ** 2


def run_momentum_gd(objective: NoisyQuadratic, x0: float, lr: float,
                    momentum: float, steps: int,
                    rng: Optional[np.random.Generator] = None,
                    seed=None) -> np.ndarray:
    """Momentum SGD trajectory on a scalar quadratic; returns iterates.

    The first two iterates are both ``x0`` (the paper sets ``x1 = x0``).
    """
    if rng is None and seed is not None:
        rng = new_rng(seed)
    xs = np.empty(steps + 1)
    xs[0] = x0
    x_prev, x = x0, x0
    for t in range(steps):
        g = objective.gradient(x, rng)
        x_next = x - lr * g + momentum * (x - x_prev)
        x_prev, x = x, x_next
        xs[t + 1] = x
    return xs


def exact_expected_sq_dist(objective: NoisyQuadratic, x0: float, lr: float,
                           momentum: float, steps: int) -> np.ndarray:
    """Lemma 5: exact ``E (x_t - x*)^2`` for ``t = 0 .. steps``.

    Computed by running the bias recursion with operator ``A`` and the
    variance recursion with operator ``B`` (Lemma 9) — numerically stable
    for any hyperparameters (no matrix inversion needed).
    """
    h, c_var = objective.curvature, objective.noise_var
    a_op = momentum_operator(lr, h, momentum)
    b_op = variance_operator(lr, h, momentum)

    out = np.empty(steps + 1)
    dx0 = x0 - objective.optimum
    bias_state = np.array([dx0, dx0])     # [x_t - x*, x_{t-1} - x*] means
    var_state = np.zeros(3)               # [U_t, U_{t-1}, V_t]
    noise_inject = np.array([lr * lr * c_var, 0.0, 0.0])

    out[0] = dx0 ** 2
    for t in range(steps):
        bias_state = a_op @ bias_state
        var_state = b_op @ var_state + noise_inject
        out[t + 1] = bias_state[0] ** 2 + var_state[0]
    return out


def surrogate_expected_sq_dist(objective: NoisyQuadratic, x0: float,
                               lr: float, momentum: float, steps: int,
                               robust_form: bool = False) -> np.ndarray:
    """The asymptotic surrogate of eq. (13), or its robust-region form (14).

    With ``robust_form=True``, uses ``rho(A) = sqrt(mu)`` and
    ``rho(B) = mu`` (valid only inside the robust region); otherwise uses
    the numerically-computed spectral radii.
    """
    h, c_var = objective.curvature, objective.noise_var
    if robust_form:
        rho_a = np.sqrt(momentum)
        rho_b = momentum
    else:
        rho_a = momentum_spectral_radius(lr, h, momentum)
        rho_b = variance_spectral_radius(lr, h, momentum)
    t = np.arange(steps + 1, dtype=float)
    dx0 = x0 - objective.optimum
    bias = rho_a ** (2 * t) * dx0 ** 2
    if rho_b >= 1.0:
        variance = np.full_like(t, np.inf)
        variance[0] = 0.0
    else:
        variance = (1.0 - rho_b ** t) * lr * lr * c_var / (1.0 - rho_b)
    return bias + variance


def one_step_surrogate(momentum: float, lr: float, dist_sq: float,
                       grad_var: float) -> float:
    """The SingleStep objective value ``mu D^2 + lr^2 C`` (eq. 15)."""
    return momentum * dist_sq + lr * lr * grad_var
