"""Pluggable serving policies: admission, scheduling, autoscaling.

The daemon makes three kinds of decisions per tick, and each is a
registered component under the new ``"serve"`` registry kind so
deployments can swap implementations by name (and downstream code can
register its own via :data:`repro.registry.registry`):

- **admission** (``quota``) — accept or reject a submission *before* a
  ticket exists, from per-tenant in-flight quotas and a global pending
  cap.  Rejections are all-or-nothing per submission: a Matrix either
  fully fits or is refused, so partial grids never dangle.
- **scheduler** (``fifo``, ``batching``) — turn the pending queue into
  dispatch units.  The batching scheduler is the cross-tenant twin of
  :mod:`repro.vec`: pending jobs in one batch family (see
  :func:`repro.serve.batching.family_key`) coalesce into a single
  lockstep engine run once ``min_batch`` members are waiting or the
  oldest has aged past ``batch_window`` seconds.
- **autoscaler** (``queue_depth``) — choose the active worker count
  between the pool's min and max from backlog per active worker,
  scaling up eagerly (workers are pre-forked and warm, so activating
  one is free — the BLITZSCALE premise) and down lazily after
  ``idle_ticks`` consecutive underloaded ticks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.registry import registry
from repro.serve.jobs import Job


class AdmissionDecision:
    """Outcome of an admission check.

    Attributes
    ----------
    admitted : bool
        Whether the submission may proceed.
    reason : str
        Human-readable rejection reason (empty when admitted); the
        daemon returns it verbatim in the HTTP 429 body.
    """

    __slots__ = ("admitted", "reason")

    def __init__(self, admitted: bool, reason: str = ""):
        self.admitted = admitted
        self.reason = reason

    def __bool__(self) -> bool:
        """Truthiness mirrors :attr:`admitted`."""
        return self.admitted


class QuotaAdmission:
    """Per-tenant in-flight quota plus a global pending-queue cap.

    Parameters
    ----------
    max_pending : int
        Global cap on jobs queued but not yet dispatched; submissions
        that would push past it are rejected regardless of tenant.
    max_inflight_per_tenant : int
        Cap on one tenant's unfinished tickets; cache hits don't
        count (they finish at submit time), deduplicated attaches do
        (the tenant is still waiting on the shared job).
    """

    def __init__(self, max_pending: int = 256,
                 max_inflight_per_tenant: int = 32):
        self.max_pending = int(max_pending)
        self.max_inflight_per_tenant = int(max_inflight_per_tenant)

    def admit(self, *, tenant_active: int, queue_depth: int,
              new_jobs: int, new_tickets: int) -> AdmissionDecision:
        """Decide one submission (possibly a multi-spec Matrix).

        Parameters
        ----------
        tenant_active : int
            The tenant's currently unfinished tickets.
        queue_depth : int
            Jobs currently pending dispatch.
        new_jobs : int
            Jobs this submission would add to the pending queue
            (specs not answered by cache or in-flight dedup).
        new_tickets : int
            Unfinished tickets this submission would add for the
            tenant (everything not answered by cache).

        Returns
        -------
        AdmissionDecision
            Admitted, or rejected with a quota-naming reason.
        """
        if tenant_active + new_tickets > self.max_inflight_per_tenant:
            return AdmissionDecision(
                False,
                f"tenant quota exceeded: {tenant_active} active + "
                f"{new_tickets} new > {self.max_inflight_per_tenant} "
                "allowed in flight per tenant")
        if queue_depth + new_jobs > self.max_pending:
            return AdmissionDecision(
                False,
                f"server saturated: {queue_depth} pending + {new_jobs} "
                f"new > {self.max_pending} queue capacity")
        return AdmissionDecision(True)


class FifoScheduler:
    """Strict arrival-order dispatch, one job per unit (no batching).

    The control baseline for the batching benchmark: every pending job
    becomes its own scalar execution unit as soon as a worker slot is
    free.
    """

    def plan(self, pending: Sequence[Job], slots: int,
             now: float) -> List[List[Job]]:
        """Dispatch up to ``slots`` single-job units in FIFO order.

        Parameters
        ----------
        pending : sequence of Job
            The pending queue, oldest first.
        slots : int
            Free worker slots available this tick.
        now : float
            Current ``time.monotonic()`` (unused; part of the
            scheduler interface).

        Returns
        -------
        list of list of Job
            Dispatch units, each a single-member list.
        """
        return [[job] for job in pending[:max(0, slots)]]


class BatchingScheduler:
    """Coalesce lockstep-compatible jobs from any tenants into one unit.

    Pending jobs sharing a batch family (same
    :func:`repro.serve.batching.family_key`) are dispatched together as
    one :class:`~repro.vec.engine.BatchedClusterEngine` run.  A family
    dispatches when it has at least ``min_batch`` waiting members, or
    unconditionally once its oldest member has waited ``batch_window``
    seconds — bounded added latency in exchange for batch occupancy.
    Unbatchable jobs (no family) dispatch FIFO as scalar units.

    Parameters
    ----------
    max_batch : int
        Largest unit size; an oversubscribed family splits into
        multiple units.
    min_batch : int
        Members required to dispatch a family before its window
        expires.
    batch_window : float
        Seconds the scheduler will hold a too-small family open
        waiting for more members.
    """

    def __init__(self, max_batch: int = 16, min_batch: int = 2,
                 batch_window: float = 0.05):
        if max_batch < 1 or min_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        self.max_batch = int(max_batch)
        self.min_batch = int(min_batch)
        self.batch_window = float(batch_window)

    def plan(self, pending: Sequence[Job], slots: int,
             now: float) -> List[List[Job]]:
        """Form dispatch units from the pending queue.

        Parameters
        ----------
        pending : sequence of Job
            The pending queue, oldest first.
        slots : int
            Free worker slots available this tick.
        now : float
            Current ``time.monotonic()``, compared against each job's
            ``submitted`` stamp for window expiry.

        Returns
        -------
        list of list of Job
            At most ``slots`` units; batched units keep their members'
            arrival order, and a family that is still under
            ``min_batch`` within its window is held back entirely.
        """
        slots = max(0, slots)
        units: List[List[Job]] = []
        families: dict = {}
        order: List[object] = []     # family keys / scalar jobs, FIFO
        for job in pending:
            if job.family is None:
                order.append(job)
            else:
                if job.family not in families:
                    families[job.family] = []
                    order.append(job.family)
                families[job.family].append(job)
        for entry in order:
            if len(units) >= slots:
                break
            if isinstance(entry, Job):
                units.append([entry])
                continue
            members = families[entry]
            ripe = (len(members) >= self.min_batch
                    or now - members[0].submitted >= self.batch_window)
            if not ripe:
                continue
            for start in range(0, len(members), self.max_batch):
                if len(units) >= slots:
                    break
                units.append(members[start:start + self.max_batch])
        return units


class QueueDepthAutoscaler:
    """Scale the active worker count from backlog per active worker.

    Scale-up is immediate (activating a pre-forked warm worker costs
    nothing); scale-down waits for ``idle_ticks`` consecutive
    underloaded ticks so a bursty arrival process doesn't flap the
    pool.

    Parameters
    ----------
    backlog_per_worker : int
        Target pending-jobs-per-active-worker; depth above the target
        activates more workers, depth that would be satisfied by fewer
        workers (with hysteresis) deactivates them.
    idle_ticks : int
        Consecutive underloaded ticks required before shrinking.
    """

    def __init__(self, backlog_per_worker: int = 2, idle_ticks: int = 5):
        if backlog_per_worker < 1:
            raise ValueError("backlog_per_worker must be >= 1")
        self.backlog_per_worker = int(backlog_per_worker)
        self.idle_ticks = int(idle_ticks)
        self._calm = 0

    def target(self, *, queue_depth: int, busy: int, active: int,
               min_workers: int, max_workers: int) -> int:
        """The desired active worker count for this tick.

        Parameters
        ----------
        queue_depth : int
            Jobs pending dispatch.
        busy : int
            Workers currently executing a unit.
        active : int
            Workers currently eligible for assignment.
        min_workers, max_workers : int
            Pool bounds.

        Returns
        -------
        int
            New active count in ``[min_workers, max_workers]``; equal
            to ``active`` when no change is warranted.
        """
        load = queue_depth + busy
        needed = -(-load // self.backlog_per_worker) if load else 0
        desired = max(min_workers, min(max_workers, needed))
        if desired > active:
            self._calm = 0
            return desired
        if desired < active:
            self._calm += 1
            if self._calm >= self.idle_ticks:
                self._calm = 0
                # shrink one step at a time; never below the busy set
                return max(desired, busy, min_workers, active - 1)
            return active
        self._calm = 0
        return active


registry.register("serve", "quota", QuotaAdmission,
                  description="per-tenant in-flight quota + global "
                              "pending cap admission")
registry.register("serve", "fifo", FifoScheduler,
                  description="arrival-order scalar dispatch (no "
                              "cross-tenant batching)")
registry.register("serve", "batching", BatchingScheduler,
                  description="coalesce lockstep-compatible jobs "
                              "across tenants into batched engine runs")
registry.register("serve", "queue_depth", QueueDepthAutoscaler,
                  description="scale active workers from backlog per "
                              "worker with scale-down hysteresis")
