"""Multi-tenant tuning service: daemon, client API, and load harness.

``repro.serve`` makes the paper's pitch — hands-free momentum tuning
as a *service* — literal: a long-running daemon (``python -m repro
serve``) accepts :class:`~repro.xp.spec.ScenarioSpec` traffic over
localhost HTTP+JSON from many concurrent clients and returns records
**bit-identical** in deterministic identity to a local
:func:`repro.run.run` of the same specs.  The layer is a composition
of seams the stack already had:

- the content-addressed :class:`~repro.xp.cache.ResultCache` fronts
  every submission, and an in-flight dedup index attaches concurrent
  duplicates to the one running job — a spec is computed at most once;
- lockstep-compatible specs from *different tenants* coalesce into a
  single :class:`~repro.vec.engine.BatchedClusterEngine` run
  (:mod:`repro.serve.batching`), each member keeping its own identity;
- per-iteration metrics stream live through the PR 7
  :class:`~repro.obs.metrics.MetricsRegistry` subscriber seam;
- admission, scheduling, and autoscaling are registry components
  under the new ``"serve"`` kind (:mod:`repro.serve.policies`);
- execution runs on a BLITZSCALE-style pre-forked warm pool
  (:class:`WorkerPool`) scaled live between min/max workers with no
  cold starts;
- :class:`LoadGenerator` drives the whole thing with open-loop
  Poisson arrivals for the ``BENCH_serve.json`` latency percentiles.

Client quickstart::

    from repro.serve import Client
    client = Client(("127.0.0.1", 8631), tenant="alice")
    ticket = client.submit(spec)
    record = client.result(ticket)      # a ScenarioResult

See ``docs/serve.md`` for the protocol, quota, autoscaling, and
batching semantics.
"""

from repro.serve.batching import batchable, execute_group, family_key
from repro.serve.client import (AdmissionRejected, Client, JobFailed,
                                ServeError)
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.jobs import Job, ServeState, TenantStats, Ticket
from repro.serve.loadgen import LoadGenerator, LoadReport, percentile
from repro.serve.policies import (AdmissionDecision, BatchingScheduler,
                                  FifoScheduler, QueueDepthAutoscaler,
                                  QuotaAdmission)
from repro.serve.pool import WorkerPool, fork_available

__all__ = [
    "AdmissionDecision",
    "AdmissionRejected",
    "BatchingScheduler",
    "Client",
    "FifoScheduler",
    "Job",
    "JobFailed",
    "LoadGenerator",
    "LoadReport",
    "QueueDepthAutoscaler",
    "QuotaAdmission",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeState",
    "TenantStats",
    "Ticket",
    "WorkerPool",
    "batchable",
    "execute_group",
    "family_key",
    "fork_available",
    "percentile",
]
