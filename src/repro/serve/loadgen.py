"""Open-loop load harness for the tuning service.

Measures the daemon the way MLSYSIM argues services should be
measured: against a **first-principles arrival model**, not anecdotal
back-to-back requests.  Arrivals are an open-loop Poisson process —
inter-arrival gaps drawn i.i.d. exponential from a seeded RNG, and a
request is launched at its scheduled instant *regardless of whether
earlier requests completed* — so a saturated server sees queueing
build up exactly as it would under independent tenants, instead of the
closed-loop self-throttling that hides latency cliffs.

Each request is one tenant's ``submit → result`` round trip through
the real :class:`~repro.serve.client.Client` HTTP path; the report
aggregates end-to-end latency percentiles (p50/p95/p99 — the numbers
``BENCH_serve.json`` records and perf-gate diffs) plus completed
throughput.  Rejections (quota 429s) and failures are counted, not
silently dropped.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.xp.spec import ScenarioSpec

from repro.serve.client import (AdmissionRejected, Client, JobFailed,
                                ServeError)


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Returns 0.0 for an empty sample list, so empty load reports stay
    JSON-clean instead of raising.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))   # ceil without math
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """Aggregate outcome of one open-loop run.

    Attributes
    ----------
    offered : int
        Requests the arrival process generated.
    completed, rejected, errors : int
        Requests that returned a record / were refused by admission
        (HTTP 429) / failed any other way.
    duration_s : float
        Makespan from the first scheduled arrival to the last
        completion.
    throughput_rps : float
        ``completed / duration_s``.
    latency_p50_s, latency_p95_s, latency_p99_s : float
        End-to-end submit→result latency percentiles over completed
        requests.
    latency_mean_s : float
        Mean completed-request latency.
    """

    offered: int
    completed: int
    rejected: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float

    def as_dict(self) -> dict:
        """Plain-dict mirror (the shape the bench reporter records)."""
        return {"offered": self.offered, "completed": self.completed,
                "rejected": self.rejected, "errors": self.errors,
                "duration_s": self.duration_s,
                "throughput_rps": self.throughput_rps,
                "latency_p50_s": self.latency_p50_s,
                "latency_p95_s": self.latency_p95_s,
                "latency_p99_s": self.latency_p99_s,
                "latency_mean_s": self.latency_mean_s}


class LoadGenerator:
    """Poisson open-loop driver over the client API.

    Parameters
    ----------
    address : tuple of (str, int)
        The daemon's bound address.
    spec_factory : callable
        ``spec_factory(index, tenant) -> ScenarioSpec`` — what each
        arrival submits.  Vary the seed per index for an all-miss
        uncached workload; return repeats for a cache-heavy mix.
    tenants : int
        Requests round-robin over ``tenant-0 .. tenant-{n-1}``.
    rate_hz : float
        Mean arrival rate of the Poisson process.
    duration_s : float
        Length of the arrival window (requests in flight at the end
        still run to completion).
    seed : int
        Seed of the arrival-gap RNG, so a load profile is replayable.
    result_timeout : float
        Per-request wait bound on ``Client.result``.
    """

    def __init__(self, address: Tuple[str, int],
                 spec_factory: Callable[[int, str], ScenarioSpec], *,
                 tenants: int = 2, rate_hz: float = 20.0,
                 duration_s: float = 2.0, seed: int = 0,
                 result_timeout: float = 120.0):
        if tenants < 1 or rate_hz <= 0 or duration_s <= 0:
            raise ValueError("need tenants >= 1 and positive "
                             "rate_hz/duration_s")
        self.address = (str(address[0]), int(address[1]))
        self.spec_factory = spec_factory
        self.tenants = int(tenants)
        self.rate_hz = float(rate_hz)
        self.duration_s = float(duration_s)
        self.seed = int(seed)
        self.result_timeout = float(result_timeout)

    def arrival_offsets(self) -> List[float]:
        """The replayable arrival schedule (seconds from run start)."""
        rng = random.Random(self.seed)
        offsets, t = [], 0.0
        while True:
            t += rng.expovariate(self.rate_hz)
            if t >= self.duration_s:
                return offsets
            offsets.append(t)

    def run(self) -> LoadReport:
        """Drive the full arrival schedule and aggregate the report.

        Blocks until every launched request settles (completes, is
        rejected, or errors).
        """
        offsets = self.arrival_offsets()
        lock = threading.Lock()
        latencies: List[float] = []
        counts = {"rejected": 0, "errors": 0}
        done_at = [0.0]

        def one_request(index: int, tenant: str) -> None:
            client = Client(self.address, tenant=tenant,
                            timeout=self.result_timeout)
            began = time.monotonic()
            try:
                ticket = client.submit(self.spec_factory(index, tenant))
                client.result(ticket, timeout=self.result_timeout)
            except AdmissionRejected:
                with lock:
                    counts["rejected"] += 1
                return
            except (JobFailed, ServeError):
                with lock:
                    counts["errors"] += 1
                return
            finished = time.monotonic()
            with lock:
                latencies.append(finished - began)
                done_at[0] = max(done_at[0], finished)

        threads = []
        start = time.monotonic()
        for index, offset in enumerate(offsets):
            lag = start + offset - time.monotonic()
            if lag > 0:
                time.sleep(lag)
            tenant = f"tenant-{index % self.tenants}"
            thread = threading.Thread(
                target=one_request, args=(index, tenant),
                name=f"loadgen-{index}", daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=self.result_timeout + 30.0)

        end = max(done_at[0], time.monotonic())
        duration = max(end - start, 1e-9)
        completed = len(latencies)
        mean = sum(latencies) / completed if completed else 0.0
        return LoadReport(
            offered=len(offsets), completed=completed,
            rejected=counts["rejected"], errors=counts["errors"],
            duration_s=duration,
            throughput_rps=completed / duration,
            latency_p50_s=percentile(latencies, 50),
            latency_p95_s=percentile(latencies, 95),
            latency_p99_s=percentile(latencies, 99),
            latency_mean_s=mean)
