"""Pre-forked warm worker pool with live activation scaling.

The pool follows the BLITZSCALE premise: the expensive part of adding
serving capacity is process startup (interpreter boot, imports, page
faults), so **all** ``max_workers`` processes are forked once at daemon
startup — inheriting the parent's already-imported, already-warmed
modules — and autoscaling merely changes how many of them are
*eligible for assignment* (:meth:`WorkerPool.set_active`).  Scale-up is
therefore instantaneous: no cold starts, ever.

Each worker owns a private task queue (assignment is an explicit
parent-side decision, one in-flight unit per worker) and shares one
message queue back to the parent carrying streamed per-iteration
events and unit results.  A **unit** is the pool's work granule: a
list of specs — a single spec executed through the scalar reference
engine (:func:`repro.run.backends.execute_scalar`, with per-iteration
events forwarded from the obs subscriber seam), or a multi-member
batch family executed as one lockstep engine run
(:func:`repro.serve.batching.execute_group`).

Where ``fork`` is unavailable the pool degrades to threads.  Because
the observability session is process-global, thread workers serialize
execution under a shared lock — records stay bit-identical, the pool
just loses parallelism (mirroring how :mod:`repro.mp` capability-gates
itself rather than breaking).
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Dict, List, Optional, Sequence

from repro.xp.spec import ScenarioSpec

#: Modes the pool can run in.
MODES = ("auto", "fork", "thread")

#: Serializes thread-mode execution: the obs session install is
#: process-global, so concurrent in-process executions would cross
#: their streams (fork-mode workers each own their process global).
_THREAD_EXEC_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether the platform supports the pre-forked process pool."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _execute_unit(task: dict, out, worker_id: int) -> None:
    """Run one dispatch unit and report back on the message queue.

    Shared by fork and thread workers.  ``task`` carries the unit id,
    the member specs (as :meth:`ScenarioSpec.as_dict` payloads), and
    the streaming stride; every per-iteration payload the engine emits
    through the metrics subscriber seam is forwarded as an
    ``iteration`` message before the terminal ``result`` message.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.session import ObsSession
    from repro.run.backends import execute_scalar
    from repro.serve.batching import execute_group

    unit = task["unit"]
    specs = [ScenarioSpec.from_dict(d) for d in task["specs"]]
    stride = max(1, int(task.get("stream_every", 1)))
    seen = [0]

    def forward(step: int, payload: dict) -> None:
        seen[0] += 1
        if (seen[0] - 1) % stride:
            return
        event = {"event": "iteration", "step": int(step)}
        event.update({k: v for k, v in payload.items() if k != "step"})
        out.put({"kind": "event", "unit": unit, "worker": worker_id,
                 "event": event})

    try:
        if len(specs) == 1:
            # scalar unit: attach a metrics-only session so the
            # cluster runtime's per-commit emit reaches the client
            metrics = MetricsRegistry()
            metrics.subscribe(forward)
            with ObsSession(metrics=metrics):
                record = execute_scalar(specs[0])
            record.env["serve_unit"] = "scalar"
            results = [record]
        else:
            # batched unit: the lockstep engine has no per-commit
            # emit seam; tenants get lifecycle events only
            results = execute_group(specs)
        out.put({"kind": "result", "unit": unit, "worker": worker_id,
                 "results": [r.as_dict() for r in results]})
    except Exception:
        out.put({"kind": "result", "unit": unit, "worker": worker_id,
                 "error": traceback.format_exc(limit=20)})


def _fork_worker_main(worker_id: int, tasks, out) -> None:
    """Child process loop: execute tasks until the ``None`` sentinel."""
    while True:
        task = tasks.get()
        if task is None:
            return
        _execute_unit(task, out, worker_id)


def _thread_worker_main(worker_id: int, tasks, out) -> None:
    """Thread loop: like the fork loop, but serialized under the
    module execution lock (the obs session global is per-process)."""
    while True:
        task = tasks.get()
        if task is None:
            return
        with _THREAD_EXEC_LOCK:
            _execute_unit(task, out, worker_id)


class WorkerPool:
    """Warm pool of ``max_workers`` executors with activation scaling.

    Parameters
    ----------
    min_workers, max_workers : int
        Activation bounds; all ``max_workers`` executors exist from
        :meth:`start` on, and :meth:`set_active` moves the eligible
        count within ``[min_workers, max_workers]``.
    mode : str
        ``"fork"`` (pre-forked processes), ``"thread"`` (serialized
        in-process fallback), or ``"auto"`` (fork where available).
    stream_every : int
        Forward every ``k``-th per-iteration payload from scalar units
        (1 = every committed iteration).
    """

    def __init__(self, min_workers: int = 1, max_workers: int = 4,
                 mode: str = "auto", stream_every: int = 1):
        if mode not in MODES:
            raise ValueError(f"unknown pool mode {mode!r}; one of {MODES}")
        if not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if mode == "auto":
            mode = "fork" if fork_available() else "thread"
        if mode == "fork" and not fork_available():
            raise ValueError("fork pool mode unavailable on this platform")
        self.mode = mode
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.stream_every = int(stream_every)
        self.active = int(min_workers)
        self._workers: List[object] = []
        self._tasks: List[object] = []
        self._out = None
        self._busy: Dict[int, str] = {}      # worker id -> unit id
        self._started = False
        #: lifetime counts the daemon folds into its status payload
        self.units_dispatched = 0
        self.scale_events = 0

    # ------------------------------------------------------------- #
    # lifecycle
    # ------------------------------------------------------------- #
    def start(self) -> "WorkerPool":
        """Fork (or spawn threads for) all ``max_workers`` executors."""
        if self._started:
            return self
        if self.mode == "fork":
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._out = ctx.Queue()
            for wid in range(self.max_workers):
                tasks = ctx.Queue()
                proc = ctx.Process(target=_fork_worker_main,
                                   args=(wid, tasks, self._out),
                                   daemon=True)
                proc.start()
                self._tasks.append(tasks)
                self._workers.append(proc)
        else:
            self._out = queue.Queue()
            for wid in range(self.max_workers):
                tasks: "queue.Queue" = queue.Queue()
                thread = threading.Thread(
                    target=_thread_worker_main, args=(wid, tasks, self._out),
                    name=f"serve-worker-{wid}", daemon=True)
                thread.start()
                self._tasks.append(tasks)
                self._workers.append(thread)
        self._started = True
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain sentinels to every executor and reap them."""
        if not self._started:
            return
        for tasks in self._tasks:
            tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout)
            if self.mode == "fork" and worker.is_alive():
                worker.terminate()
        if self.mode == "fork" and self._out is not None:
            self._out.close()
            self._out.join_thread()
        self._workers, self._tasks = [], []
        self._busy.clear()
        self._started = False

    def ensure_alive(self) -> int:
        """Respawn dead fork workers in place; returns respawn count.

        A worker that died mid-unit leaves its unit without a result;
        the daemon times such units out via :meth:`orphaned_units`.
        """
        if self.mode != "fork" or not self._started:
            return 0
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        respawned = 0
        for wid, proc in enumerate(self._workers):
            if proc.is_alive():
                continue
            self._busy.pop(wid, None)
            fresh = ctx.Process(target=_fork_worker_main,
                                args=(wid, self._tasks[wid], self._out),
                                daemon=True)
            fresh.start()
            self._workers[wid] = fresh
            respawned += 1
        return respawned

    # ------------------------------------------------------------- #
    # scaling + assignment
    # ------------------------------------------------------------- #
    def set_active(self, n: int) -> int:
        """Set the eligible worker count (clamped to the bounds).

        Purely an assignment policy change — no processes start or
        stop, which is the whole point of the warm pool.  Returns the
        effective active count.
        """
        n = max(self.min_workers, min(self.max_workers, int(n)))
        if n != self.active:
            self.scale_events += 1
        self.active = n
        return n

    def idle_slots(self) -> int:
        """Active workers with no unit in flight."""
        return sum(1 for wid in range(self.active)
                   if wid not in self._busy)

    def busy_count(self) -> int:
        """Workers (active or draining) with a unit in flight."""
        return len(self._busy)

    def dispatch(self, unit_id: str,
                 specs: Sequence[ScenarioSpec]) -> Optional[int]:
        """Assign one unit to an idle active worker.

        Returns the worker id, or ``None`` when every active worker is
        busy (the caller retries next tick — one in-flight unit per
        worker is the pool's backpressure, and what lets pending jobs
        accumulate into batch families).
        """
        if not self._started:
            raise RuntimeError("WorkerPool.dispatch before start()")
        for wid in range(self.active):
            if wid in self._busy:
                continue
            self._busy[wid] = unit_id
            self._tasks[wid].put({
                "unit": unit_id,
                "specs": [s.as_dict() for s in specs],
                "stream_every": self.stream_every,
            })
            self.units_dispatched += 1
            return wid
        return None

    def complete(self, worker_id: int) -> None:
        """Mark a worker idle again (its result message arrived)."""
        self._busy.pop(worker_id, None)

    def orphaned_units(self) -> List[str]:
        """Units assigned to workers that are no longer alive."""
        if self.mode != "fork":
            return []
        return [unit for wid, unit in self._busy.items()
                if not self._workers[wid].is_alive()]

    # ------------------------------------------------------------- #
    # messages
    # ------------------------------------------------------------- #
    def next_message(self, timeout: float = 0.1) -> Optional[dict]:
        """Next worker message (``event`` or ``result``), or ``None``.

        Blocks up to ``timeout`` seconds; the daemon's collector loop
        calls this continuously.
        """
        try:
            return self._out.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return None
        except Exception:
            return None       # queue closed during shutdown

    def __repr__(self) -> str:
        return (f"WorkerPool(mode={self.mode!r}, active={self.active}/"
                f"{self.max_workers}, busy={len(self._busy)})")
