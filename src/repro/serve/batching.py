"""Cross-tenant batch execution: many tenants, one lockstep engine run.

The replicate engine of :mod:`repro.vec` batches the *replicate* axis of
one spec — ``R`` rows that differ only in their derived seeds.  The
serving layer generalizes the same machinery across **tenants**: two
submissions from different clients that are identical except for
``seed`` (and ``name``) are exactly the shape
:class:`~repro.vec.engine.BatchedClusterEngine` vectorizes, so the
scheduler coalesces them into one batched run and each tenant still
gets a record **bit-identical** to a solo ``run()`` of its own spec.

Two pieces live here:

- :func:`family_key` / :func:`batchable` — the grouping predicate: a
  spec's *family* is its content hash with ``seed`` and ``name``
  canonicalized away, so specs land in the same family exactly when
  they are lockstep-interchangeable rows of one engine run.
- :func:`execute_group` — run one family's members through a single
  :class:`~repro.vec.engine.BatchedClusterEngine` (each member's
  resolved seed is one row) and summarize every row against its own
  member spec, preserving the per-member deterministic identity.  A
  mid-run divergence falls back to per-member scalar execution, the
  same contract :func:`repro.vec.runner.execute_replicated` honors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.report import environment_info
from repro.obs.session import StepTimer
from repro.utils.deprecation import internal_calls
from repro.vec.engine import (BatchedClusterEngine, ReplicateDiverged,
                              supports_batched)
from repro.xp.spec import ScenarioSpec

#: Canonical name given to every family representative, so member names
#: can never leak into the family hash.
FAMILY_NAME = "@family"


def batchable(spec: ScenarioSpec) -> bool:
    """Whether a spec can join a cross-tenant batched engine run.

    Requires the lockstep-schedulable class
    (:func:`repro.vec.engine.supports_batched`: constant delay, no
    faults, a batched optimizer kernel) and ``replicates == 1`` — a
    replicated spec already batches internally on its own replicate
    axis and runs as a scalar unit.
    """
    return spec.replicates == 1 and supports_batched(spec)


def family_key(spec: ScenarioSpec) -> Optional[str]:
    """The grouping key for cross-tenant batching, or ``None``.

    The key is the spec's content hash after canonicalizing ``seed``
    (to 0) and ``name`` (to :data:`FAMILY_NAME`): two specs share a
    family exactly when they differ only in seed and name — the two
    fields the batched engine carries per row.  Non-batchable specs
    (see :func:`batchable`) have no family.
    """
    if not batchable(spec):
        return None
    return spec.with_overrides({"seed": 0},
                               name=FAMILY_NAME).content_hash()


def execute_group(specs: Sequence[ScenarioSpec]) -> List["object"]:
    """Execute one batch family as a single lockstep engine run.

    Parameters
    ----------
    specs : sequence of ScenarioSpec
        Members of one family (same :func:`family_key`), possibly from
        different tenants.  Each member's :meth:`resolved_seed` becomes
        one row of the batched run.

    Returns
    -------
    list of ScenarioResult
        One record per member, in input order, each bit-identical in
        deterministic identity (name, spec hash, metrics, series) to a
        solo scalar ``run()`` of that member.  ``env["serve_unit"]``
        records the batch shape (informational, like ``wall_s``).

    Notes
    -----
    A :class:`~repro.vec.engine.ReplicateDiverged` abort (one member's
    trajectory diverges, truncating its scalar schedule) falls back to
    per-member scalar execution, so diverging members stop exactly
    where their solo runs would.
    """
    from repro.run.backends import execute_scalar
    from repro.xp.runner import ScenarioResult, summarize_log

    specs = list(specs)
    if not specs:
        return []
    keys = {family_key(s) for s in specs}
    if len(keys) != 1 or None in keys:
        raise ValueError(
            "execute_group needs members of exactly one batch family; "
            f"got {len(specs)} specs spanning {len(keys)} families")
    if len(specs) == 1:
        record = execute_scalar(specs[0])
        record.env["serve_unit"] = "scalar"
        return [record]

    seeds = [s.resolved_seed() for s in specs]
    family = specs[0]
    timer = StepTimer(f"batch:{family.name}", cat="serve.batch").start()
    try:
        with internal_calls():
            engine = BatchedClusterEngine(family, seeds)
            outcomes = engine.run()
    except ReplicateDiverged:
        results = [execute_scalar(s) for s in specs]
        for record in results:
            record.env["serve_unit"] = f"fallback:{len(specs)}"
        return results
    wall = timer.stop(members=len(specs))

    results = []
    for spec, outcome, seed in zip(specs, outcomes, seeds):
        metrics, series = summarize_log(spec, outcome.log, outcome.reads,
                                        outcome.updates, diverged=False)
        env = environment_info()
        env["seed"] = seed
        env["serve_unit"] = f"batched:{len(specs)}"
        results.append(ScenarioResult(
            name=spec.name, spec_hash=spec.content_hash(),
            metrics=metrics, series=series, env=env, wall_s=wall))
    return results
