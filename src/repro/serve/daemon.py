"""The multi-tenant tuning daemon: HTTP front end, scheduler, pool.

``python -m repro serve`` runs one :class:`ServeDaemon`: a localhost
HTTP+JSON service accepting :class:`~repro.xp.spec.ScenarioSpec`
submissions from many concurrent clients and answering with records
bit-identical to a local :func:`repro.run.run`.  The daemon composes
the pieces this package and its ancestors already provide:

- every submission is fronted by the content-addressed
  :class:`~repro.xp.cache.ResultCache` (duplicate traffic is a file
  read) and an **in-flight dedup index** (concurrent duplicates attach
  to the one running job) — together, a spec is computed at most once;
- admission control and per-tenant quotas, scheduling (including
  cross-tenant vec-batching via :mod:`repro.serve.batching`), and
  autoscaling are pluggable ``"serve"``-kind registry components;
- execution happens on the pre-forked warm
  :class:`~repro.serve.pool.WorkerPool`, scaled live between
  ``min_workers`` and ``max_workers`` from queue depth;
- per-iteration metrics stream back through the PR 7
  :class:`~repro.obs.metrics.MetricsRegistry` subscriber seam, and the
  daemon's own registry carries the serve gauges (queue depth, active
  tenants, batch occupancy) plus per-tenant cache hit/miss counters.

Protocol (all JSON over HTTP/1.0, responses close-delimited):

====== =============== ==============================================
POST   ``/v1/submit``   ``{tenant, specs: [...]}`` → ``{tickets}``
                        (429 + reason on admission rejection)
GET    ``/v1/result``   ``?ticket=&timeout=`` → long-poll for the
                        record (``encode_state``-coded)
GET    ``/v1/events``   ``?ticket=&cursor=&timeout=`` → long-poll
                        replayable event history (the stream feed)
GET    ``/v1/status``   queue/tenant/worker stats + metrics snapshot
POST   ``/v1/shutdown`` clean stop; unfinished jobs fail
====== =============== ==============================================
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import MetricsRegistry
from repro.registry import registry
from repro.utils.serialization import encode_state
from repro.xp.cache import ResultCache
from repro.xp.runner import ScenarioResult
from repro.xp.spec import ScenarioSpec

from repro.serve.batching import family_key
from repro.serve.client import AdmissionRejected
from repro.serve.jobs import ServeState, Ticket
from repro.serve.pool import WorkerPool


@dataclass
class ServeConfig:
    """Configuration of one :class:`ServeDaemon`.

    Attributes
    ----------
    host, port : str, int
        Bind address; port 0 picks a free port (read it back from
        :attr:`ServeDaemon.address`).
    cache_dir : str or None
        Result-cache directory fronting all execution; ``None``
        disables caching (every distinct spec computes).
    min_workers, max_workers : int
        Autoscaling bounds of the warm worker pool (all
        ``max_workers`` processes are pre-forked at startup).
    pool_mode : str
        ``"auto"`` / ``"fork"`` / ``"thread"`` (see
        :class:`~repro.serve.pool.WorkerPool`).
    scheduler, admission, autoscaler : str
        Registry names under the ``"serve"`` kind.
    scheduler_params, admission_params, autoscaler_params : dict
        Keyword configuration for the policy factories (validated
        against their registered schemas).
    tick : float
        Scheduler loop period in seconds.
    stream_every : int
        Forward every k-th per-iteration payload to streams.
    validate : bool
        Pre-flight submitted specs' component names against the
        registry (HTTP 400 instead of a worker-side failure).
    """

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: Optional[str] = None
    min_workers: int = 1
    max_workers: int = 4
    pool_mode: str = "auto"
    scheduler: str = "batching"
    admission: str = "quota"
    autoscaler: str = "queue_depth"
    scheduler_params: dict = field(default_factory=dict)
    admission_params: dict = field(default_factory=dict)
    autoscaler_params: dict = field(default_factory=dict)
    tick: float = 0.01
    stream_every: int = 1
    validate: bool = True


class ServeDaemon:
    """The serving loop: admission → queue → schedule → pool → settle.

    Life cycle: construct with a :class:`ServeConfig`, :meth:`start`
    (forks the pool, starts the scheduler/collector threads and the
    HTTP server), serve, :meth:`stop`.  All client-visible operations
    (:meth:`submit`, :meth:`result_payload`, :meth:`events_payload`,
    :meth:`status`) are plain methods, so tests drive the daemon
    in-process without sockets and the HTTP layer stays a thin codec.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        cfg = self.config
        self.state = ServeState()
        self.metrics = MetricsRegistry()
        self.cache = (ResultCache(cfg.cache_dir)
                      if cfg.cache_dir else None)
        self.admission = registry.build("serve", cfg.admission,
                                        **cfg.admission_params)
        self.scheduler = registry.build("serve", cfg.scheduler,
                                        **cfg.scheduler_params)
        self.autoscaler = registry.build("serve", cfg.autoscaler,
                                         **cfg.autoscaler_params)
        self.pool = WorkerPool(min_workers=cfg.min_workers,
                               max_workers=cfg.max_workers,
                               mode=cfg.pool_mode,
                               stream_every=cfg.stream_every)
        self._units: Dict[str, List[str]] = {}   # unit id -> job ids
        self._unit_seq = 0
        self._paused = False
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        self._http: Optional[ThreadingHTTPServer] = None

    # ------------------------------------------------------------- #
    # lifecycle
    # ------------------------------------------------------------- #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved after start)."""
        if self._http is not None:
            return (self._http.server_address[0],
                    self._http.server_address[1])
        return (self.config.host, self.config.port)

    def start(self) -> "ServeDaemon":
        """Fork the pool, start scheduling, and bind the HTTP server."""
        if self._threads:
            return self
        self._stopped.clear()
        self.pool.start()
        self._http = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._http.daemon_threads = True
        self._http.serve_daemon = self     # type: ignore[attr-defined]
        for name, target in (("serve-schedule", self._schedule_loop),
                             ("serve-collect", self._collect_loop),
                             ("serve-http", self._http.serve_forever)):
            thread = threading.Thread(target=target, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Shut down cleanly: HTTP off, loops joined, pool reaped.

        Unfinished jobs are failed with a shutdown error so every
        blocked client unblocks immediately.  Idempotent.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        self._threads = []
        self.pool.stop()
        self.state.abort_all("daemon shut down before completion")

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI entry point's main wait)."""
        try:
            while not self._stopped.wait(0.2):
                pass
        except KeyboardInterrupt:
            self.stop()

    def pause(self) -> None:
        """Suspend dispatch (pending jobs accumulate; used by the
        load harness to form deterministic batch mixes)."""
        self._paused = True

    def resume(self) -> None:
        """Resume dispatch after :meth:`pause`."""
        self._paused = False

    # ------------------------------------------------------------- #
    # submission (admission + cache + dedup, one locked transaction)
    # ------------------------------------------------------------- #
    def submit(self, tenant: str,
               specs: Union[ScenarioSpec, Sequence[ScenarioSpec]]
               ) -> List[Ticket]:
        """Admit and ticket a submission for ``tenant``.

        Each spec is answered from (in order): the result cache (a
        finished ticket, computation-free), the in-flight index (a
        ticket attached to the already-running job), or a fresh pending
        job.  Admission is all-or-nothing over the whole submission.

        Returns
        -------
        list of Ticket
            One per spec, in order.

        Raises
        ------
        AdmissionRejected
            The quota/saturation policy refused the submission.
        ValueError
            Empty submission or invalid component names.
        """
        tenant = str(tenant) or "default"
        if isinstance(specs, ScenarioSpec):
            specs = [specs]
        specs = list(specs)
        if not specs:
            raise ValueError("nothing to submit")
        if self.config.validate:
            for spec in specs:
                spec.validate_components()
        keys = [spec.content_hash() for spec in specs]

        # cache probes are disk reads: do them outside the state lock
        cached: Dict[str, ScenarioResult] = {}
        if self.cache is not None:
            for spec, key in zip(specs, keys):
                if key not in cached:
                    hit = self.cache.get(spec, key=key)
                    if hit is not None:
                        cached[key] = hit

        with self.state.lock:
            stats = self.state.tenant(tenant)
            new_jobs, new_tickets = 0, 0
            will_create = set()
            for key in keys:
                if key in cached:
                    continue
                new_tickets += 1
                if key in self.state.inflight or key in will_create:
                    continue
                will_create.add(key)
                new_jobs += 1
            decision = self.admission.admit(
                tenant_active=stats.active,
                queue_depth=len(self.state.pending),
                new_jobs=new_jobs, new_tickets=new_tickets)
            if not decision:
                stats.rejected += len(specs)
                self.metrics.counter("serve.rejected").inc(len(specs))
                self.metrics.counter(
                    f"serve.rejected.{tenant}").inc(len(specs))
                raise AdmissionRejected(decision.reason)

            tickets = []
            for spec, key in zip(specs, keys):
                if key in cached:
                    job = self.state.new_finished_job(
                        spec, key, cached[key].as_dict())
                    ticket = self.state.new_ticket(tenant, spec, key,
                                                   job, cached=True)
                    stats.cache_hits += 1
                    self.metrics.counter("serve.cache_hits").inc()
                    self.metrics.counter(
                        f"serve.cache_hits.{tenant}").inc()
                else:
                    running = self.state.inflight.get(key)
                    if running is not None:
                        job = self.state.jobs[running]
                        ticket = self.state.new_ticket(
                            tenant, spec, key, job, deduplicated=True)
                        self.metrics.counter("serve.deduplicated").inc()
                    else:
                        job = self.state.new_job(spec, key,
                                                 family_key(spec))
                        ticket = self.state.new_ticket(tenant, spec,
                                                       key, job)
                    stats.cache_misses += 1
                    self.metrics.counter("serve.cache_misses").inc()
                    self.metrics.counter(
                        f"serve.cache_misses.{tenant}").inc()
                tickets.append(ticket)
            self.metrics.gauge("serve.queue_depth").set(
                len(self.state.pending))
            return tickets

    # ------------------------------------------------------------- #
    # scheduler loop
    # ------------------------------------------------------------- #
    def _schedule_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                self._tick()
            except Exception:
                self.metrics.counter("serve.tick_errors").inc()
            self._stopped.wait(self.config.tick)

    def _tick(self) -> None:
        """One scheduling round: reap, dispatch, autoscale, gauge."""
        orphans = self.pool.orphaned_units()
        respawned = self.pool.ensure_alive()
        if respawned:
            self.metrics.counter("serve.worker_respawns").inc(respawned)
        if orphans:
            with self.state.lock:
                for unit in orphans:
                    for job_id in self._units.pop(unit, []):
                        self.state.finish(
                            job_id, error="worker died mid-unit")

        with self.state.lock:
            if not self._paused:
                plan = self.scheduler.plan(self.state.pending_jobs(),
                                           self.pool.idle_slots(),
                                           time.monotonic())
                for unit_jobs in plan:
                    self._unit_seq += 1
                    unit_id = f"u-{self._unit_seq:06d}"
                    worker = self.pool.dispatch(
                        unit_id, [job.spec for job in unit_jobs])
                    if worker is None:
                        break
                    job_ids = [job.id for job in unit_jobs]
                    self._units[unit_id] = job_ids
                    self.state.take_pending(job_ids)
                    size = len(unit_jobs)
                    for job in unit_jobs:
                        self.state.append_event(job.id, {
                            "event": "started", "unit": unit_id,
                            "worker": worker, "batch_size": size})
                    self.metrics.histogram(
                        "serve.batch_occupancy").observe(size)
                    self.metrics.counter("serve.units_dispatched").inc()
                    if size > 1:
                        self.metrics.counter(
                            "serve.batched_jobs").inc(size)
            depth = len(self.state.pending)
            active_tenants = self.state.active_tenants()

        if not self._paused:
            target = self.autoscaler.target(
                queue_depth=depth, busy=self.pool.busy_count(),
                active=self.pool.active,
                min_workers=self.pool.min_workers,
                max_workers=self.pool.max_workers)
            self.pool.set_active(target)
        self.metrics.gauge("serve.queue_depth").set(depth)
        self.metrics.gauge("serve.active_workers").set(self.pool.active)
        self.metrics.gauge("serve.busy_workers").set(
            self.pool.busy_count())
        self.metrics.gauge("serve.active_tenants").set(active_tenants)

    # ------------------------------------------------------------- #
    # collector loop
    # ------------------------------------------------------------- #
    def _collect_loop(self) -> None:
        while not self._stopped.is_set():
            message = self.pool.next_message(timeout=self.config.tick)
            if message is None:
                continue
            try:
                self._settle(message)
            except Exception:
                self.metrics.counter("serve.collect_errors").inc()

    def _settle(self, message: dict) -> None:
        """Fold one worker message into state (event or unit result)."""
        unit = message["unit"]
        if message["kind"] == "event":
            with self.state.lock:
                for job_id in self._units.get(unit, []):
                    self.state.append_event(job_id, message["event"])
            return
        self.pool.complete(message["worker"])
        with self.state.lock:
            job_ids = self._units.pop(unit, [])
        if not job_ids:
            return
        error = message.get("error")
        if error is not None:
            with self.state.lock:
                for job_id in job_ids:
                    self.state.finish(job_id, error=error)
            self.metrics.counter("serve.unit_errors").inc()
            return
        records = message["results"]
        # cache BEFORE finishing: the instant a client's long-poll
        # unblocks, a resubmission of the same spec must already hit
        with self.state.lock:
            pairs = [(self.state.jobs.get(job_id), record)
                     for job_id, record in zip(job_ids, records)]
        if self.cache is not None:
            for job, record in pairs:
                if job is None or job.finished:
                    continue
                try:
                    self.cache.put(job.spec,
                                   ScenarioResult.from_dict(record),
                                   key=job.key)
                except (ValueError, OSError):
                    # unserializable metrics (NaNs from a diverged
                    # run) or a full disk must not fail the job
                    self.metrics.counter("serve.cache_put_errors").inc()
        with self.state.lock:
            for job_id, record in zip(job_ids, records):
                self.state.finish(job_id, result=record)
            self.metrics.counter("serve.jobs_computed").inc(
                len(job_ids))

    # ------------------------------------------------------------- #
    # client-facing reads
    # ------------------------------------------------------------- #
    def result_payload(self, ticket_id: str, timeout: float) -> dict:
        """Long-poll payload for ``/v1/result``.

        Raises ``KeyError`` for unknown tickets (HTTP 404).
        """
        job = self.state.wait_finished(ticket_id, timeout)
        with self.state.lock:
            ticket = self.state.tickets[ticket_id]
            if not job.finished:
                return {"done": False, "ticket": ticket_dict(ticket)}
            if job.error is not None:
                return {"done": True, "error": job.error,
                        "ticket": ticket_dict(ticket)}
            return {"done": True,
                    "record": encode_state(dict(job.result)),
                    "ticket": ticket_dict(ticket)}

    def events_payload(self, ticket_id: str, cursor: int,
                       timeout: float) -> dict:
        """Long-poll payload for ``/v1/events``.

        Raises ``KeyError`` for unknown tickets (HTTP 404).
        """
        events, cursor, finished = self.state.wait_events(
            ticket_id, cursor, timeout)
        return {"events": events, "cursor": cursor,
                "finished": finished}

    def status(self) -> dict:
        """The ``/v1/status`` payload: queue, tenants, pool, metrics."""
        with self.state.lock:
            tenants = {name: stats.as_dict()
                       for name, stats in self.state.tenants.items()}
            depth = len(self.state.pending)
            jobs = len(self.state.jobs)
        return {
            "queue_depth": depth,
            "jobs": jobs,
            "paused": self._paused,
            "pool": {"mode": self.pool.mode,
                     "active": self.pool.active,
                     "busy": self.pool.busy_count(),
                     "min": self.pool.min_workers,
                     "max": self.pool.max_workers,
                     "units_dispatched": self.pool.units_dispatched,
                     "scale_events": self.pool.scale_events},
            "cache": (str(self.cache.root)
                      if self.cache is not None else None),
            "tenants": tenants,
            "metrics": self.metrics.snapshot(),
        }


def ticket_dict(ticket: Ticket) -> dict:
    """A ticket as the JSON payload the protocol ships."""
    return {"id": ticket.id, "tenant": ticket.tenant,
            "name": ticket.name, "spec_hash": ticket.spec_hash,
            "job_id": ticket.job_id, "cached": ticket.cached,
            "deduplicated": ticket.deduplicated}


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON codec over :class:`ServeDaemon`'s method surface."""

    protocol_version = "HTTP/1.0"

    @property
    def daemon(self) -> ServeDaemon:
        """The daemon this server fronts."""
        return self.server.serve_daemon   # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence the default stderr request log."""

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass    # client gave up on a long-poll; nothing to settle

    def do_POST(self) -> None:
        """``/v1/submit`` and ``/v1/shutdown``."""
        path = urlparse(self.path).path
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._reply(400, {"error": "malformed JSON body"})
            return
        if path == "/v1/shutdown":
            self._reply(200, {"ok": True})
            threading.Thread(target=self.daemon.stop,
                             daemon=True).start()
            return
        if path != "/v1/submit":
            self._reply(404, {"error": f"unknown endpoint {path}"})
            return
        try:
            tenant = str(payload.get("tenant") or "default")
            raw = payload.get("specs")
            if raw is None and "spec" in payload:
                raw = [payload["spec"]]
            if not isinstance(raw, list) or not raw:
                raise ValueError("submit body needs a 'specs' list")
            specs = [ScenarioSpec.from_dict(d) for d in raw]
            tickets = self.daemon.submit(tenant, specs)
        except AdmissionRejected as exc:
            self._reply(429, {"error": str(exc)})
            return
        except (ValueError, TypeError, KeyError) as exc:
            self._reply(400, {"error": f"invalid submission: {exc}"})
            return
        self._reply(200, {"tickets": [ticket_dict(t) for t in tickets]})

    def do_GET(self) -> None:
        """``/v1/result``, ``/v1/events``, and ``/v1/status``."""
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            if parsed.path == "/v1/status":
                self._reply(200, self.daemon.status())
            elif parsed.path == "/v1/result":
                payload = self.daemon.result_payload(
                    query.get("ticket", ""),
                    min(60.0, float(query.get("timeout", 30.0))))
                self._reply(200, payload)
            elif parsed.path == "/v1/events":
                payload = self.daemon.events_payload(
                    query.get("ticket", ""),
                    max(0, int(query.get("cursor", 0))),
                    min(60.0, float(query.get("timeout", 10.0))))
                self._reply(200, payload)
            else:
                self._reply(404,
                            {"error": f"unknown endpoint {parsed.path}"})
        except KeyError:
            self._reply(404,
                        {"error": f"unknown ticket "
                                  f"{query.get('ticket', '')!r}"})
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
