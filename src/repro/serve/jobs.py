"""Server-side bookkeeping: jobs, tickets, tenants, live event history.

The daemon's mutable heart, factored out so scheduling and admission
can be unit-tested without HTTP or worker processes.  Three entities:

- **Job** — one distinct unit of computation, keyed by the spec's
  content hash.  Duplicate submissions (same hash) attach to the same
  job — the in-flight half of the dedup story; the result cache is the
  at-rest half — so a spec is computed at most once no matter how many
  tenants ask for it concurrently.
- **Ticket** — one tenant's claim on a job.  The ticket id is what
  :meth:`repro.serve.client.Client.submit` returns; results and event
  streams are addressed by it.
- **TenantStats** — per-tenant accounting (active tickets, cache
  hits/misses, rejections) that admission policies and the
  ``/v1/status`` endpoint read.

Every job keeps an ordered **event history** (``queued`` → ``started``
→ ``iteration``\\* → ``done``/``error``); streaming consumers hold a
cursor into it and block on the shared condition, so a late subscriber
replays the full history instead of missing early iterations.

All mutation happens under :attr:`ServeState.lock`; the state object
never calls out to policies, pools, or sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.xp.spec import ScenarioSpec

#: Job lifecycle states.
PENDING, RUNNING, DONE, ERROR = "pending", "running", "done", "error"


@dataclass
class Job:
    """One distinct computation, shared by every ticket with its hash.

    Attributes
    ----------
    id : str
        Server-assigned job id (``j-<n>``).
    spec : ScenarioSpec
        The deduplicated spec to execute.
    key : str
        The spec's content hash (the dedup and cache key).
    family : str or None
        Cross-tenant batching family (see
        :func:`repro.serve.batching.family_key`); ``None`` when the
        spec is not batchable.
    state : str
        ``"pending"`` / ``"running"`` / ``"done"`` / ``"error"``.
    tickets : list of str
        Ids of every ticket attached to this job.
    history : list of dict
        Ordered lifecycle + per-iteration event records (the stream
        replay buffer).
    result : dict or None
        The finished record (``ScenarioResult.as_dict()`` form).
    error : str or None
        Failure description when ``state == "error"``.
    submitted : float
        ``time.monotonic()`` at creation (drives batch windows).
    """

    id: str
    spec: ScenarioSpec
    key: str
    family: Optional[str] = None
    state: str = PENDING
    tickets: List[str] = field(default_factory=list)
    history: List[dict] = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[str] = None
    submitted: float = field(default_factory=time.monotonic)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (DONE, ERROR)


@dataclass
class Ticket:
    """One tenant's claim on a job (the client-visible handle).

    Attributes
    ----------
    id : str
        Server-assigned ticket id (``t-<n>``).
    tenant : str
        Submitting tenant.
    name : str
        Scenario name of the submitted spec.
    spec_hash : str
        Content hash of the submitted spec.
    job_id : str
        The backing job.
    cached : bool
        Whether the submission was answered from the result cache.
    deduplicated : bool
        Whether the submission attached to an already-in-flight job.
    """

    id: str
    tenant: str
    name: str
    spec_hash: str
    job_id: str
    cached: bool = False
    deduplicated: bool = False


@dataclass
class TenantStats:
    """Per-tenant serving statistics (admission + status reporting).

    Attributes
    ----------
    submitted, rejected : int
        Accepted / admission-rejected spec counts.
    active : int
        Tickets whose job has not finished (the in-flight quota gauge).
    cache_hits, cache_misses : int
        Result-cache outcomes of this tenant's accepted submissions
        (a deduplicated in-flight attach counts as a miss — the work
        is shared, but it was not free at submit time).
    """

    submitted: int = 0
    rejected: int = 0
    active: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_dict(self) -> dict:
        """Plain-dict mirror for the ``/v1/status`` payload."""
        return {"submitted": self.submitted, "rejected": self.rejected,
                "active": self.active, "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses}


class ServeState:
    """Thread-safe job/ticket/tenant store behind the daemon.

    All reads and writes happen under :attr:`lock`; :attr:`cond` (built
    on the same lock) is notified whenever a job gains history events
    or finishes, which is what streaming and long-polling handlers
    block on.
    """

    def __init__(self):
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.jobs: Dict[str, Job] = {}
        self.tickets: Dict[str, Ticket] = {}
        self.tenants: Dict[str, TenantStats] = {}
        #: content hash -> job id, for jobs not yet finished (the
        #: in-flight dedup index; finished jobs are served by the cache)
        self.inflight: Dict[str, str] = {}
        #: job ids awaiting dispatch, FIFO
        self.pending: List[str] = []
        self._next_job = 0
        self._next_ticket = 0

    # ------------------------------------------------------------- #
    # creation (caller holds the lock)
    # ------------------------------------------------------------- #
    def tenant(self, name: str) -> TenantStats:
        """Get-or-create the stats record for ``name``."""
        if name not in self.tenants:
            self.tenants[name] = TenantStats()
        return self.tenants[name]

    def new_job(self, spec: ScenarioSpec, key: str,
                family: Optional[str]) -> Job:
        """Create a pending job, index it, and queue it for dispatch."""
        self._next_job += 1
        job = Job(id=f"j-{self._next_job:06d}", spec=spec, key=key,
                  family=family)
        job.history.append({"event": "queued", "job": job.id})
        self.jobs[job.id] = job
        self.inflight[key] = job.id
        self.pending.append(job.id)
        return job

    def new_finished_job(self, spec: ScenarioSpec, key: str,
                         result: dict) -> Job:
        """Create an already-done job for a result-cache hit.

        The job never enters the pending queue or the in-flight index;
        it exists so cache-hit tickets share the job/result plumbing
        with computed ones (one long-poll path, one history shape).
        """
        self._next_job += 1
        job = Job(id=f"j-{self._next_job:06d}", spec=spec, key=key,
                  state=DONE, result=result)
        job.history.append({"event": "queued", "job": job.id})
        job.history.append({"event": "done", "cached": True})
        self.jobs[job.id] = job
        return job

    def new_ticket(self, tenant: str, spec: ScenarioSpec, key: str,
                   job: Job, *, cached: bool = False,
                   deduplicated: bool = False) -> Ticket:
        """Create a ticket for ``tenant`` against ``job``."""
        self._next_ticket += 1
        ticket = Ticket(id=f"t-{self._next_ticket:06d}", tenant=tenant,
                        name=spec.name, spec_hash=key, job_id=job.id,
                        cached=cached, deduplicated=deduplicated)
        self.tickets[ticket.id] = ticket
        job.tickets.append(ticket.id)
        stats = self.tenant(tenant)
        stats.submitted += 1
        if not job.finished:
            stats.active += 1
        return ticket

    # ------------------------------------------------------------- #
    # lifecycle transitions (caller holds the lock)
    # ------------------------------------------------------------- #
    def take_pending(self, job_ids: List[str]) -> None:
        """Remove dispatched jobs from the pending queue, mark running."""
        taken = set(job_ids)
        self.pending = [j for j in self.pending if j not in taken]
        for job_id in job_ids:
            self.jobs[job_id].state = RUNNING

    def append_event(self, job_id: str, event: dict) -> None:
        """Append one history event to a job and wake all waiters."""
        job = self.jobs.get(job_id)
        if job is None or job.finished:
            return
        job.history.append(event)
        self.cond.notify_all()

    def finish(self, job_id: str, *, result: Optional[dict] = None,
               error: Optional[str] = None) -> Optional[Job]:
        """Move a job to its terminal state and settle its tickets.

        Returns the job (or ``None`` when the id is unknown or already
        finished — late double-completion is a no-op).
        """
        job = self.jobs.get(job_id)
        if job is None or job.finished:
            return None
        job.state = ERROR if error is not None else DONE
        job.result = result
        job.error = error
        self.inflight.pop(job.key, None)
        if job_id in self.pending:      # aborted before dispatch
            self.pending.remove(job_id)
        job.history.append(
            {"event": "error", "error": error} if error is not None
            else {"event": "done", "cached": False})
        for ticket_id in job.tickets:
            ticket = self.tickets[ticket_id]
            self.tenant(ticket.tenant).active -= 1
        self.cond.notify_all()
        return job

    # ------------------------------------------------------------- #
    # blocking reads (take the lock themselves)
    # ------------------------------------------------------------- #
    def wait_finished(self, ticket_id: str,
                      timeout: float) -> Optional[Job]:
        """Block until a ticket's job finishes (or ``timeout`` lapses).

        Returns the job in its current state — callers re-check
        :attr:`Job.finished` to distinguish completion from timeout.
        Unknown tickets raise ``KeyError``.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self.lock:
            ticket = self.tickets[ticket_id]
            job = self.jobs[ticket.job_id]
            while not job.finished:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.cond.wait(remaining)
            return job

    def wait_events(self, ticket_id: str, cursor: int,
                    timeout: float) -> tuple:
        """Block for history events past ``cursor`` on a ticket's job.

        Returns ``(events, next_cursor, finished)``; an empty event
        list with ``finished=False`` means the wait timed out.  Unknown
        tickets raise ``KeyError``.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self.lock:
            ticket = self.tickets[ticket_id]
            job = self.jobs[ticket.job_id]
            while len(job.history) <= cursor and not job.finished:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], cursor, False
                self.cond.wait(remaining)
            events = [dict(e) for e in job.history[cursor:]]
            return events, len(job.history), job.finished

    # ------------------------------------------------------------- #
    # views
    # ------------------------------------------------------------- #
    def pending_jobs(self) -> List[Job]:
        """The pending queue as job objects, FIFO (caller holds lock)."""
        return [self.jobs[j] for j in self.pending]

    def active_tenants(self) -> int:
        """Tenants with at least one unfinished ticket (holds lock)."""
        return sum(1 for s in self.tenants.values() if s.active > 0)

    def abort_all(self, reason: str) -> int:
        """Fail every unfinished job (daemon shutdown); returns count."""
        with self.lock:
            open_ids = [j.id for j in self.jobs.values()
                        if not j.finished]
            for job_id in open_ids:
                self.finish(job_id, error=reason)
            return len(open_ids)
