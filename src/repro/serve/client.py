"""The typed client surface of the tuning service.

One result contract, two transports: :class:`Client` submits
:class:`~repro.xp.spec.ScenarioSpec` / :class:`~repro.xp.spec.Matrix`
traffic to a running daemon over localhost HTTP+JSON and hands back
records that are **bit-identical** in deterministic identity to a
local :func:`repro.run.run` of the same specs — whether the daemon
answered from the result cache, deduplicated against an in-flight
job, executed the spec alone, or coalesced it into a cross-tenant
batched engine run.

The three-call surface mirrors the async shape of the service::

    client = Client(("127.0.0.1", 8631), tenant="alice")
    ticket = client.submit(spec)              # returns immediately
    for event in client.stream(ticket):       # live per-iteration
        print(event["step"], event.get("staleness"))
    record = client.result(ticket)            # blocks until done

Transport notes: every call is one HTTP/1.0 request on a fresh
connection with a close-delimited response — no keep-alive or chunked
framing, so the protocol is trivially debuggable with ``curl``.
Result payloads cross the wire through the tagged
:func:`repro.utils.serialization.encode_state` codec, the same one the
result cache uses, so float and array values survive bit-for-bit.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.utils.serialization import decode_state
from repro.xp.runner import ScenarioResult
from repro.xp.spec import Matrix, ScenarioSpec

from repro.serve.jobs import Ticket


class ServeError(RuntimeError):
    """Base error for client/daemon interactions."""


class AdmissionRejected(ServeError):
    """The daemon refused a submission (quota or saturation).

    Raised by :meth:`Client.submit` on an HTTP 429, and by
    :meth:`repro.serve.daemon.ServeDaemon.submit` directly; the
    message carries the admission policy's reason verbatim.
    """


class JobFailed(ServeError):
    """The submitted scenario's execution raised in the worker.

    The message carries the worker-side traceback text.
    """


Submittable = Union[ScenarioSpec, Matrix, Sequence[ScenarioSpec]]


class Client:
    """Typed HTTP client for a :class:`~repro.serve.daemon.ServeDaemon`.

    Parameters
    ----------
    address : tuple of (str, int)
        The daemon's ``(host, port)``.
    tenant : str
        Tenant identity attached to every submission; quotas and the
        per-tenant cache counters are keyed by it.
    timeout : float
        Per-request socket timeout in seconds (long-polls add their
        own wait on top).
    """

    def __init__(self, address: Tuple[str, int],
                 tenant: str = "default", timeout: float = 30.0):
        self.host, self.port = str(address[0]), int(address[1])
        self.tenant = str(tenant)
        self.timeout = float(timeout)

    # ------------------------------------------------------------- #
    # transport
    # ------------------------------------------------------------- #
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 extra_timeout: float = 0.0) -> dict:
        """One request/response cycle on a fresh connection."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout + extra_timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8")
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServeError(
                    f"malformed response from daemon ({response.status}): "
                    f"{raw[:200]!r}") from None
            if response.status == 429:
                raise AdmissionRejected(data.get("error", "rejected"))
            if response.status >= 400:
                raise ServeError(
                    f"{method} {path} -> {response.status}: "
                    f"{data.get('error', raw[:200])}")
            return data
        except (OSError, http.client.HTTPException) as exc:
            if isinstance(exc, ServeError):
                raise
            raise ServeError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    @staticmethod
    def _specs(scenarios: Submittable) -> List[ScenarioSpec]:
        if isinstance(scenarios, ScenarioSpec):
            return [scenarios]
        if isinstance(scenarios, Matrix):
            return scenarios.expand()
        specs = list(scenarios)
        bad = [s for s in specs if not isinstance(s, ScenarioSpec)]
        if bad:
            raise TypeError(
                f"expected ScenarioSpec items, got {type(bad[0]).__name__}")
        return specs

    # ------------------------------------------------------------- #
    # the api_redesign surface: submit / stream / result
    # ------------------------------------------------------------- #
    def submit(self, scenarios: Submittable) -> Union[Ticket, List[Ticket]]:
        """Submit scenarios; returns immediately with ticket(s).

        Parameters
        ----------
        scenarios : ScenarioSpec or Matrix or sequence of ScenarioSpec
            What to run.  A Matrix expands in axis order, exactly as
            ``run()`` would.

        Returns
        -------
        Ticket or list of Ticket
            One ticket per spec — a single :class:`Ticket` when a
            single spec was submitted, a list otherwise.  Admission is
            all-or-nothing: either every spec is ticketed or the whole
            submission raises.

        Raises
        ------
        AdmissionRejected
            Quota or saturation rejection (HTTP 429).
        ServeError
            Transport failures and invalid-spec rejections.
        """
        specs = self._specs(scenarios)
        if not specs:
            raise ValueError("nothing to submit")
        data = self._request("POST", "/v1/submit", {
            "tenant": self.tenant,
            "specs": [spec.as_dict() for spec in specs],
        })
        tickets = [Ticket(**t) for t in data["tickets"]]
        if isinstance(scenarios, ScenarioSpec):
            return tickets[0]
        return tickets

    def stream(self, ticket: Union[Ticket, str],
               poll: float = 10.0) -> Iterator[dict]:
        """Iterate a ticket's live event feed until its job finishes.

        Yields every history event in order — ``queued``, ``started``
        (with the dispatch unit's ``batch_size``), one ``iteration``
        per committed optimizer step for scalar units (step, staleness,
        sim time, queue depth — the payload the cluster engine emits
        through the obs subscriber seam), and finally ``done`` or
        ``error``.  A consumer attaching late replays the full history
        first; nothing is ever missed.

        Parameters
        ----------
        ticket : Ticket or str
            The submission handle (or its id).
        poll : float
            Seconds each underlying long-poll waits before re-asking.

        Yields
        ------
        dict
            One event per iteration of the loop.
        """
        ticket_id = ticket.id if isinstance(ticket, Ticket) else str(ticket)
        cursor = 0
        while True:
            data = self._request(
                "GET",
                f"/v1/events?ticket={ticket_id}&cursor={cursor}"
                f"&timeout={poll}",
                extra_timeout=poll)
            for event in data.get("events", []):
                yield event
            cursor = int(data.get("cursor", cursor))
            if data.get("finished"):
                return

    def result(self, ticket: Union[Ticket, str],
               timeout: float = 300.0) -> ScenarioResult:
        """Block until a ticket's record is ready and return it.

        The record's deterministic identity (name, spec hash, metrics,
        series) is bit-identical to a local ``run()`` of the same spec
        — the differential suite enforces this across the cached,
        uncached, and cross-tenant-batched serving paths.

        Parameters
        ----------
        ticket : Ticket or str
            The submission handle (or its id).
        timeout : float
            Seconds to wait before giving up.

        Returns
        -------
        ScenarioResult

        Raises
        ------
        JobFailed
            The scenario's execution raised in the worker.
        ServeError
            Unknown ticket, daemon unreachable, or timeout.
        """
        ticket_id = ticket.id if isinstance(ticket, Ticket) else str(ticket)
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            wait = min(30.0, max(0.0, deadline - time.monotonic()))
            data = self._request(
                "GET", f"/v1/result?ticket={ticket_id}&timeout={wait}",
                extra_timeout=wait)
            if data.get("done"):
                break
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting on {ticket_id}")
        if data.get("error"):
            raise JobFailed(data["error"])
        return ScenarioResult.from_dict(decode_state(data["record"]))

    # ------------------------------------------------------------- #
    # service management
    # ------------------------------------------------------------- #
    def status(self) -> dict:
        """The daemon's status payload (queue depth, tenants, metrics
        snapshot including the per-tenant serve cache counters)."""
        return self._request("GET", "/v1/status")

    def shutdown(self) -> None:
        """Ask the daemon to shut down cleanly (unfinished jobs fail)."""
        self._request("POST", "/v1/shutdown", {})
