"""Event-driven cluster runtime over the sharded parameter server.

:class:`ClusterRuntime` schedules N simulated workers against a
:class:`~repro.sim.parameter_server.ShardedParameterServer` through a
deterministic priority event queue.  Each worker loops: read the live
model, compute a gradient (its loss closure draws the next minibatch),
and ship it; a pluggable :mod:`~repro.cluster.delays` model decides how
long the compute+transit takes, so arrival *order* — and therefore
staleness — emerges from the simulated timing instead of being a fixed
knob.  A seeded :mod:`~repro.cluster.faults` injector can crash workers,
slow them down, or pause the server; every decision is drawn in event
order from checkpointed RNG streams, so any run is reproducible and
resumable bit-for-bit (:mod:`repro.cluster.checkpoint`).

Two scheduling disciplines cover old and new protocols:

- **Timed delivery** (``queue_staleness=0``, the default): a gradient is
  committed when it arrives.  With :class:`ConstantDelay` and N workers
  this reproduces the paper's round-robin protocol — and therefore the
  historical ``train_async`` trajectories — bit-for-bit, while
  non-constant models generalize it to heterogeneous, bursty clusters.
- **Depth-gated delivery** (``queue_staleness=tau > 0``): arrivals queue
  at the server and commit only once ``tau`` younger pushes sit behind
  them, with FIFO or uniformly random release (``delivery``) — the
  legacy queue protocols, kept for the memoryless staleness model.

Budgets are totals from the start of the run, so calling :meth:`run`
again after a checkpoint restore continues to the same endpoint the
uninterrupted run would reach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.nn.module import Module
from repro.optim.grad_clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.sim.parameter_server import ShardedParameterServer
from repro.sim.sharding import PolicySpec
from repro.sim.trainer import TrainerHooks
from repro.cluster.delays import DelaySpec, make_delay_model
from repro.cluster.events import Event, EventQueue
from repro.cluster.faults import FaultInjector
from repro.obs.session import active as _obs_active
from repro.utils.logging import TrainLog
from repro.utils.rng import SeedLike


@dataclass
class ClusterWorker:
    """Per-worker bookkeeping and lifetime counters.

    Attributes
    ----------
    worker_id : int
        Position in the runtime's worker table.
    alive : bool
        Whether the worker is currently up (crashed workers are down
        until their restart event fires).
    reads, applied, crashes, restarts : int
        Lifetime counters: gradients computed, gradients committed,
        crash events, restart events.
    """

    worker_id: int
    alive: bool = True
    reads: int = 0
    applied: int = 0
    crashes: int = 0
    restarts: int = 0


class ClusterRuntime:
    """Deterministic event-driven simulation of an async training cluster.

    Parameters
    ----------
    model, optimizer:
        The shared model and the optimizer committing assembled updates.
    loss_fn : callable
        Draws the next minibatch and returns the loss tensor (the model
        holds the values the reading worker sees).  If it exposes
        ``state_dict``/``load_state_dict`` (e.g. a loader-backed
        closure object), checkpoints capture the stream position too.
    workers : int, optional
        Number of simulated workers.
    delay_model : str or DelayModel, optional
        Compute+transit duration model (see :mod:`repro.cluster.delays`).
    num_shards : int, optional
        Parameter-server shards (see
        :class:`~repro.sim.parameter_server.ShardedParameterServer`).
    shard_policy : str or ShardAssignmentPolicy, optional
        Placement policy for ``num_shards > 1``.
    queue_staleness : int, optional
        Server-side depth gate ``tau``.  0 (default) commits on arrival
        (timed discipline); ``tau > 0`` reproduces the legacy queue
        protocols.
    delivery : str, optional
        Which gate-eligible queue entry commits: ``"fifo"`` (oldest
        first) or ``"random"`` (uniform over the queue — the memoryless
        model; draws from the server's seeded RNG).
    faults : FaultInjector, optional
        Fault source (default: no faults).
    hooks : TrainerHooks, optional
        Static clipping / callbacks / divergence threshold.
    log : TrainLog, optional
        Log to append to (a fresh one by default).
    seed:
        Seed for the server RNG (random delivery).

    Attributes
    ----------
    clock : float
        Current simulated time.
    reads_done : int
        Gradients computed so far (= loss evaluations logged).
    discarded : int
        In-flight gradients dropped by explicit
        :meth:`discard_in_flight` calls (a non-drained :meth:`run`
        leaves in-flight gradients in place so the run can resume).
    timeline : list of dict
        Event narrative: ``{"t", "kind", "worker"/"shard", ...}`` per
        scheduling-relevant occurrence, for
        :func:`repro.sim.metrics.event_timeline_summary`.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss_fn: Callable[[], "object"], workers: int = 4,
                 delay_model: DelaySpec = "constant",
                 num_shards: int = 1, shard_policy: PolicySpec = "hash",
                 queue_staleness: int = 0, delivery: str = "fifo",
                 faults: Optional[FaultInjector] = None,
                 hooks: Optional[TrainerHooks] = None,
                 log: Optional[TrainLog] = None, seed: SeedLike = None):
        from repro.utils.deprecation import (entered_internally,
                                             warn_deprecated)

        if not entered_internally():
            # the engine itself is not deprecated — ad-hoc construction
            # is; repro.run builds runtimes inside internal_calls()
            warn_deprecated(
                "direct ClusterRuntime construction",
                "repro.run.run(spec) / repro.run.build_cluster(...)")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if delivery not in ("fifo", "random"):
            raise ValueError(f"unknown delivery {delivery!r}")
        if queue_staleness < 0:
            raise ValueError(
                f"queue_staleness must be >= 0, got {queue_staleness}")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.delivery = delivery
        self.faults = faults if faults is not None else FaultInjector()
        self.hooks = hooks or TrainerHooks()
        self.log = log if log is not None else TrainLog()
        self.server = ShardedParameterServer(
            model, optimizer, num_shards=num_shards,
            staleness=queue_staleness, policy=shard_policy, seed=seed)
        # stochastic delay models resolved by name share the server's
        # seeded generator, so `seed` makes the whole run reproducible;
        # model instances keep their own streams
        self.delay_model = make_delay_model(delay_model,
                                            seed=self.server.rng)
        self.workers: List[ClusterWorker] = [
            ClusterWorker(worker_id=i) for i in range(workers)]
        self.faults.check_workers(workers)
        self.events = EventQueue()
        self.clock = 0.0
        self.reads_done = 0
        self.discarded = 0
        self.diverged = False
        self.timeline: List[dict] = []
        # read metadata for in-flight/queued gradients, keyed by the
        # logical read index the server queue entries carry
        self._inflight: Dict[int, Tuple[int, int]] = {}
        self._started = False
        self._clip = None
        if self.hooks.grad_clip_norm is not None:
            params = self.optimizer.params
            norm = self.hooks.grad_clip_norm
            self._clip = lambda: clip_grad_norm(params, norm)

    # ------------------------------------------------------------- #
    # worker actions
    # ------------------------------------------------------------- #
    @property
    def updates_done(self) -> int:
        """Updates committed so far (the server's applied count)."""
        return self.server.steps_applied

    def _compute_gradient(self, worker: ClusterWorker,
                          step: int) -> Tuple[float, List]:
        """Compute read ``step``'s loss and gradient for ``worker``.

        The one place a gradient is actually produced — subclasses
        (the multi-process runtime) override it to route the identical
        computation to a real worker process while every scheduling
        decision stays in this class.
        """
        self.model.zero_grad()
        loss = self.loss_fn()
        loss.backward()
        # no copy here: zero_grad + backward produce fresh arrays every
        # read, and push() copies at the ingest boundary on arrival
        return float(loss.data), [p.grad for p in self.optimizer.params]

    def _on_worker_crash(self, worker_id: int) -> None:
        """Hook fired when a worker's crash is decided (no-op here).

        The multi-process runtime overrides it to SIGKILL the real
        worker process at the moment the simulated crash is scheduled.
        """

    def _on_worker_restart(self, worker_id: int) -> None:
        """Hook fired when a crashed worker's restart event lands.

        The multi-process runtime overrides it to respawn a fresh
        worker process before the worker is dispatched again.
        """

    def _read_and_dispatch(self, worker: ClusterWorker) -> None:
        """Worker reads the live model, computes a gradient, ships it.

        Logs the observed loss (read-time loss, as async systems report
        it), runs the divergence check, samples the delay model, lets
        the fault injector intervene, and schedules the arrival (or
        crash) event.
        """
        step = self.reads_done
        loss_value, grads = self._compute_gradient(worker, step)
        self.log.append("loss", loss_value, step)
        worker.reads += 1
        self.reads_done += 1
        if not math.isfinite(loss_value) or (
                self.hooks.stop_on_divergence is not None
                and loss_value > self.hooks.stop_on_divergence):
            self.log.append("diverged", 1.0, step)
            self.diverged = True
            return
        self._inflight[step] = (worker.worker_id, self.server.steps_applied)

        session = _obs_active()
        if session is not None and session.tracer is not None:
            with session.tracer.span("delay.sample", "cluster.delay",
                                     worker=worker.worker_id,
                                     sim_time=self.clock):
                delay = self.delay_model.sample(worker.worker_id,
                                                self.clock)
        else:
            delay = self.delay_model.sample(worker.worker_id, self.clock)
        delay, crash_time = self.faults.on_dispatch(
            worker.worker_id, self.clock, delay)
        if crash_time is not None:
            downtime = self.faults.consume_crash()
            worker.alive = False
            del self._inflight[step]
            self.events.schedule(crash_time, "crash", worker.worker_id,
                                 {"restart_at": crash_time + downtime,
                                  "lost_read": step})
            self._on_worker_crash(worker.worker_id)
            return
        self.events.schedule(self.clock + delay, "arrival",
                             worker.worker_id,
                             {"grads": grads, "read_step": step})

    def _commit_ready(self, updates: Optional[int]) -> None:
        """Commit queued gradients while the gate is open and budget lasts."""
        while self.server.ready and (
                updates is None or self.server.steps_applied < updates):
            if self.delivery == "fifo":
                pos = 0
            else:
                pos = int(self.server.rng.integers(self.server.pending))
            version = self.server.steps_applied
            applied_step = self.server.apply_one(
                pos=pos, grad_transform=self._clip)
            if applied_step is None:  # pragma: no cover — gate said ready
                break
            log_step = self.reads_done - 1
            worker_id, read_version = self._inflight.pop(
                applied_step, (-1, version))
            if worker_id >= 0:
                self.workers[worker_id].applied += 1
            staleness = version - read_version
            self.log.append("staleness", staleness, log_step)
            self.log.append("worker", worker_id, log_step)
            self.log.append("sim_time", self.clock, log_step)
            self.server._log_stats(self.log, log_step)
            session = _obs_active()
            if session is not None and session.metrics is not None:
                session.metrics.histogram("cluster.staleness").observe(
                    staleness)
                session.metrics.gauge("cluster.queue_depth").set(
                    self.server.pending)
                session.metrics.counter("cluster.commits").inc()
                # the per-iteration live-metrics seam: one payload per
                # committed update, in commit order
                session.metrics.emit(log_step, {
                    "step": log_step, "staleness": staleness,
                    "worker": worker_id, "sim_time": self.clock,
                    "queue_depth": self.server.pending,
                    "updates": self.server.steps_applied,
                })
            if self.hooks.on_step is not None:
                self.hooks.on_step(log_step, self.log)

    # ------------------------------------------------------------- #
    # event handlers
    # ------------------------------------------------------------- #
    def _handle(self, event: Event, reads: int,
                updates: Optional[int]) -> None:
        """Dispatch one event, wrapped in a tracer span when observed.

        The span (category ``cluster.events``, name ``event:<kind>``)
        carries the worker id and the event's simulated time, so a
        trace interleaves deterministic sim-time with the wall-clock
        cost of handling each event.
        """
        session = _obs_active()
        if session is not None and session.tracer is not None:
            with session.tracer.span(f"event:{event.kind}",
                                     "cluster.events",
                                     worker=event.worker,
                                     sim_time=event.time):
                self._dispatch(event, reads, updates)
        else:
            self._dispatch(event, reads, updates)

    def _fault_instant(self, name: str, counter: str, worker: int) -> None:
        """Record a fault occurrence on the active session (if any)."""
        session = _obs_active()
        if session is None:
            return
        if session.tracer is not None:
            session.tracer.instant(name, "cluster.faults", worker=worker,
                                   sim_time=self.clock)
        if session.metrics is not None:
            session.metrics.counter(counter).inc()

    def _dispatch(self, event: Event, reads: int,
                  updates: Optional[int]) -> None:
        """Route one event to its handler (the un-instrumented core)."""
        if event.kind == "arrival":
            pause_end = self.faults.pause_until(event.time)
            if pause_end is not None and pause_end > event.time:
                # server paused: defer delivery.  The original seq is
                # kept, so the deferred backlog drains before arrivals
                # natively timed at the pause end — deferral shifts
                # time, never delivery order.
                self.timeline.append({"t": event.time, "kind": "deferred",
                                      "worker": event.worker,
                                      "shard": self.faults
                                      .consume_pause_shard(),
                                      "until": pause_end})
                self._fault_instant("fault:deferred", "cluster.deferrals",
                                    event.worker)
                self.events.reschedule(event, pause_end)
                return
            self.clock = event.time
            self.server.push(event.payload["grads"],
                             step=event.payload["read_step"])
            self.timeline.append({"t": self.clock, "kind": "arrival",
                                  "worker": event.worker})
            self._commit_ready(updates)
            if not self.diverged and self.reads_done < reads:
                self._read_and_dispatch(self.workers[event.worker])
        elif event.kind == "crash":
            self.clock = event.time
            worker = self.workers[event.worker]
            worker.crashes += 1
            self.timeline.append({"t": self.clock, "kind": "crash",
                                  "worker": event.worker})
            self._fault_instant("fault:crash", "cluster.crashes",
                                event.worker)
            self.log.append("crash", float(event.worker), self.reads_done)
            self.events.schedule(event.payload["restart_at"], "restart",
                                 event.worker, {})
        elif event.kind == "restart":
            self.clock = event.time
            worker = self.workers[event.worker]
            worker.alive = True
            worker.restarts += 1
            self._on_worker_restart(event.worker)
            self.timeline.append({"t": self.clock, "kind": "restart",
                                  "worker": event.worker})
            self._fault_instant("fault:restart", "cluster.restarts",
                                event.worker)
            self.log.append("restart", float(event.worker), self.reads_done)
            if not self.diverged and self.reads_done < reads:
                self._read_and_dispatch(worker)
        else:  # pragma: no cover — queue only ever holds known kinds
            raise RuntimeError(f"unknown event kind {event.kind!r}")

    # ------------------------------------------------------------- #
    # driving loop
    # ------------------------------------------------------------- #
    def run(self, reads: int, updates: Optional[int] = None,
            drain_final: bool = False) -> TrainLog:
        """Simulate until the read (and update) budgets are met.

        Parameters
        ----------
        reads : int
            Total gradient computations (= logged losses) for the whole
            run, counted from construction — resuming a restored runtime
            with the same value continues to the same endpoint.
        updates : int, optional
            Total updates to commit.  ``None`` (default) commits
            whatever arrives before the run ends; a value keeps
            processing deliveries after the last read until the target
            is reached (the round-robin facade uses
            ``max(0, steps - tau)`` to match the legacy protocol).
        drain_final : bool, optional
            After the budgets are met, deliver and commit every
            still-in-flight gradient (ignoring gates) instead of
            discarding them; logged under series ``"drained"``.

        Returns
        -------
        TrainLog
            The runtime's log: ``"loss"`` per read; ``"staleness"``,
            ``"worker"``, ``"sim_time"`` and optimizer stats per commit;
            ``"crash"``/``"restart"`` markers; ``"diverged"`` /
            ``"drained"`` markers.
        """
        if reads < 0:
            raise ValueError(f"reads must be >= 0, got {reads}")
        if not self._started:
            self._started = True
            for worker in self.workers:
                if self.diverged or self.reads_done >= reads:
                    break
                self._read_and_dispatch(worker)
        elif not self.diverged and self.reads_done < reads:
            # resuming: an alive worker with no pending event is idle
            # (its gradient was discarded/drained after an earlier run)
            # and would never be rescheduled by the event loop — wake it
            pending = self.events.pending_workers()
            for worker in self.workers:
                if self.diverged or self.reads_done >= reads:
                    break
                if worker.alive and worker.worker_id not in pending:
                    self._read_and_dispatch(worker)
        while not self.diverged:
            if self.reads_done >= reads and (
                    updates is None
                    or self.server.steps_applied >= updates):
                break
            if not self.events:
                break
            self._handle(self.events.pop(), reads, updates)
        if drain_final and not self.diverged:
            self._drain()
        return self.log

    def _drain(self) -> None:
        """Deliver and commit every in-flight gradient, ignoring gates.

        Crash/restart lifecycle events are re-queued, not dropped, so a
        crashed worker still comes back if the run is later resumed
        with a larger budget.
        """
        kept: List[Event] = []
        while self.events:
            event = self.events.pop()
            if event.kind != "arrival":
                kept.append(event)
                continue
            self.clock = max(self.clock, event.time)
            self.server.push(event.payload["grads"],
                             step=event.payload["read_step"])
        for event in kept:
            self.events.reschedule(event, event.time)
        for applied_step in self.server.flush(grad_transform=self._clip):
            worker_id, _ = self._inflight.pop(applied_step, (-1, 0))
            if worker_id >= 0:
                self.workers[worker_id].applied += 1
            self.log.append("drained", float(applied_step), self.reads_done)

    @property
    def in_flight(self) -> int:
        """Gradients computed but not committed: undelivered arrivals
        plus queued-but-gated server entries."""
        return self.events.count_kind("arrival") + self.server.pending

    def discard_in_flight(self) -> int:
        """Drop undelivered arrivals and queued-but-gated entries.

        The end-of-run protocol of the paper: whatever did not commit is
        gone.  Crash/restart events are kept (they carry no gradients),
        so a later :meth:`run` call with a larger budget can still
        resume worker lifecycles.

        Returns
        -------
        int
            Number of gradients dropped (also accumulated on
            :attr:`discarded`).
        """
        dropped = 0
        kept: List[Event] = []
        while self.events:
            event = self.events.pop()
            if event.kind == "arrival":
                self._inflight.pop(event.payload["read_step"], None)
                dropped += 1
            else:
                kept.append(event)
        for event in kept:
            self.events.reschedule(event, event.time)
        for step in self.server.drop_queued():
            self._inflight.pop(step, None)
            dropped += 1
        self.discarded += dropped
        return dropped

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #
    def worker_stats(self) -> List[dict]:
        """Per-worker lifetime counters (reads, commits, crashes)."""
        return [{"worker": w.worker_id, "alive": w.alive, "reads": w.reads,
                 "applied": w.applied, "crashes": w.crashes,
                 "restarts": w.restarts} for w in self.workers]

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Complete runtime state for bit-for-bit resume.

        Bundles model parameters (and buffers), optimizer state, server
        queues, the event queue with its in-flight gradients, delay and
        fault state (RNG positions included), worker counters, and the
        training log.  Restore with :meth:`load_state_dict` on a runtime
        constructed with the same configuration and a fresh
        model/optimizer of the same architecture.
        """
        return {
            "clock": self.clock,
            "reads_done": self.reads_done,
            "discarded": self.discarded,
            "diverged": self.diverged,
            "started": self._started,
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "server": self.server.state_dict(),
            "events": self.events.state_dict(),
            "delay_model": self.delay_model.state_dict(),
            "faults": self.faults.state_dict(),
            "inflight": [(step, wid, ver) for step, (wid, ver)
                         in sorted(self._inflight.items())],
            "workers": [{"worker_id": w.worker_id, "alive": w.alive,
                         "reads": w.reads, "applied": w.applied,
                         "crashes": w.crashes, "restarts": w.restarts}
                        for w in self.workers],
            "timeline": [dict(entry) for entry in self.timeline],
            "log": self.log.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if len(state["workers"]) != len(self.workers):
            raise ValueError(
                f"checkpoint has {len(state['workers'])} workers, "
                f"runtime has {len(self.workers)}")
        self.clock = float(state["clock"])
        self.reads_done = int(state["reads_done"])
        self.discarded = int(state["discarded"])
        self.diverged = bool(state["diverged"])
        self._started = bool(state["started"])
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.server.load_state_dict(state["server"])
        self.events.load_state_dict(state["events"])
        self.delay_model.load_state_dict(state["delay_model"])
        self.faults.load_state_dict(state["faults"])
        self._inflight = {int(step): (int(wid), int(ver))
                          for step, wid, ver in state["inflight"]}
        for worker, ws in zip(self.workers, state["workers"]):
            worker.alive = bool(ws["alive"])
            worker.reads = int(ws["reads"])
            worker.applied = int(ws["applied"])
            worker.crashes = int(ws["crashes"])
            worker.restarts = int(ws["restarts"])
        self.timeline = [dict(entry) for entry in state["timeline"]]
        self.log.load_state_dict(state["log"])

    def __repr__(self) -> str:
        return (f"ClusterRuntime(workers={len(self.workers)}, "
                f"delay={self.delay_model!r}, clock={self.clock:.3g}, "
                f"reads={self.reads_done}, "
                f"updates={self.server.steps_applied})")
