"""Checkpoint/restore for cluster runs: bit-for-bit resumability.

A cluster checkpoint bundles *everything* the simulation's future
depends on — model parameters and buffers, optimizer slots (fused or
per-tensor), YellowFin/closed-loop tuner state, server shard queues,
the event queue with its in-flight gradients, every RNG position (delay
model, fault injector, server), worker lifecycles, and the training log
— so a run restored at update *k* continues exactly as the
uninterrupted run would have.  The on-disk format is the lossless JSON
codec of :mod:`repro.utils.serialization` (arrays keep dtype and shape;
floats round-trip via ``repr``), so "exactly" means bit-for-bit, which
the test suite enforces.

The one thing a checkpoint cannot capture generically is the data
stream: ``loss_fn`` is an arbitrary closure.  If it (or an object
passed as ``workload``) exposes ``state_dict``/``load_state_dict`` —
e.g. :class:`~repro.data.loader.BatchLoader` — its position is captured
too; otherwise the caller must rebuild an equivalent stream.

Typical flow::

    runtime.run(reads=1000)               # phase 1
    save_cluster_checkpoint(runtime, "ckpt.json")
    ...                                   # crash happens here
    runtime2 = build_runtime()            # same config, fresh model
    restore_cluster(runtime2, load_cluster_checkpoint("ckpt.json"))
    runtime2.run(reads=2000)              # continues bit-for-bit
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.runtime import ClusterRuntime
from repro.utils.serialization import (PathLike, load_checkpoint,
                                       save_checkpoint)

FORMAT_VERSION = 1


def checkpoint_cluster(runtime: ClusterRuntime,
                       workload: Optional[object] = None) -> dict:
    """Capture a cluster run as a serializable state tree.

    Parameters
    ----------
    runtime : ClusterRuntime
        The runtime to snapshot.  Snapshot at an event boundary (i.e.
        between :meth:`~repro.cluster.runtime.ClusterRuntime.run`
        calls); the state is then self-consistent.
    workload : object, optional
        The data-stream object to snapshot alongside (defaults to the
        runtime's ``loss_fn``).  Captured only if it exposes
        ``state_dict``.

    Returns
    -------
    dict
        State tree accepted by :func:`restore_cluster` (and by
        :func:`save_cluster_checkpoint` for disk persistence).
    """
    workload = workload if workload is not None else runtime.loss_fn
    state = {
        "format_version": FORMAT_VERSION,
        "runtime": runtime.state_dict(),
    }
    if hasattr(workload, "state_dict"):
        state["workload"] = workload.state_dict()
    return state


def restore_cluster(runtime: ClusterRuntime, state: dict,
                    workload: Optional[object] = None) -> ClusterRuntime:
    """Restore a snapshot into a freshly-constructed runtime.

    Parameters
    ----------
    runtime : ClusterRuntime
        A runtime built with the same configuration (workers, delay
        model, shards, faults, seed) over a fresh model/optimizer of the
        same architecture.
    state : dict
        Tree from :func:`checkpoint_cluster` /
        :func:`load_cluster_checkpoint`.
    workload : object, optional
        The data-stream object to restore into (defaults to the
        runtime's ``loss_fn``); used only if the checkpoint captured a
        workload state.

    Returns
    -------
    ClusterRuntime
        The same ``runtime``, for chaining.
    """
    version = state.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {version!r} "
            f"(expected {FORMAT_VERSION})")
    runtime.load_state_dict(state["runtime"])
    if "workload" in state:
        workload = workload if workload is not None else runtime.loss_fn
        if not hasattr(workload, "load_state_dict"):
            raise ValueError(
                "checkpoint captured a workload state but the workload "
                "cannot restore one (no load_state_dict)")
        workload.load_state_dict(state["workload"])
    return runtime


def save_cluster_checkpoint(runtime: ClusterRuntime, path: PathLike,
                            workload: Optional[object] = None) -> None:
    """Snapshot a runtime and write it to disk, losslessly.

    Parameters
    ----------
    runtime : ClusterRuntime
        The runtime to snapshot.
    path : str or Path
        Destination file (JSON, via the tagged lossless codec).
    workload : object, optional
        Forwarded to :func:`checkpoint_cluster`.
    """
    save_checkpoint(checkpoint_cluster(runtime, workload=workload), path)


def load_cluster_checkpoint(path: PathLike) -> dict:
    """Read a checkpoint written by :func:`save_cluster_checkpoint`.

    Returns
    -------
    dict
        The state tree, bit-for-bit equal to what was saved; pass it to
        :func:`restore_cluster`.
    """
    return load_checkpoint(path)
