"""Deterministic discrete-event core for the cluster runtime.

A simulated cluster is a priority queue of timestamped events processed
in ``(time, seq)`` order: ``time`` is the simulated clock and ``seq`` is
a monotone counter assigned at scheduling time, so simultaneous events
resolve in scheduling order.  Determinism is the whole point — two runs
that schedule the same events in the same order replay identically,
which is what makes trace-driven experiments and bit-for-bit
checkpoint/restore possible.

Event kinds used by :class:`~repro.cluster.runtime.ClusterRuntime`:

- ``"arrival"`` — a worker's gradient push reaches the parameter server
  (payload: the gradient slices plus read metadata);
- ``"crash"`` — a worker fails before its push lands (the gradient in
  the payload is lost);
- ``"restart"`` — a crashed worker comes back and resumes reading.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.utils.serialization import copy_array_list


@dataclass(order=True)
class Event:
    """One timestamped cluster event.

    Attributes
    ----------
    time : float
        Simulated time at which the event fires.
    seq : int
        Scheduling-order tiebreaker for simultaneous events.
    kind : str
        Event type (``"arrival"``, ``"crash"``, ``"restart"``).
    worker : int
        The worker the event concerns.
    payload : dict
        Kind-specific data (e.g. gradient slices and read metadata for
        arrivals).  Not compared when ordering events.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    worker: int = field(compare=False)
    payload: dict = field(compare=False, default_factory=dict)


class EventQueue:
    """Priority queue of :class:`Event` with deterministic tie-breaking.

    Events pop in ``(time, seq)`` order.  The queue is fully
    serializable (:meth:`state_dict` / :meth:`load_state_dict`) so a
    checkpointed run can resume with its in-flight events — including
    the gradients they carry — intact.
    """

    def __init__(self):
        self._heap: List[Event] = []
        self._next_seq = 0
        # incrementally maintained indexes so count_kind() and
        # pending_workers() stay O(1)-ish at fleet scale (the resume
        # and fuzz paths query them per event, which was O(n^2))
        self._kind_counts: Dict[str, int] = {}
        self._worker_counts: Dict[int, int] = {}

    def _index_add(self, event: Event) -> None:
        self._kind_counts[event.kind] = \
            self._kind_counts.get(event.kind, 0) + 1
        self._worker_counts[event.worker] = \
            self._worker_counts.get(event.worker, 0) + 1

    def _index_remove(self, event: Event) -> None:
        kinds, workers = self._kind_counts, self._worker_counts
        kinds[event.kind] -= 1
        if not kinds[event.kind]:
            del kinds[event.kind]
        workers[event.worker] -= 1
        if not workers[event.worker]:
            del workers[event.worker]

    def schedule(self, time: float, kind: str, worker: int,
                 payload: Optional[dict] = None) -> Event:
        """Create an event, assign it the next sequence number, enqueue it.

        Parameters
        ----------
        time : float
            Simulated fire time.
        kind : str
            Event type tag.
        worker : int
            Worker id the event concerns.
        payload : dict, optional
            Kind-specific data carried by the event.

        Returns
        -------
        Event
            The scheduled event.
        """
        event = Event(time=float(time), seq=self._next_seq, kind=kind,
                      worker=int(worker), payload=payload or {})
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._index_add(event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (``(time, seq)`` order)."""
        event = heapq.heappop(self._heap)
        self._index_remove(event)
        return event

    def reschedule(self, event: Event, time: float) -> Event:
        """Re-enqueue a popped event at a later time, keeping its seq.

        Used for pause deferrals: preserving the original sequence
        number keeps the deferred backlog ordered before any event
        scheduled later — so deferral shifts time but never inverts
        delivery order.
        """
        moved = Event(time=float(time), seq=event.seq, kind=event.kind,
                      worker=event.worker, payload=event.payload)
        heapq.heappush(self._heap, moved)
        self._index_add(moved)
        return moved

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pending_workers(self) -> Set[int]:
        """Worker ids with at least one queued event (any kind)."""
        return set(self._worker_counts)

    def count_kind(self, kind: str) -> int:
        """Number of queued events of one kind."""
        return self._kind_counts.get(kind, 0)

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable queue state: sorted events + sequence counter."""
        entries = []
        for ev in sorted(self._heap):
            payload: Dict[str, object] = {}
            for key, value in ev.payload.items():
                if key == "grads":
                    payload[key] = copy_array_list(value)
                else:
                    payload[key] = value
            entries.append({"time": ev.time, "seq": ev.seq, "kind": ev.kind,
                            "worker": ev.worker, "payload": payload})
        return {"entries": entries, "next_seq": self._next_seq}

    def load_state_dict(self, state: dict) -> None:
        """Restore queue contents captured by :meth:`state_dict`."""
        self._heap = []
        self._kind_counts = {}
        self._worker_counts = {}
        for entry in state["entries"]:
            payload = {}
            for key, value in entry["payload"].items():
                if key == "grads":
                    # copy, mirroring state_dict: queued gradients must
                    # not alias the caller's checkpoint dict
                    payload[key] = copy_array_list(value)
                else:
                    payload[key] = value
            self._heap.append(Event(time=float(entry["time"]),
                                    seq=int(entry["seq"]),
                                    kind=entry["kind"],
                                    worker=int(entry["worker"]),
                                    payload=payload))
        heapq.heapify(self._heap)
        for ev in self._heap:
            self._index_add(ev)
        self._next_seq = int(state["next_seq"])

    def __repr__(self) -> str:
        head = self.peek()
        nxt = f"next=({head.time:.3g}, {head.kind})" if head else "empty"
        return f"EventQueue(len={len(self)}, {nxt})"
