"""Fault injection for the cluster runtime: crashes, stragglers, pauses.

Three failure modes of real parameter-server deployments, all
reproducible from a seed:

- **Worker crash/restart** — a worker dies mid-computation: its
  in-flight gradient is lost and it rejoins after a downtime, reading
  the then-current model (so it resumes with whatever staleness the
  outage produced).
- **Straggler windows** — a worker's dispatches slow down by a
  multiplicative factor for a time window (background load, thermal
  throttling, preemption pressure).
- **Shard-server pauses** — the server stops committing updates for a
  window (shard failover, leader election).  Because updates assemble
  across *all* shards before the optimizer steps, one paused shard
  blocks commits globally; arrivals during the pause are deferred, in
  order, to the pause end.

Faults come from two sources that compose freely: an explicit
``scheduled`` list of fault specs (deterministic scenario scripting) and
seeded per-dispatch random draws (rates).  All decisions are made at
dispatch time in event order, so a given seed yields one reproducible
fault history — and the injector's :meth:`~FaultInjector.state_dict`
captures the RNG position plus consumed/active fault records for exact
checkpoint resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.utils.rng import (SeedLike, get_rng_state, new_rng,
                             set_rng_state)


@dataclass(frozen=True)
class WorkerCrash:
    """Scripted crash: ``worker`` dies at ``time`` for ``downtime``.

    The crash fires on the first dispatch whose computation spans
    ``time``; the gradient being computed is lost and the worker
    restarts ``downtime`` later.
    """

    worker: int
    time: float
    downtime: float = 5.0


@dataclass(frozen=True)
class Straggler:
    """Scripted slowdown: ``worker`` runs ``factor`` times slower during
    ``[start, start + duration)``.

    The factor applies to dispatches *issued* inside the window.
    """

    worker: int
    start: float
    duration: float
    factor: float = 10.0


@dataclass(frozen=True)
class ShardPause:
    """Scripted server pause: no commits during ``[start, start + duration)``.

    ``shard`` is narrative (recorded in the timeline); the commit path
    assembles across all shards, so any paused shard blocks every
    update.
    """

    start: float
    duration: float
    shard: int = 0


FaultSpec = Union[WorkerCrash, Straggler, ShardPause]


class FaultInjector:
    """Decides, per dispatch, whether and how a fault strikes.

    Parameters
    ----------
    crash_prob : float, optional
        Per-dispatch probability that the worker crashes at the end of
        this computation (gradient lost).
    crash_downtime : float, optional
        Downtime before a randomly-crashed worker restarts.
    straggler_prob : float, optional
        Per-dispatch probability that this computation is slowed by
        ``straggler_factor``.
    straggler_factor : float, optional
        Multiplicative slowdown of straggler dispatches.
    pause_prob : float, optional
        Per-dispatch probability that a server pause of
        ``pause_duration`` starts at dispatch time.
    pause_duration : float, optional
        Length of randomly-injected server pauses.
    scheduled : sequence of fault specs, optional
        Explicit :class:`WorkerCrash` / :class:`Straggler` /
        :class:`ShardPause` entries for scripted scenarios.
    seed : int or Generator, optional
        Seed for the random fault stream.  A fixed seed plus a fixed
        event schedule yields one reproducible fault history.
    """

    def __init__(self, crash_prob: float = 0.0, crash_downtime: float = 5.0,
                 straggler_prob: float = 0.0,
                 straggler_factor: float = 10.0,
                 pause_prob: float = 0.0, pause_duration: float = 5.0,
                 scheduled: Sequence[FaultSpec] = (),
                 seed: SeedLike = None):
        for name, p in (("crash_prob", crash_prob),
                        ("straggler_prob", straggler_prob),
                        ("pause_prob", pause_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if crash_downtime < 0 or pause_duration < 0:
            raise ValueError("downtimes/durations must be >= 0")
        if straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {straggler_factor}")
        self.crash_prob = float(crash_prob)
        self.crash_downtime = float(crash_downtime)
        self.straggler_prob = float(straggler_prob)
        self.straggler_factor = float(straggler_factor)
        self.pause_prob = float(pause_prob)
        self.pause_duration = float(pause_duration)
        self.scheduled: List[FaultSpec] = list(scheduled)
        for fault in self.scheduled:
            if isinstance(fault, (WorkerCrash, Straggler)) \
                    and fault.worker < 0:
                raise ValueError(f"fault worker id must be >= 0: {fault}")
            if isinstance(fault, WorkerCrash) and fault.downtime < 0:
                raise ValueError(f"crash downtime must be >= 0: {fault}")
            if isinstance(fault, Straggler) and (fault.duration < 0
                                                 or fault.factor < 1.0):
                raise ValueError(
                    f"straggler needs duration >= 0, factor >= 1: {fault}")
            if isinstance(fault, ShardPause) and fault.duration < 0:
                raise ValueError(f"pause duration must be >= 0: {fault}")
        self.rng = new_rng(seed)
        self._pending_downtime = self.crash_downtime
        self._pending_pause_shard = 0
        self._consumed_crashes: set = set()
        # dynamic pauses injected by pause_prob: (start, end, shard)
        self._dynamic_pauses: List[Tuple[float, float, int]] = []

    @property
    def active(self) -> bool:
        """Whether this injector can ever produce a fault."""
        return bool(self.scheduled) or self.crash_prob > 0 or \
            self.straggler_prob > 0 or self.pause_prob > 0

    def check_workers(self, num_workers: int) -> None:
        """Reject scheduled faults addressing nonexistent workers.

        Called by the runtime at construction, so a mistyped worker id
        fails loudly instead of silently never firing.
        """
        for fault in self.scheduled:
            if isinstance(fault, (WorkerCrash, Straggler)) \
                    and fault.worker >= num_workers:
                raise ValueError(
                    f"{fault} addresses worker {fault.worker}, but the "
                    f"runtime has only {num_workers} workers")

    # ------------------------------------------------------------- #
    # dispatch-time decisions
    # ------------------------------------------------------------- #
    def on_dispatch(self, worker: int, now: float,
                    delay: float) -> Tuple[float, Optional[float]]:
        """Apply faults to one dispatch.

        Called by the runtime each time ``worker`` starts computing a
        gradient at simulated time ``now`` with nominal duration
        ``delay``.  Random draws happen in a fixed order (straggler,
        crash, pause), one per fault class whose probability is
        non-zero, and are consumed even when a scheduled fault takes
        precedence — so the random stream depends only on the rates and
        the dispatch sequence, never on the ``scheduled`` list.

        Parameters
        ----------
        worker : int
            Dispatching worker id.
        now : float
            Dispatch time.
        delay : float
            Nominal duration from the delay model.

        Returns
        -------
        (delay, crash_time) : tuple
            The possibly-slowed duration, and ``None`` for a healthy
            dispatch or the crash time (gradient lost; restart at
            ``crash_time + downtime``... the downtime used is the
            scheduled fault's, or ``crash_downtime`` for random
            crashes — retrieve it via the second element of
            :meth:`consume_crash`).
        """
        # draws are consumed unconditionally (one per active fault
        # class) so the stream only depends on rates + dispatch order
        random_straggler = self.straggler_prob > 0 and \
            float(self.rng.random()) < self.straggler_prob
        for fault in self.scheduled:
            if isinstance(fault, Straggler) and fault.worker == worker \
                    and fault.start <= now < fault.start + fault.duration:
                delay = delay * fault.factor
                break
        else:
            if random_straggler:
                delay = delay * self.straggler_factor

        random_crash = self.crash_prob > 0 and \
            float(self.rng.random()) < self.crash_prob
        crash_time: Optional[float] = None
        self._pending_downtime = self.crash_downtime
        for idx, fault in enumerate(self.scheduled):
            if isinstance(fault, WorkerCrash) and fault.worker == worker \
                    and idx not in self._consumed_crashes \
                    and fault.time <= now + delay:
                self._consumed_crashes.add(idx)
                crash_time = max(now, fault.time)
                self._pending_downtime = fault.downtime
                break
        if crash_time is None and random_crash:
            crash_time = now + delay

        if self.pause_prob > 0 and \
                float(self.rng.random()) < self.pause_prob:
            self._dynamic_pauses.append(
                (now, now + self.pause_duration, 0))

        return delay, crash_time

    def consume_crash(self) -> float:
        """Downtime of the crash reported by the last :meth:`on_dispatch`."""
        return self._pending_downtime

    def pause_until(self, now: float) -> Optional[float]:
        """End time of the pause covering ``now``, or ``None``.

        The runtime defers arrival events to this time, preserving their
        relative order.  The shard id of the governing (longest) pause
        is available from :meth:`consume_pause_shard` afterwards, for
        the timeline narrative (randomly-injected pauses record shard
        0).
        """
        end, shard = None, 0
        for fault in self.scheduled:
            if isinstance(fault, ShardPause) and \
                    fault.start <= now < fault.start + fault.duration:
                stop = fault.start + fault.duration
                if end is None or stop > end:
                    end, shard = stop, fault.shard
        # prune expired dynamic pauses (query times are monotone, so an
        # ended window can never match again)
        self._dynamic_pauses = [p for p in self._dynamic_pauses
                                if p[1] > now]
        for start, stop, dyn_shard in self._dynamic_pauses:
            if start <= now < stop and (end is None or stop > end):
                end, shard = stop, dyn_shard
        self._pending_pause_shard = shard
        return end

    def consume_pause_shard(self) -> int:
        """Shard id of the pause reported by the last
        :meth:`pause_until` call."""
        return self._pending_pause_shard

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """RNG position + consumed scheduled crashes + dynamic pauses.

        The transient hand-off fields (``_pending_downtime`` /
        ``_pending_pause_shard``) travel too: a checkpoint taken between
        :meth:`on_dispatch` and :meth:`consume_crash` (batched dispatch
        widens that window) must not resume a scheduled crash with the
        default downtime.
        """
        return {
            "rng": get_rng_state(self.rng),
            "consumed_crashes": sorted(self._consumed_crashes),
            "dynamic_pauses": [list(p) for p in self._dynamic_pauses],
            "pending_downtime": self._pending_downtime,
            "pending_pause_shard": self._pending_pause_shard,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        The injector must be constructed with the same configuration
        (rates and ``scheduled`` list); only dynamic state travels.
        """
        set_rng_state(self.rng, state["rng"])
        self._consumed_crashes = {int(i) for i in state["consumed_crashes"]}
        self._dynamic_pauses = [
            (float(s), float(e), int(sh))
            for s, e, sh in state["dynamic_pauses"]]
        # .get: checkpoints written before these fields travelled keep
        # loading (they were only valid outside the hand-off window)
        self._pending_downtime = float(
            state.get("pending_downtime", self.crash_downtime))
        self._pending_pause_shard = int(
            state.get("pending_pause_shard", 0))

    def __repr__(self) -> str:
        return (f"FaultInjector(crash={self.crash_prob}, "
                f"straggler={self.straggler_prob}, pause={self.pause_prob}, "
                f"scheduled={len(self.scheduled)})")
