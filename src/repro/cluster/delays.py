"""Delay models: how long a worker's gradient takes to reach the server.

The paper's Section 5.2 protocol is the degenerate case — every worker
takes exactly the same time, so gradients arrive round-robin with
staleness ``workers - 1``.  Real parameter-server deployments see
nothing so clean: per-machine heterogeneity, bursty stragglers, and
heavy-tailed network delays all reorder arrivals.  Each model here maps
``(worker, now) -> compute+transit duration``; the cluster runtime turns
those durations into arrival events, and staleness *emerges* from the
resulting schedule.

Catalog
-------
- :class:`ConstantDelay` — identical durations; reproduces the paper's
  round-robin protocol exactly (the ``train_async`` facade uses it).
- :class:`UniformDelay` — i.i.d. durations in ``[low, high]``.
- :class:`ExponentialDelay` — memoryless durations (the Mitliagkas
  et al. completion model).
- :class:`ParetoDelay` — heavy-tailed durations: rare but enormous
  stragglers, the regime where fixed momentum is most fragile.
- :class:`HeterogeneousDelay` — a different sub-model per worker
  (fast/slow machine mixes).
- :class:`WorkerClassDelay` — contiguous worker-id blocks, one
  sub-model per block (fleet topologies: racks and machine classes
  occupy id ranges, they do not interleave modulo-style).
- :class:`TraceReplayDelay` — replay durations recorded from a real
  run (JSON), for scenario regression testing.

All stochastic models own a seeded generator and expose
``state_dict``/``load_state_dict`` so a checkpointed run resumes with an
identical future delay stream.  Every model also exposes
:meth:`DelayModel.sample_many`, a batched form of ``sample`` consuming
the underlying stream exactly as repeated scalar calls would — the
fleet engine uses it to price a whole dispatch burst in one NumPy op.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.utils.rng import (SeedLike, get_rng_state, new_rng,
                             set_rng_state)


class DelayModel:
    """Interface: sample the duration of one worker dispatch.

    Subclasses implement :meth:`sample`; stateful subclasses override
    :meth:`state_dict` / :meth:`load_state_dict` so checkpoints capture
    their RNG position (or trace cursor) exactly.
    """

    name = "base"

    def sample(self, worker: int, now: float) -> float:
        """Duration of the dispatch issued by ``worker`` at time ``now``.

        Parameters
        ----------
        worker : int
            Worker id issuing the dispatch.
        now : float
            Current simulated time.

        Returns
        -------
        float
            Strictly positive duration until the gradient arrives.
        """
        raise NotImplementedError

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """Durations for a batch of dispatches issued at time ``now``.

        Semantically equivalent to calling :meth:`sample` once per id in
        ``workers`` order — including the stream position of stateful
        models, so mixing batched and scalar sampling stays bit-exact.
        Subclasses override this with a single vectorized draw where the
        underlying generator fills arrays from the same bitstream as
        repeated scalar draws (the differential tests enforce the
        equivalence).

        Parameters
        ----------
        workers : sequence of int
            Worker ids dispatching, in dispatch order.
        now : float
            Current simulated time (shared by the whole burst).

        Returns
        -------
        numpy.ndarray
            One duration per worker id, in input order.
        """
        return np.array([self.sample(int(w), now) for w in workers],
                        dtype=float)

    def state_dict(self) -> dict:
        """Serializable model state (just the identity for stateless
        models)."""
        return {"name": self.name}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        Always validates the recorded model identity: restoring (say) a
        Pareto state into a constant model would otherwise silently
        drop the RNG position and break bit-for-bit resume.
        """
        self._check_name(state)

    def _check_name(self, state: dict) -> None:
        recorded = state.get("name")
        if recorded is not None and recorded != self.name:
            raise ValueError(
                f"checkpoint was written by a {recorded!r} delay model, "
                f"cannot restore into {self.name!r}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _SeededDelay(DelayModel):
    """Shared base for stochastic models: owns the seeded generator and
    the RNG-position checkpoint hooks resumability requires."""

    def __init__(self, seed: SeedLike = None):
        self.rng = new_rng(seed)

    def state_dict(self) -> dict:
        """Model identity + RNG position of the duration stream."""
        return {"name": self.name, "rng": get_rng_state(self.rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the duration stream position."""
        self._check_name(state)
        set_rng_state(self.rng, state["rng"])


class ConstantDelay(DelayModel):
    """Every dispatch takes exactly ``delay`` simulated time units.

    With N workers this reproduces the paper's round-robin protocol:
    arrivals keep read order and every gradient is ``N - 1`` updates
    stale after warmup.

    Parameters
    ----------
    delay : float, optional
        The fixed duration (default 1.0; the unit is arbitrary).
    """

    name = "constant"

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = float(delay)

    def sample(self, worker: int, now: float) -> float:
        """Return the fixed duration."""
        return self.delay

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """The fixed duration, broadcast over the burst."""
        return np.full(len(workers), self.delay)


class UniformDelay(_SeededDelay):
    """I.i.d. durations drawn uniformly from ``[low, high]``.

    Parameters
    ----------
    low, high : float
        Duration bounds, ``0 < low <= high``.
    seed : int or Generator, optional
        Seed for the private duration stream.
    """

    name = "uniform"

    def __init__(self, low: float = 0.5, high: float = 1.5,
                 seed: SeedLike = None):
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)
        super().__init__(seed)

    def sample(self, worker: int, now: float) -> float:
        """One uniform draw from the model's private stream."""
        return float(self.rng.uniform(self.low, self.high))

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """One array draw; consumes the stream like repeated scalars."""
        return self.rng.uniform(self.low, self.high, size=len(workers))


class ExponentialDelay(_SeededDelay):
    """Memoryless durations: ``floor + Exp(mean)``.

    The exponential completion model of Mitliagkas et al. (2016) — with
    many workers, the sequence of queue depths at arrival is the
    memoryless staleness process.

    Parameters
    ----------
    mean : float
        Mean of the exponential component.
    floor : float, optional
        Minimum duration added to every draw (keeps durations positive
        and models fixed compute cost under random transit).
    seed : int or Generator, optional
        Seed for the private duration stream.
    """

    name = "exponential"

    def __init__(self, mean: float = 1.0, floor: float = 0.0,
                 seed: SeedLike = None):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.mean, self.floor = float(mean), float(floor)
        super().__init__(seed)

    def sample(self, worker: int, now: float) -> float:
        """One shifted-exponential draw."""
        return self.floor + float(self.rng.exponential(self.mean))

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """One array draw; consumes the stream like repeated scalars."""
        return self.floor + self.rng.exponential(self.mean,
                                                 size=len(workers))


class ParetoDelay(_SeededDelay):
    """Heavy-tailed durations: classical Pareto with minimum ``scale``.

    ``duration = scale * (1 + Pareto(alpha))`` — the survival function
    decays polynomially, so occasional dispatches take orders of
    magnitude longer than the median.  ``alpha <= 1`` has infinite mean;
    the default 1.5 has finite mean but infinite variance, the classic
    straggler regime.

    Parameters
    ----------
    alpha : float, optional
        Tail index (smaller = heavier tail).
    scale : float, optional
        Minimum duration (the Pareto ``x_m``).
    seed : int or Generator, optional
        Seed for the private duration stream.
    """

    name = "pareto"

    def __init__(self, alpha: float = 1.5, scale: float = 0.5,
                 seed: SeedLike = None):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.alpha, self.scale = float(alpha), float(scale)
        super().__init__(seed)

    def sample(self, worker: int, now: float) -> float:
        """One Pareto draw with minimum ``scale``."""
        return self.scale * (1.0 + float(self.rng.pareto(self.alpha)))

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """One array draw; consumes the stream like repeated scalars."""
        return self.scale * (1.0 + self.rng.pareto(self.alpha,
                                                   size=len(workers)))


class HeterogeneousDelay(DelayModel):
    """Per-worker sub-models: worker ``w`` draws from ``models[w % len]``.

    Models machine heterogeneity — e.g. half the fleet on fast nodes
    (small constant), half on slow preemptible ones (Pareto).

    Parameters
    ----------
    models : sequence of DelayModel
        Sub-models, cycled over workers by id.
    """

    name = "heterogeneous"

    def __init__(self, models: Sequence[DelayModel]):
        if not models:
            raise ValueError("need at least one sub-model")
        self.models: List[DelayModel] = list(models)

    def sample(self, worker: int, now: float) -> float:
        """Delegate to the worker's sub-model."""
        return self.models[worker % len(self.models)].sample(worker, now)

    def state_dict(self) -> dict:
        """Model identity + concatenated sub-model states."""
        return {"name": self.name,
                "models": [m.state_dict() for m in self.models]}

    def load_state_dict(self, state: dict) -> None:
        """Restore every sub-model's state (identities validated)."""
        self._check_name(state)
        if len(state["models"]) != len(self.models):
            raise ValueError(
                f"checkpoint has {len(state['models'])} sub-models, "
                f"model has {len(self.models)}")
        for model, sub in zip(self.models, state["models"]):
            model.load_state_dict(sub)


class WorkerClassDelay(DelayModel):
    """Contiguous worker-id blocks, one delay sub-model per block.

    The fleet-topology analogue of :class:`HeterogeneousDelay`: a fleet
    spec declares *classes* of machines ("64 fast nodes, then 192
    preemptible stragglers"), and class members occupy contiguous id
    ranges rather than interleaving modulo-style.  Worker ``w`` draws
    from the sub-model of the block containing ``w``; ids past the last
    boundary use the last block (so a topology sized for N workers
    tolerates a larger runtime without index errors).

    Parameters
    ----------
    counts : sequence of int
        Block sizes, in worker-id order (all positive).
    models : sequence of DelayModel
        One sub-model per block.
    """

    name = "worker_classes"

    def __init__(self, counts: Sequence[int], models: Sequence[DelayModel]):
        if not models or len(counts) != len(models):
            raise ValueError(
                f"need one sub-model per class, got {len(counts)} counts "
                f"and {len(models)} models")
        if any(int(c) <= 0 for c in counts):
            raise ValueError(f"class counts must be positive, got {counts}")
        self.counts: List[int] = [int(c) for c in counts]
        self.models: List[DelayModel] = list(models)
        bounds = np.cumsum(self.counts)
        self._bounds = bounds  # block b covers ids [bounds[b-1], bounds[b])

    def _block(self, worker: int) -> int:
        idx = int(np.searchsorted(self._bounds, worker, side="right"))
        return min(idx, len(self.models) - 1)

    def sample(self, worker: int, now: float) -> float:
        """Delegate to the sub-model of the block containing ``worker``."""
        return self.models[self._block(worker)].sample(worker, now)

    def sample_many(self, workers: Sequence[int], now: float) -> np.ndarray:
        """Batch per block: each sub-model prices its members in one call.

        Requires ``workers`` in ascending id order (the engine's
        dispatch-burst order) so every block's members form one
        contiguous slice and its private stream is consumed in the same
        order as repeated scalar calls.
        """
        ids = np.asarray(workers, dtype=int)
        if ids.size and np.any(np.diff(ids) < 0):
            # out-of-order bursts fall back to the scalar path — the
            # per-block batching below would reorder stream consumption
            return super().sample_many(workers, now)
        out = np.empty(ids.size, dtype=float)
        blocks = np.minimum(np.searchsorted(self._bounds, ids, side="right"),
                            len(self.models) - 1)
        start = 0
        while start < ids.size:
            stop = start
            while stop < ids.size and blocks[stop] == blocks[start]:
                stop += 1
            sub = self.models[blocks[start]]
            out[start:stop] = sub.sample_many(ids[start:stop], now)
            start = stop
        return out

    def state_dict(self) -> dict:
        """Model identity + concatenated sub-model states."""
        return {"name": self.name,
                "models": [m.state_dict() for m in self.models]}

    def load_state_dict(self, state: dict) -> None:
        """Restore every sub-model's state (identities validated)."""
        self._check_name(state)
        if len(state["models"]) != len(self.models):
            raise ValueError(
                f"checkpoint has {len(state['models'])} sub-models, "
                f"model has {len(self.models)}")
        for model, sub in zip(self.models, state["models"]):
            model.load_state_dict(sub)


class TraceReplayDelay(DelayModel):
    """Replay recorded durations from a JSON trace.

    Trace format (either key):

    - ``{"delays": [d0, d1, ...]}`` — one global duration list, consumed
      in dispatch order by every worker;
    - ``{"workers": {"0": [...], "1": [...]}}`` — one list per worker id
      (ids must be contiguous from 0; workers beyond the recorded ids
      cycle over the recorded lanes).

    Lists are cycled when exhausted, so short traces drive long runs.
    The cursor positions are part of :meth:`state_dict`, making replay
    resumable.

    Parameters
    ----------
    trace : dict
        Parsed trace in one of the two formats above.
    """

    name = "trace"

    def __init__(self, trace: dict):
        if "workers" in trace:
            keys = sorted(trace["workers"], key=int)
            if [int(k) for k in keys] != list(range(len(keys))):
                # a gap would silently shift every later lane onto the
                # wrong worker — fail loudly instead
                raise ValueError(
                    f"worker ids must be contiguous from 0, got {keys}; "
                    "record an explicit lane for every worker")
            self._per_worker = [
                [float(d) for d in trace["workers"][k]] for k in keys]
            if not self._per_worker or any(
                    not lane for lane in self._per_worker):
                raise ValueError("every worker lane needs >= 1 duration")
            self._global: Optional[List[float]] = None
            self._cursors = [0] * len(self._per_worker)
        elif "delays" in trace:
            self._global = [float(d) for d in trace["delays"]]
            if not self._global:
                raise ValueError("trace has no durations")
            self._per_worker = None
            self._cursors = [0]
        else:
            raise ValueError(
                'trace must contain a "delays" list or a "workers" map')
        for d in (self._global if self._global is not None
                  else [x for lane in self._per_worker for x in lane]):
            if d <= 0:
                raise ValueError(f"trace durations must be positive, got {d}")

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "TraceReplayDelay":
        """Load a trace file written by :meth:`record` (or by hand)."""
        return cls(json.loads(Path(path).read_text()))

    @staticmethod
    def record(durations: Dict[int, List[float]],
               path: Union[str, Path]) -> None:
        """Write per-worker durations as a replayable JSON trace.

        Parameters
        ----------
        durations : dict
            ``{worker_id: [duration, ...]}`` as observed in a real (or
            simulated) run.
        path : str or Path
            Destination trace file.
        """
        payload = {"workers": {str(k): [float(d) for d in v]
                               for k, v in durations.items()}}
        Path(path).write_text(json.dumps(payload, indent=2))

    def sample(self, worker: int, now: float) -> float:
        """Next recorded duration for this worker (cycling the lane)."""
        if self._global is not None:
            lane, idx = self._global, 0
        else:
            idx = worker % len(self._per_worker)
            lane = self._per_worker[idx]
        value = lane[self._cursors[idx] % len(lane)]
        self._cursors[idx] += 1
        return value

    def state_dict(self) -> dict:
        """Model identity + replay cursor positions."""
        return {"name": self.name, "cursors": list(self._cursors)}

    def load_state_dict(self, state: dict) -> None:
        """Restore replay cursor positions."""
        self._check_name(state)
        if len(state["cursors"]) != len(self._cursors):
            raise ValueError("cursor count does not match trace shape")
        self._cursors = [int(c) for c in state["cursors"]]


_DELAY_MODELS = {
    ConstantDelay.name: ConstantDelay,
    UniformDelay.name: UniformDelay,
    ExponentialDelay.name: ExponentialDelay,
    ParetoDelay.name: ParetoDelay,
}

DelaySpec = Union[str, dict, DelayModel]


def make_delay_model(spec: DelaySpec, seed: SeedLike = None) -> DelayModel:
    """Resolve a delay-model name or config dict, or pass an instance.

    Parameters
    ----------
    spec : str or dict or DelayModel
        A simple model name — ``"constant"``, ``"uniform"``,
        ``"exponential"``, ``"pareto"`` (default parameters, shared
        ``seed``) — or a registry config dict such as
        ``{"kind": "heterogeneous", "models": [...]}`` /
        ``{"kind": "trace", "trace": {...}}`` (every registered delay
        kind resolves, parameters included), or any object with a
        ``sample`` method.
    seed : int or Generator, optional
        Seed forwarded to stochastic built-ins resolved by simple name.
        Config dicts carry their own ``seed`` key and ignore this.

    Returns
    -------
    DelayModel
    """
    if isinstance(spec, dict):
        from repro.xp.factories import build_delay_model

        return build_delay_model(spec)
    if isinstance(spec, str):
        cls = _DELAY_MODELS.get(spec)
        if cls is not None:
            if cls is ConstantDelay:
                return cls()
            return cls(seed=seed)
        # route every other name through the component registry, so
        # names like "heterogeneous" / "trace" either build (when their
        # defaults suffice) or fail with that kind's own message
        from repro.xp.factories import build_delay_model

        try:
            return build_delay_model({"kind": spec})
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cannot build delay model from the name {spec!r} alone: "
                f"{exc}; parameterized models take a config dict, e.g. "
                f"{{'kind': 'heterogeneous', 'models': [...]}}") from None
    if hasattr(spec, "sample"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a delay model")
