"""Event-driven cluster simulation: delays, faults, checkpoint/restore.

The production-shaped layer above :mod:`repro.sim`'s sharded parameter
server: :class:`ClusterRuntime` schedules N simulated workers through a
deterministic priority event queue, with pluggable delay models
(:mod:`~repro.cluster.delays` — constant through heavy-tail Pareto and
recorded-trace replay), seeded fault injection
(:mod:`~repro.cluster.faults` — crashes, stragglers, server pauses),
and bit-for-bit checkpoint/restore
(:mod:`~repro.cluster.checkpoint`).  With the constant delay model the
runtime reproduces the paper's Section 5.2 round-robin protocol — and
therefore :func:`repro.sim.train_async`'s historical trajectories —
exactly; every other model generalizes the staleness process beyond
what a single delay knob can express.
"""

from repro.cluster.events import Event, EventQueue
from repro.cluster.delays import (ConstantDelay, DelayModel,
                                  ExponentialDelay, HeterogeneousDelay,
                                  ParetoDelay, TraceReplayDelay,
                                  UniformDelay, WorkerClassDelay,
                                  make_delay_model)
from repro.cluster.faults import (FaultInjector, ShardPause, Straggler,
                                  WorkerCrash)
from repro.cluster.runtime import ClusterRuntime, ClusterWorker
from repro.cluster.checkpoint import (checkpoint_cluster,
                                      load_cluster_checkpoint,
                                      restore_cluster,
                                      save_cluster_checkpoint)

__all__ = [
    "Event", "EventQueue",
    "DelayModel", "ConstantDelay", "UniformDelay", "ExponentialDelay",
    "ParetoDelay", "HeterogeneousDelay", "TraceReplayDelay",
    "WorkerClassDelay", "make_delay_model",
    "FaultInjector", "WorkerCrash", "Straggler", "ShardPause",
    "ClusterRuntime", "ClusterWorker",
    "checkpoint_cluster", "restore_cluster",
    "save_cluster_checkpoint", "load_cluster_checkpoint",
]
