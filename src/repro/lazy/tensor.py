""":class:`LazyTensor`: the graph-recording face of ``repro.autograd``.

A ``LazyTensor`` subclasses :class:`~repro.autograd.tensor.Tensor` but
holds no array — only a :class:`~repro.lazy.graph.LazyOp` node and the
:class:`~repro.lazy.runtime.LazyRuntime` that will realize it.  Every
tensor op is overridden to record a node with shape/dtype inferred up
front; reading ``.data`` (directly or through inherited methods like
``item()``/comparisons) realizes the graph, which is also the
transparent fallback for anything the lazy engine does not model:
unsupported indexing, the norm layers' custom closures, third-party
code reaching for the array.

``backward()`` records the backward pass as graph nodes too (an exact
replay of the eager algorithm — see :func:`repro.lazy.graph.
backward_graph`), realizes the loss and every leaf gradient in one
batch, then delivers each gradient into its eager tensor: leaves get
``.grad`` accumulated, interior eager tensors continue their own tape.
Eager tapes that *consume* a lazy tensor work in the other direction
through the ``_store_grad`` seam.

The module installs the construction factory and functional-op hooks
into :mod:`repro.autograd.tensor` at import time; they stay inert
until a runtime is activated (:func:`repro.lazy.runtime.lazy_mode`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import (Tensor, _GRAD_ENABLED, _as_array,
                                   _install_lazy)
from repro.autograd.functional import _im2col_indices
from repro.lazy.graph import LazyOp, backward_graph, constant, record
from repro.lazy.graph import _reduced_shape
from repro.lazy.runtime import LazyRuntime, active_runtime


# ------------------------------------------------------------------- #
# shape inference helpers (record-time, no data)
# ------------------------------------------------------------------- #
def _reshape_shape(old: Tuple[int, ...], new) -> Tuple[int, ...]:
    """Resolve a reshape target (one ``-1`` allowed) against ``old``."""
    total = 1
    for s in old:
        total *= s
    out = [int(s) for s in new]
    unknown = [i for i, s in enumerate(out) if s == -1]
    if len(unknown) > 1:
        raise ValueError("can only specify one unknown dimension")
    if unknown:
        known = 1
        for s in out:
            if s != -1:
                known *= s
        if known == 0 or total % known:
            raise ValueError(
                f"cannot reshape array of size {total} into shape "
                f"{tuple(new)}")
        out[unknown[0]] = total // known
    else:
        prod = 1
        for s in out:
            prod *= s
        if prod != total:
            raise ValueError(
                f"cannot reshape array of size {total} into shape "
                f"{tuple(new)}")
    return tuple(out)


def _matmul_shape(a: Tuple[int, ...], b: Tuple[int, ...]
                  ) -> Tuple[int, ...]:
    """Output shape of ``a @ b`` under NumPy matmul rules."""
    if not a or not b:
        raise ValueError("matmul: operands must be at least 1-D")
    a2 = (1,) + a if len(a) == 1 else a
    b2 = b + (1,) if len(b) == 1 else b
    if a2[-1] != b2[-2]:
        raise ValueError(
            f"matmul: shape mismatch {a} @ {b} "
            f"({a2[-1]} vs {b2[-2]})")
    batch = np.broadcast_shapes(a2[:-2], b2[:-2])
    core = []
    if len(a) > 1:
        core.append(a2[-2])
    if len(b) > 1:
        core.append(b2[-1])
    return tuple(batch) + tuple(core)


def _normalize_index(index):
    """Convert list index components to arrays (value-preserving)."""
    if isinstance(index, list):
        return np.asarray(index)
    if isinstance(index, tuple):
        return tuple(np.asarray(p) if isinstance(p, list) else p
                     for p in index)
    return index


def _index_shape(shape: Tuple[int, ...], index) -> Optional[Tuple[int, ...]]:
    """Result shape of ``x[index]`` without data, or None when the
    shape is value-dependent (boolean masks) and needs eager fallback."""
    parts = index if isinstance(index, tuple) else (index,)
    arrays = [p for p in parts if isinstance(p, np.ndarray)]
    if any(a.dtype.kind == "b" for a in arrays):
        return None
    if not arrays:
        # basic indexing: index a zero-stride dummy (a view; no copy)
        dummy = np.broadcast_to(np.zeros((), dtype=np.float64), shape)
        return dummy[index].shape
    if all(isinstance(p, (int, np.integer, np.ndarray)) for p in parts):
        # pure advanced indexing: broadcast shape + untouched dims
        adv = np.broadcast_shapes(*[np.shape(p) for p in parts])
        return tuple(adv) + tuple(shape[len(parts):])
    # mixed advanced/basic: rare — pay one dummy-indexing copy
    dummy = np.broadcast_to(np.zeros((), dtype=np.float64), shape)
    return dummy[index].shape


def _node_of(rt: LazyRuntime, value) -> LazyOp:
    """The graph node for any operand (lazy, eager tensor, or raw)."""
    if isinstance(value, Tensor):
        if value._lazy:
            return value._node
        return rt.leaf_of(value)
    return rt.leaf_of(Tensor._new_eager(value))


def _record(rt: LazyRuntime, kind: str, parents, attrs,
            shape) -> "LazyTensor":
    """Record one forward node and wrap it as a LazyTensor."""
    node = record(kind, parents, attrs, shape)
    rt.stats.nodes_recorded += 1
    return LazyTensor._wrap(node, rt)


class LazyTensor(Tensor):
    """A tensor whose value is a recorded graph node, not an array.

    Never constructed directly: ``Tensor(...)`` inside an active
    :func:`~repro.lazy.runtime.lazy_mode` block produces one, and
    every overridden op returns one.  Reading :attr:`data` realizes.
    """

    __slots__ = ("_node", "_rt")
    _lazy = True

    def __init__(self, data=None, requires_grad: bool = False,
                 name: str = ""):
        """No-op for factory-built instances (state is preset)."""
        if getattr(self, "_node", None) is not None:
            return
        raise TypeError(
            "LazyTensor cannot be constructed directly; create tensors "
            "with Tensor(...) inside lazy_mode()")

    @classmethod
    def _wrap(cls, node: LazyOp, rt: LazyRuntime) -> "LazyTensor":
        """Wrap a graph node; marks its value as retained (the wrapper
        — or a backward pass through it — may read the buffer later)."""
        out = object.__new__(cls)
        out._node = node
        out._rt = rt
        out.requires_grad = node.requires_grad
        out.grad = None
        out._backward_fns = []
        out._parents = []
        out.name = ""
        node.retained = True
        return out

    # -------------------------------------------------------------- #
    # metadata (no realization)
    # -------------------------------------------------------------- #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Record-time shape of the deferred value."""
        return self._node.shape

    @property
    def ndim(self) -> int:
        """Record-time rank of the deferred value."""
        return len(self._node.shape)

    @property
    def size(self) -> int:
        """Record-time element count of the deferred value."""
        return self._node.size

    @property
    def dtype(self):
        """Record-time dtype of the deferred value."""
        return self._node.dtype

    # -------------------------------------------------------------- #
    # realization
    # -------------------------------------------------------------- #
    @property
    def data(self) -> np.ndarray:
        """The realized value; triggers graph execution on first read.

        This property is also the transparent eager-fallback seam:
        any op the lazy engine does not record simply reads ``.data``
        and proceeds eagerly on the realized array.
        """
        node = self._node
        if node.buffer is None:
            self._rt.realize([node])
        return node.buffer

    @data.setter
    def data(self, value):
        raise AttributeError(
            "cannot assign .data on a LazyTensor; its value is defined "
            "by the recorded graph (realize and copy instead)")

    def realize(self) -> "LazyTensor":
        """Force execution of this tensor's graph; returns self."""
        if self._node.buffer is None:
            self._rt.realize([self._node])
        return self

    def detach(self) -> "LazyTensor":
        """A lazy alias of this value, cut from the gradient graph."""
        node = LazyOp("alias", (self._node,), (), self._node.shape,
                      self._node.dtype, requires_grad=False)
        self._rt.stats.nodes_recorded += 1
        return LazyTensor._wrap(node, self._rt)

    def _eager_view(self) -> Tensor:
        """An eager tensor over the realized value, wired so gradients
        flow back into the lazy graph (generic op fallback bridge)."""
        return Tensor._make(self.data, [(self, lambda g: g)])

    # -------------------------------------------------------------- #
    # backward: record, realize in one batch, deliver
    # -------------------------------------------------------------- #
    def backward(self, grad=None) -> None:
        """Accumulate gradients into every reachable leaf tensor.

        Records the backward sweep as graph nodes (exact eager-
        algorithm replay), realizes the value and all boundary
        gradients in one batched graph execution, then delivers each
        gradient: lazy-native leaves accumulate ``.grad`` directly,
        eager tensors continue through ``Tensor.backward`` (covering
        both plain leaves and interior tapes reaching into eager
        subgraphs such as the norm layers).
        """
        node = self._node
        if not node.requires_grad:
            raise RuntimeError(
                "backward() on a tensor that does not require grad")
        if grad is None:
            if node.size != 1:
                raise RuntimeError(
                    "grad must be supplied for non-scalar outputs")
            seed = np.ones(node.shape, dtype=np.float64)
        else:
            seed = np.asarray(grad, dtype=np.float64)
            if seed.shape != node.shape:
                raise ValueError(
                    f"grad shape {seed.shape} != tensor shape "
                    f"{node.shape}")
        boundary = backward_graph(node, constant(seed))
        self._rt.realize([node] + [g for _, g in boundary])
        for src, grad_node in boundary:
            target = src.source
            if target is None:
                continue  # constant leaf; nothing to deliver into
            g = grad_node.buffer
            if getattr(target, "_lazy", False):
                target.grad = (g if target.grad is None
                               else target.grad + g)
            else:
                target.backward(g)

    def _store_grad(self, g: np.ndarray) -> None:
        """Receive a gradient from an *eager* tape that consumed this
        lazy tensor (the mixed-mode seam): route it into the graph."""
        node = self._node
        if node.kind == "source":
            self.grad = g if self.grad is None else self.grad + g
        else:
            self.backward(g)

    # -------------------------------------------------------------- #
    # arithmetic (each records the eager op's exact structure)
    # -------------------------------------------------------------- #
    def _binary(self, kind: str, other) -> "LazyTensor":
        rt = self._rt
        other_node = _node_of(rt, other)
        shape = np.broadcast_shapes(self._node.shape, other_node.shape)
        return _record(rt, kind, (self._node, other_node), (), shape)

    def __add__(self, other):
        """Record ``self + other``."""
        return self._binary("add", other)

    # eager aliases __radd__ to __add__ (addition commutes bitwise);
    # mirroring that keeps operand order — and bits — identical
    __radd__ = __add__

    def __neg__(self):
        """Record ``-self``."""
        return _record(self._rt, "neg", (self._node,), (),
                       self._node.shape)

    def __sub__(self, other):
        """Record ``self - other`` as ``self + (-other)`` (eager's
        own decomposition, so the graphs are isomorphic)."""
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        """Record ``other - self``."""
        rt = self._rt
        neg = -self
        other_node = _node_of(rt, self._coerce(other))
        shape = np.broadcast_shapes(neg._node.shape, other_node.shape)
        return _record(rt, "add", (neg._node, other_node), (), shape)

    def __mul__(self, other):
        """Record ``self * other``."""
        return self._binary("mul", other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        """Record ``self / other``."""
        return self._binary("div", other)

    def __rtruediv__(self, other):
        """Record ``other / self``."""
        rt = self._rt
        other_node = _node_of(rt, self._coerce(other))
        shape = np.broadcast_shapes(other_node.shape, self._node.shape)
        return _record(rt, "div", (other_node, self._node), (), shape)

    def __pow__(self, exponent):
        """Record ``self ** exponent`` (scalar exponents only)."""
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return _record(self._rt, "pow", (self._node,), (exponent,),
                       self._node.shape)

    def __matmul__(self, other):
        """Record ``self @ other``."""
        rt = self._rt
        other_node = _node_of(rt, other)
        shape = _matmul_shape(self._node.shape, other_node.shape)
        return _record(rt, "matmul", (self._node, other_node), (), shape)

    def __rmatmul__(self, other):
        """Record ``other @ self``."""
        rt = self._rt
        other_node = _node_of(rt, self._coerce(other))
        shape = _matmul_shape(other_node.shape, self._node.shape)
        return _record(rt, "matmul", (other_node, self._node), (), shape)

    # -------------------------------------------------------------- #
    # shape ops
    # -------------------------------------------------------------- #
    def reshape(self, *shape):
        """Record a reshape (accepts varargs or a single tuple)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        resolved = _reshape_shape(self._node.shape, shape)
        return _record(self._rt, "reshape", (self._node,), (resolved,),
                       resolved)

    def transpose(self, *axes):
        """Record a transpose (accepts varargs or a single tuple)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes_t = tuple(axes) if axes else None
        if axes_t is None:
            shape = self._node.shape[::-1]
        else:
            shape = tuple(self._node.shape[a] for a in axes_t)
        return _record(self._rt, "transpose", (self._node,), (axes_t,),
                       shape)

    def __getitem__(self, index):
        """Record an indexing op; boolean masks (value-dependent
        shapes) realize and fall back to the eager op."""
        index = _normalize_index(index)
        shape = _index_shape(self._node.shape, index)
        if shape is None:
            return self._eager_view()[index]
        return _record(self._rt, "getitem", (self._node,), (index,),
                       shape)

    # -------------------------------------------------------------- #
    # reductions & elementwise math
    # -------------------------------------------------------------- #
    def sum(self, axis=None, keepdims: bool = False):
        """Record a sum reduction."""
        shape = _reduced_shape(self._node.shape, axis, keepdims)
        return _record(self._rt, "sum", (self._node,), (axis, keepdims),
                       shape)

    def max(self, axis=None, keepdims: bool = False):
        """Record a max reduction (ties share gradient, as eager)."""
        shape = _reduced_shape(self._node.shape, axis, keepdims)
        return _record(self._rt, "max", (self._node,), (axis, keepdims),
                       shape)

    def _unary(self, kind: str, attrs=()) -> "LazyTensor":
        return _record(self._rt, kind, (self._node,), attrs,
                       self._node.shape)

    def exp(self):
        """Record elementwise ``exp``."""
        return self._unary("exp")

    def log(self):
        """Record elementwise ``log``."""
        return self._unary("log")

    def sqrt(self):
        """Record elementwise ``sqrt``."""
        return self._unary("sqrt")

    def tanh(self):
        """Record elementwise ``tanh``."""
        return self._unary("tanh")

    def sigmoid(self):
        """Record elementwise logistic sigmoid."""
        return self._unary("sigmoid")

    def relu(self):
        """Record elementwise ``relu``."""
        return self._unary("relu")

    def abs(self):
        """Record elementwise absolute value."""
        return self._unary("abs")

    def clip(self, lo: float, hi: float):
        """Record elementwise clipping to ``[lo, hi]``."""
        return self._unary("clip", (lo, hi))

    def __repr__(self) -> str:
        status = ("realized" if self._node.buffer is not None
                  else "deferred")
        flag = ", requires_grad=True" if self.requires_grad else ""
        return (f"LazyTensor(shape={self._node.shape}, {status}, "
                f"kind={self._node.kind!r}{flag})")


# ------------------------------------------------------------------- #
# construction factory + functional hooks (installed into autograd)
# ------------------------------------------------------------------- #
def _tensor_factory(data, requires_grad, name):
    """``Tensor(...)`` interceptor: lazy leaf inside an active context.

    Returns None — meaning "construct eagerly" — when no runtime is
    active, or for integer/bool payloads (indices and targets stay
    eager; lazy graphs are float64 like the eager tape)."""
    rt = active_runtime()
    if rt is None or data is None or isinstance(data, Tensor):
        return None
    arr = _as_array(data)
    if arr.dtype.kind != "f":
        return None
    node = LazyOp("source", shape=arr.shape,
                  requires_grad=bool(requires_grad) and _GRAD_ENABLED.get())
    node.buffer = arr
    rt.stats.nodes_recorded += 1
    wrapper = LazyTensor._wrap(node, rt)
    node.source = wrapper
    wrapper.requires_grad = node.requires_grad
    wrapper.name = name
    return wrapper


def _hook_rt(*values) -> Optional[LazyRuntime]:
    """The runtime a functional op should record into, if any."""
    rt = active_runtime()
    if rt is not None:
        return rt
    for value in values:
        if isinstance(value, Tensor) and value._lazy:
            return value._rt
    return None


def _hook_log_softmax(x, axis):
    rt = _hook_rt(x)
    if rt is None:
        return None
    return _record(rt, "log_softmax", (_node_of(rt, x),), (axis,),
                   x.shape)


def _hook_leaky_relu(x, negative_slope):
    rt = _hook_rt(x)
    if rt is None:
        return None
    return _record(rt, "leaky_relu", (_node_of(rt, x),),
                   (negative_slope,), x.shape)


def _hook_softplus(x):
    rt = _hook_rt(x)
    if rt is None:
        return None
    return _record(rt, "softplus", (_node_of(rt, x),), (), x.shape)


def _hook_gelu(x):
    rt = _hook_rt(x)
    if rt is None:
        return None
    return _record(rt, "gelu", (_node_of(rt, x),), (), x.shape)


def _hook_pad2d(x, padding):
    rt = _hook_rt(x)
    if rt is None:
        return None
    n, c, h, w = x.shape
    return _record(rt, "pad2d", (_node_of(rt, x),), (padding,),
                   (n, c, h + 2 * padding, w + 2 * padding))


def _hook_conv2d(x, weight, bias, stride, padding):
    rt = _hook_rt(x, weight, bias)
    if rt is None:
        return None
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    k, i, j, oh, ow = _im2col_indices(x.shape, kh, kw, stride, padding)
    xn = _node_of(rt, x)
    if padding:
        xp = record("pad2d", (xn,), (padding,),
                    (n, c_in, h + 2 * padding, w + 2 * padding))
    else:
        xp = xn
    cols = record("im2col", (xp,), ((k, i, j),),
                  (n, c_in * kh * kw, oh * ow))
    cols.retained = True  # conv's weight-gradient kernel re-reads it
    wn = _node_of(rt, weight)
    w_mat = record("reshape", (wn,), ((c_out, c_in * kh * kw),),
                   (c_out, c_in * kh * kw))
    out = record("conv_mm", (w_mat, cols), (n, c_out, oh, ow),
                 (n, c_out, oh, ow))
    rt.stats.nodes_recorded += 4 if padding else 3
    if bias is not None:
        bn = _node_of(rt, bias)
        br = record("reshape", (bn,), ((1, c_out, 1, 1),),
                    (1, c_out, 1, 1))
        out = record("add", (out, br), (), (n, c_out, oh, ow))
        rt.stats.nodes_recorded += 2
    return LazyTensor._wrap(out, rt)


def _hook_avg_pool2d(x, kernel):
    rt = _hook_rt(x)
    if rt is None:
        return None
    n, c, h, w = x.shape
    return _record(rt, "avg_pool", (_node_of(rt, x),), (kernel,),
                   (n, c, h // kernel, w // kernel))


def _hook_max_pool2d(x, kernel):
    rt = _hook_rt(x)
    if rt is None:
        return None
    n, c, h, w = x.shape
    return _record(rt, "max_pool", (_node_of(rt, x),), (kernel,),
                   (n, c, h // kernel, w // kernel))


def _hook_embedding(weight, indices):
    rt = _hook_rt(weight)
    if rt is None:
        return None
    shape = tuple(indices.shape) + (weight.shape[1],)
    return _record(rt, "getitem", (_node_of(rt, weight),), (indices,),
                   shape)


def _hook_concatenate(tensors, axis):
    rt = _hook_rt(*tensors)
    if rt is None:
        return None
    nodes = [_node_of(rt, t) for t in tensors]
    shape = list(nodes[0].shape)
    shape[axis] = sum(node.shape[axis] for node in nodes)
    return _record(rt, "concat", nodes, (axis,), tuple(shape))


def _hook_stack(tensors, axis):
    rt = _hook_rt(*tensors)
    if rt is None:
        return None
    nodes = [_node_of(rt, t) for t in tensors]
    base = list(nodes[0].shape)
    ax = axis % (len(base) + 1)
    shape = tuple(base[:ax] + [len(nodes)] + base[ax:])
    return _record(rt, "stack", nodes, (axis,), shape)


def _hook_linear(x, weight, bias):
    rt = _hook_rt(x, weight, bias)
    if rt is None:
        return None
    # mirror eager `x @ weight.T + bias`, but transpose the *shared*
    # weight leaf in-graph: per-call eager `.T` views would each
    # become separate gradient boundaries and perturb accumulation
    # order (and therefore float bits) for multi-timestep models
    xn = _node_of(rt, x)
    wn = _node_of(rt, weight)
    memo_key = ("transpose", id(wn), None)
    wt = rt._derived.get(memo_key)
    if wt is None:
        # one shared node per weight: the T timestep gradients then
        # accumulate here (dense, poolable buffers) and transpose once,
        # instead of each timestep pinning its 8 MB contribution behind
        # a per-call transpose view
        wt = record("transpose", (wn,), (None,), wn.shape[::-1])
        rt._derived[memo_key] = wt
        rt.stats.nodes_recorded += 1
    out_shape = _matmul_shape(xn.shape, wt.shape)
    mm = record("matmul", (xn, wt), (), out_shape)
    rt.stats.nodes_recorded += 1
    out = LazyTensor._wrap(mm, rt)
    if bias is not None:
        out = out + bias
    return out


_install_lazy(_tensor_factory, {
    "log_softmax": _hook_log_softmax,
    "leaky_relu": _hook_leaky_relu,
    "softplus": _hook_softplus,
    "gelu": _hook_gelu,
    "pad2d": _hook_pad2d,
    "conv2d": _hook_conv2d,
    "avg_pool2d": _hook_avg_pool2d,
    "max_pool2d": _hook_max_pool2d,
    "embedding": _hook_embedding,
    "concatenate": _hook_concatenate,
    "stack": _hook_stack,
    "linear": _hook_linear,
})

__all__ = ["LazyTensor"]
