"""The pluggable ``Device`` layer: kernels that realize lazy graphs.

A device is a table of kernels, one per :class:`~repro.lazy.graph.
LazyOp` kind.  The baseline :class:`NumpyDevice` evaluates, for every
kind, the *same NumPy expression* the eager op in
:mod:`repro.autograd.tensor` / :mod:`repro.autograd.functional` (or its
backward closure) evaluates — this is what makes lazy realization
bit-identical to eager float64 execution rather than merely close.

Devices are registered under the ``"device"`` registry kind so
alternative execution providers (numba, GPU bridges) can plug in the
way ``vec_optimizer`` twins do.  A ``"numba"`` entry is pre-registered
as a gated stub: building it raises a clear error unless numba is
importable, keeping the registry honest about what this container can
actually run.

Kernel calling convention: ``kernel(attrs, inputs, out)`` where
``attrs`` is the node's static attribute tuple, ``inputs`` the realized
parent arrays, and ``out`` an optional pre-allocated float64 buffer of
the node's shape (from the realization buffer pool).  Kernels in
:data:`SUPPORTS_OUT` write their final elementwise step into ``out``;
kinds in :data:`INPLACE_SAFE` additionally tolerate ``out`` aliasing an
input buffer (every read of the aliased input happens element-wise in
the same final ufunc call, or strictly before it).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.autograd.tensor import unbroadcast
from repro.registry import registry

_KERNELS: Dict[str, Callable] = {}


def _kernel(kind):
    def deco(fn):
        _KERNELS[kind] = fn
        return fn
    return deco


# ------------------------------------------------------------------- #
# elementwise arithmetic (forward)
# ------------------------------------------------------------------- #
@_kernel("add")
def _k_add(attrs, inputs, out):
    a, b = inputs
    return np.add(a, b, out=out) if out is not None else a + b


@_kernel("mul")
def _k_mul(attrs, inputs, out):
    a, b = inputs
    return np.multiply(a, b, out=out) if out is not None else a * b


@_kernel("div")
def _k_div(attrs, inputs, out):
    a, b = inputs
    return np.true_divide(a, b, out=out) if out is not None else a / b


@_kernel("neg")
def _k_neg(attrs, inputs, out):
    return np.negative(inputs[0], out=out)


@_kernel("pow")
def _k_pow(attrs, inputs, out):
    # eager: self.data ** exponent (ndarray.__pow__ is the same ufunc)
    return np.power(inputs[0], attrs[0], out=out)


@_kernel("exp")
def _k_exp(attrs, inputs, out):
    return np.exp(inputs[0], out=out)


@_kernel("log")
def _k_log(attrs, inputs, out):
    return np.log(inputs[0], out=out)


@_kernel("sqrt")
def _k_sqrt(attrs, inputs, out):
    return np.sqrt(inputs[0], out=out)


@_kernel("tanh")
def _k_tanh(attrs, inputs, out):
    return np.tanh(inputs[0], out=out)


@_kernel("abs")
def _k_abs(attrs, inputs, out):
    return np.abs(inputs[0], out=out)


@_kernel("sigmoid")
def _k_sigmoid(attrs, inputs, out):
    # eager: 1.0 / (1.0 + np.exp(-x)); the chain below evaluates the
    # identical steps, writing every intermediate into `out`
    x = inputs[0]
    if out is None:
        return 1.0 / (1.0 + np.exp(-x))
    np.negative(x, out=out)
    np.exp(out, out=out)
    np.add(1.0, out, out=out)
    np.true_divide(1.0, out, out=out)
    return out


@_kernel("relu")
def _k_relu(attrs, inputs, out):
    x = inputs[0]
    # np.where has no out=; keep the eager expression verbatim (it is
    # the +0.0-preserving form — x * mask would produce -0.0)
    return np.where(x > 0, x, 0.0)


@_kernel("clip")
def _k_clip(attrs, inputs, out):
    lo, hi = attrs
    return np.clip(inputs[0], lo, hi, out=out)


@_kernel("leaky_relu")
def _k_leaky_relu(attrs, inputs, out):
    x = inputs[0]
    scale = np.where(x > 0, 1.0, attrs[0])
    return np.multiply(x, scale, out=out)


@_kernel("softplus")
def _k_softplus(attrs, inputs, out):
    return np.logaddexp(0.0, inputs[0], out=out)


@_kernel("gelu")
def _k_gelu(attrs, inputs, out):
    x = inputs[0]
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    half_x = 0.5 * x
    return np.multiply(half_x, 1.0 + t, out=out)


# ------------------------------------------------------------------- #
# elementwise backward closures
# ------------------------------------------------------------------- #
@_kernel("tanh_bwd")
def _k_tanh_bwd(attrs, inputs, out):
    g, y = inputs
    return np.multiply(g, 1.0 - y ** 2, out=out)


@_kernel("sigmoid_bwd")
def _k_sigmoid_bwd(attrs, inputs, out):
    g, y = inputs
    return np.multiply(g * y, 1.0 - y, out=out)


@_kernel("sqrt_bwd")
def _k_sqrt_bwd(attrs, inputs, out):
    g, y = inputs
    return np.true_divide(g * 0.5, y, out=out)


@_kernel("pow_bwd")
def _k_pow_bwd(attrs, inputs, out):
    (exponent,) = attrs
    g, x = inputs
    return np.multiply(g * exponent, x ** (exponent - 1), out=out)


@_kernel("div_bwd_b")
def _k_div_bwd_b(attrs, inputs, out):
    g, a, b = inputs
    return np.true_divide(-g * a, b ** 2, out=out)


@_kernel("gtz_mask_mul")
def _k_gtz_mask_mul(attrs, inputs, out):
    g, x = inputs
    return np.multiply(g, x > 0, out=out)


@_kernel("sign_mul")
def _k_sign_mul(attrs, inputs, out):
    g, x = inputs
    return np.multiply(g, np.sign(x), out=out)


@_kernel("clip_mask_mul")
def _k_clip_mask_mul(attrs, inputs, out):
    lo, hi = attrs
    g, x = inputs
    return np.multiply(g, (x >= lo) & (x <= hi), out=out)


@_kernel("leaky_relu_bwd")
def _k_leaky_relu_bwd(attrs, inputs, out):
    g, x = inputs
    scale = np.where(x > 0, 1.0, attrs[0])
    return np.multiply(g, scale, out=out)


@_kernel("softplus_bwd")
def _k_softplus_bwd(attrs, inputs, out):
    g, x = inputs
    return np.multiply(g, 1.0 / (1.0 + np.exp(-x)), out=out)


@_kernel("gelu_bwd")
def _k_gelu_bwd(attrs, inputs, out):
    g, x = inputs
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    du = c * (1.0 + 3 * 0.044715 * x ** 2)
    grad_local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
    return np.multiply(g, grad_local, out=out)


# ------------------------------------------------------------------- #
# reductions and their backwards
# ------------------------------------------------------------------- #
@_kernel("sum")
def _k_sum(attrs, inputs, out):
    # never reduce into ``out``: np.sum blocks the pairwise summation
    # differently when given a destination, changing low-order bits
    axis, keepdims = attrs
    return inputs[0].sum(axis=axis, keepdims=keepdims)


@_kernel("sum_bwd")
def _k_sum_bwd(attrs, inputs, out):
    axis, keepdims, shape = attrs
    g = inputs[0]
    if axis is None:
        return (np.broadcast_to(g, shape).copy() if np.ndim(g)
                else np.full(shape, g))
    gg = g
    if not keepdims:
        gg = np.expand_dims(g, axis)
    return np.broadcast_to(gg, shape).copy()


@_kernel("max")
def _k_max(attrs, inputs, out):
    # like sum: reducing into ``out`` may pick a different traversal
    # (observable through signed zeros), so always reduce fresh
    axis, keepdims = attrs
    return inputs[0].max(axis=axis, keepdims=keepdims)


@_kernel("max_bwd")
def _k_max_bwd(attrs, inputs, out):
    axis, keepdims = attrs
    g, x, y = inputs
    expanded = y if (keepdims or axis is None) else np.expand_dims(y, axis)
    mask = (x == expanded)
    counts = mask.sum(axis=axis, keepdims=True)
    gg = g
    if axis is not None and not keepdims:
        gg = np.expand_dims(g, axis)
    return mask * gg / counts


# ------------------------------------------------------------------- #
# shape / indexing
# ------------------------------------------------------------------- #
@_kernel("reshape")
def _k_reshape(attrs, inputs, out):
    return inputs[0].reshape(attrs[0])


@_kernel("transpose")
def _k_transpose(attrs, inputs, out):
    return inputs[0].transpose(attrs[0])


@_kernel("alias")
def _k_alias(attrs, inputs, out):
    return inputs[0]


@_kernel("getitem")
def _k_getitem(attrs, inputs, out):
    return inputs[0][attrs[0]]


@_kernel("take")
def _k_take(attrs, inputs, out):
    i, axis = attrs
    return np.take(inputs[0], i, axis=axis)


def _has_distinct_component(index) -> bool:
    """Whether an advanced index provably selects each cell at most once.

    True when some 1-D integer component is strictly increasing — the
    shape ``cross_entropy`` and row-gather backward scatters take
    (``(arange(n), targets)``) — making ``out[index] += g`` equivalent
    to ``np.add.at`` without its per-element dispatch cost.
    """
    parts = index if isinstance(index, tuple) else (index,)
    for part in parts:
        if isinstance(part, np.ndarray) and part.dtype.kind in "iu" \
                and part.ndim == 1 and part.size > 1:
            if bool(np.all(part[1:] > part[:-1])):
                return True
    return False


def _is_basic_index(index) -> bool:
    """Whether ``index`` is pure basic indexing (ints/slices only)."""
    parts = index if isinstance(index, tuple) else (index,)
    return all(isinstance(p, (int, np.integer, slice, type(None),
                              type(Ellipsis))) for p in parts)


@_kernel("scatter_add")
def _k_scatter_add(attrs, inputs, out):
    # eager getitem backward: np.zeros(shape); np.add.at(out, index, g)
    index, shape = attrs
    g = inputs[0]
    buf = out if out is not None else np.zeros(shape, dtype=np.float64)
    if out is not None:
        buf.fill(0.0)
    if _is_basic_index(index) or _has_distinct_component(index):
        # each destination written at most once: += over zeros matches
        # np.add.at bit for bit (including -0.0 + 0.0 -> +0.0)
        buf[index] += g
        _k_scatter_add.fast_hits += 1
    else:
        np.add.at(buf, index, g)
    return buf


_k_scatter_add.fast_hits = 0


# ------------------------------------------------------------------- #
# linear algebra
# ------------------------------------------------------------------- #
@_kernel("matmul")
def _k_matmul(attrs, inputs, out):
    a, b = inputs
    if out is not None and a.ndim >= 2 and b.ndim >= 2:
        return np.matmul(a, b, out=out)
    return a @ b


@_kernel("matmul_da")
def _k_matmul_da(attrs, inputs, out):
    (a_shape,) = attrs
    g, b = inputs
    a_ndim = len(a_shape)
    if (out is not None and g.ndim == 2 and b.ndim == 2
            and a_shape == (g.shape[0], b.shape[0])):
        # plain 2-D case: dgemm writes the pooled buffer directly
        # (bitwise-identical to a fresh allocation)
        return np.matmul(g, np.swapaxes(b, -1, -2), out=out)
    if b.ndim == 1:
        ga = np.multiply.outer(g, b) if a_ndim > 1 else g * b
    else:
        ga = g @ np.swapaxes(b, -1, -2)
    a_size = int(np.prod(a_shape)) if a_shape else 1
    if ga.shape != a_shape and ga.size == a_size:
        ga = ga.reshape(a_shape)
    return unbroadcast(ga, a_shape)


@_kernel("matmul_db")
def _k_matmul_db(attrs, inputs, out):
    (b_shape,) = attrs
    g, a = inputs
    b_ndim = len(b_shape)
    if (out is not None and a.ndim == 2 and g.ndim == 2
            and b_shape == (a.shape[1], g.shape[1])):
        return np.matmul(np.swapaxes(a, -1, -2), g, out=out)
    if a.ndim == 1:
        gb = np.multiply.outer(a, g) if b_ndim > 1 else a * g
    else:
        gb = np.swapaxes(a, -1, -2) @ g
    b_size = int(np.prod(b_shape)) if b_shape else 1
    if gb.shape != b_shape and gb.size == b_size:
        gb = gb.reshape(b_shape)
    return unbroadcast(gb, b_shape)


# ------------------------------------------------------------------- #
# nn ops (softmax family, conv/pool/pad, joins)
# ------------------------------------------------------------------- #
@_kernel("log_softmax")
def _k_log_softmax(attrs, inputs, out):
    (axis,) = attrs
    x = inputs[0]
    shifted = x - x.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return np.subtract(shifted, logsumexp, out=out)


@_kernel("log_softmax_bwd")
def _k_log_softmax_bwd(attrs, inputs, out):
    (axis,) = attrs
    g, y = inputs
    softmax_data = np.exp(y)
    return np.subtract(g, softmax_data * g.sum(axis=axis, keepdims=True),
                       out=out)


@_kernel("pad2d")
def _k_pad2d(attrs, inputs, out):
    (p,) = attrs
    return np.pad(inputs[0], ((0, 0), (0, 0), (p, p), (p, p)))


@_kernel("concat")
def _k_concat(attrs, inputs, out):
    (axis,) = attrs
    return np.concatenate(list(inputs), axis=axis, out=out)


@_kernel("stack")
def _k_stack(attrs, inputs, out):
    (axis,) = attrs
    return np.stack(list(inputs), axis=axis, out=out)


@_kernel("im2col")
def _k_im2col(attrs, inputs, out):
    (kij,) = attrs
    k, i, j = kij
    return inputs[0][:, k, i, j]


@_kernel("col2im")
def _k_col2im(attrs, inputs, out):
    kij, padded_shape = attrs
    k, i, j = kij
    dcols = inputs[0]
    dx_padded = np.zeros(padded_shape, dtype=np.float64)
    np.add.at(dx_padded, (slice(None), k, i, j), dcols)
    return dx_padded


@_kernel("conv_mm")
def _k_conv_mm(attrs, inputs, out):
    n, c_out, oh, ow = attrs
    w_mat, cols = inputs
    res = np.einsum("of,nfl->nol", w_mat, cols)
    return res.reshape(n, c_out, oh, ow)


@_kernel("conv_dw")
def _k_conv_dw(attrs, inputs, out):
    n, c_out = attrs
    g, cols = inputs
    g_mat = g.reshape(n, c_out, -1)
    return np.einsum("nol,nfl->of", g_mat, cols)


@_kernel("conv_dcols")
def _k_conv_dcols(attrs, inputs, out):
    n, c_out = attrs
    w_mat, g = inputs
    g_mat = g.reshape(n, c_out, -1)
    return np.einsum("of,nol->nfl", w_mat, g_mat)


@_kernel("avg_pool")
def _k_avg_pool(attrs, inputs, out):
    (kernel,) = attrs
    x = inputs[0]
    n, c, h, w = x.shape
    oh, ow = h // kernel, w // kernel
    view = x.reshape(n, c, oh, kernel, ow, kernel)
    return view.mean(axis=(3, 5))


@_kernel("avg_pool_bwd")
def _k_avg_pool_bwd(attrs, inputs, out):
    kernel, x_shape = attrs
    g = inputs[0]
    n, c, h, w = x_shape
    oh, ow = h // kernel, w // kernel
    g_expanded = g[:, :, :, None, :, None] / (kernel * kernel)
    return np.broadcast_to(
        g_expanded, (n, c, oh, kernel, ow, kernel)).reshape(n, c, h, w)


@_kernel("max_pool")
def _k_max_pool(attrs, inputs, out):
    (kernel,) = attrs
    x = inputs[0]
    n, c, h, w = x.shape
    oh, ow = h // kernel, w // kernel
    view = x.reshape(n, c, oh, kernel, ow, kernel)
    return view.max(axis=(3, 5))


@_kernel("max_pool_bwd")
def _k_max_pool_bwd(attrs, inputs, out):
    kernel, x_shape = attrs
    g, x, y = inputs
    n, c, h, w = x_shape
    oh, ow = h // kernel, w // kernel
    view = x.reshape(n, c, oh, kernel, ow, kernel)
    mask = view == y[:, :, :, None, :, None]
    counts = mask.sum(axis=(3, 5), keepdims=True)
    spread = mask * (g[:, :, :, None, :, None] / counts)
    return spread.reshape(n, c, h, w)


#: Kinds whose kernel writes its final step into a caller buffer.
SUPPORTS_OUT = frozenset({
    "add", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "tanh",
    "abs", "sigmoid", "clip", "leaky_relu", "softplus", "gelu",
    "tanh_bwd", "sigmoid_bwd", "sqrt_bwd", "pow_bwd", "div_bwd_b",
    "gtz_mask_mul", "sign_mul", "clip_mask_mul", "leaky_relu_bwd",
    "softplus_bwd", "gelu_bwd", "matmul",
    "matmul_da", "matmul_db",
    "log_softmax", "log_softmax_bwd", "concat", "stack", "scatter_add",
})

#: SUPPORTS_OUT kinds that also tolerate ``out`` aliasing an input.
INPLACE_SAFE = frozenset({
    "add", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "tanh",
    "abs", "sigmoid", "clip", "leaky_relu", "softplus", "gelu",
    "tanh_bwd", "sigmoid_bwd", "sqrt_bwd", "pow_bwd", "div_bwd_b",
    "gtz_mask_mul", "sign_mul", "clip_mask_mul", "leaky_relu_bwd",
    "softplus_bwd", "gelu_bwd",
})

#: Elementwise kinds, eligible for fusion-chain grouping.
ELEMENTWISE = frozenset({
    "add", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "tanh",
    "abs", "sigmoid", "relu", "clip", "leaky_relu", "softplus", "gelu",
    "tanh_bwd", "sigmoid_bwd", "sqrt_bwd", "pow_bwd", "div_bwd_b",
    "gtz_mask_mul", "sign_mul", "clip_mask_mul", "leaky_relu_bwd",
    "softplus_bwd", "gelu_bwd",
})

#: Kinds whose result may be a view of an input (never pool-recycled).
MAY_ALIAS = frozenset({"reshape", "transpose", "alias", "getitem"})


class Device:
    """Abstract kernel host for lazy-graph realization.

    Subclasses provide a kernel per op kind; :meth:`run` dispatches one
    node, :meth:`run_chain` sweeps a fused elementwise chain as a
    single device call (one "kernel launch" in the realization stats).
    """

    #: Registry name of the device (overridden by subclasses).
    name = "abstract"

    def run(self, kind: str, attrs, inputs, out=None) -> np.ndarray:
        """Execute one op kind; must be overridden."""
        raise NotImplementedError

    def run_chain(self, steps) -> np.ndarray:
        """Execute a fused chain: ``steps`` is ``[(kind, attrs, inputs,
        out), ...]`` in data order; returns the last result."""
        result = None
        for kind, attrs, inputs, out in steps:
            result = self.run(kind, attrs, inputs, out)
        return result


class NumpyDevice(Device):
    """Reference device: every kernel is the eager op's exact NumPy
    expression, making realized values bit-identical to eager mode."""

    name = "numpy"

    def run(self, kind: str, attrs, inputs, out=None) -> np.ndarray:
        """Dispatch one node to its kernel."""
        kernel = _KERNELS.get(kind)
        if kernel is None:
            raise KeyError(f"device {self.name!r} has no kernel for "
                           f"op kind {kind!r}")
        return kernel(attrs, inputs, out)

    def kinds(self):
        """Sorted op kinds this device can execute."""
        return sorted(_KERNELS)


def _numba_device():
    """Factory for the (optional) numba-jitted device.

    The container this repo targets does not ship numba; the entry
    exists so the registry surface documents the extension point.  It
    raises with a clear message instead of importing at module load.
    """
    try:
        import numba  # noqa: F401
    except ImportError as exc:
        raise RuntimeError(
            "device 'numba' requires the numba package, which is not "
            "installed in this environment; use device 'numpy'"
        ) from exc
    raise RuntimeError(
        "device 'numba' is a registration stub: contribute jitted "
        "kernels by registering a Device subclass under "
        "registry kind 'device'")


registry.register(
    "device", "numpy", NumpyDevice,
    description="Baseline device: verbatim eager NumPy kernels "
                "(bit-identical to eager autograd).")
registry.register(
    "device", "numba", _numba_device,
    description="Gated stub for a numba-jitted device (raises unless "
                "numba is installed).")

__all__ = [
    "Device", "NumpyDevice", "SUPPORTS_OUT", "INPLACE_SAFE",
    "ELEMENTWISE", "MAY_ALIAS",
]
