"""repro.lazy — deferred-execution tensor graphs with fused realization.

The eager :mod:`repro.autograd` engine allocates a NumPy temporary per
op.  This package adds an opt-in *lazy* mode: inside
:func:`~repro.lazy.runtime.lazy_mode`, tensor ops record
:class:`~repro.lazy.graph.LazyOp` nodes (shape/dtype inferred up
front, nothing computed), and realization runs the whole graph through
a pipeline — CSE by structural hash, dead-node pruning, elementwise
chain fusion, and buffer reuse / in-place planning — before executing
on a pluggable :class:`~repro.lazy.devices.Device` (NumPy baseline;
the registry's ``"device"`` kind is the extension point for numba/GPU
providers).

Two contracts anchor the design:

- **bit-identity** — every kernel evaluates the eager op's exact NumPy
  expression and ``backward()`` replays the eager accumulation
  algorithm over graph nodes, so lazy float64 results (forward *and*
  gradients) equal eager results bit for bit;
- **transparent fallback** — reading ``.data`` realizes, so ops the
  engine does not model (boolean-mask indexing, the norm layers'
  custom closures) silently continue eagerly, with gradients bridged
  across the seam in both directions.

``repro.run`` backends opt in per spec (``ScenarioSpec(lazy=True)``),
recording ``lazy_engine: fused|fallback`` in the result environment.
"""

from repro.lazy.devices import Device, NumpyDevice
from repro.lazy.graph import LazyOp, backward_graph
from repro.lazy.realize import BufferPool, RealizeStats
from repro.lazy.runtime import LazyRuntime, active_runtime, lazy_mode
from repro.lazy.scheduler import Schedule, schedule
from repro.lazy.tensor import LazyTensor

__all__ = [
    "BufferPool",
    "Device",
    "LazyOp",
    "LazyRuntime",
    "LazyTensor",
    "NumpyDevice",
    "RealizeStats",
    "Schedule",
    "active_runtime",
    "backward_graph",
    "lazy_mode",
    "schedule",
]
