"""The deferred-execution op graph: :class:`LazyOp` nodes and VJP rules.

A :class:`LazyOp` is one recorded operation: an op ``kind``, parent
nodes, a tuple of static attributes (axes, slices, index arrays), and
the output ``shape``/``dtype`` inferred at record time — no values are
computed until :meth:`repro.lazy.runtime.LazyRuntime.realize` runs the
graph.  The node vocabulary deliberately mirrors the eager tape in
:mod:`repro.autograd.tensor` one-to-one: every kernel in
:mod:`repro.lazy.devices` evaluates the *same NumPy expression* the
eager op (or its backward closure) evaluates, and :func:`backward_graph`
replays the exact topological-sort/accumulation algorithm of
``Tensor.backward`` over nodes instead of closures.  Bit-identical
float64 results are therefore a structural property, not a tolerance.

Gradient rules live in the ``_VJPS`` table: ``vjp(node, grad_node)``
yields ``(parent_index, grad_node)`` contributions built from further
``LazyOp`` nodes, so an entire training step — forward and backward —
realizes as one optimized graph execution.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import _GRAD_ENABLED

_F64 = np.dtype(np.float64)


class LazyOp:
    """One deferred operation node (or a graph leaf).

    Attributes
    ----------
    kind : str
        Kernel name in the device kernel table; ``"source"`` marks a
        leaf whose value comes from an eager tensor or a constant
        array, read fresh at realization time.
    parents : tuple of LazyOp
        Input nodes, in the op's argument order.
    attrs : tuple
        Static (non-tensor) operands: axes, shapes, slices, index
        arrays, scalar constants.
    shape, dtype :
        Output metadata, inferred at record time.
    requires_grad : bool
        Mirror of the eager tape's wiring rule: grad recording was
        enabled and at least one parent requires grad.
    buffer : ndarray or None
        The realized value (filled in by the executor; leaves may
        carry their constant here).
    source :
        For ``"source"`` nodes: the eager :class:`~repro.autograd.
        tensor.Tensor` (or lazy leaf wrapper) whose ``data`` backs the
        leaf — gradient boundaries deliver into it.
    retained : bool
        True when the value must outlive the realize call that
        computes it (a wrapper or a later backward graph references
        it); retained buffers are never recycled into the pool.
    """

    __slots__ = ("kind", "parents", "attrs", "shape", "dtype",
                 "requires_grad", "buffer", "source", "retained")

    def __init__(self, kind: str, parents: Tuple["LazyOp", ...] = (),
                 attrs: Tuple = (), shape: Tuple[int, ...] = (),
                 dtype=_F64, requires_grad: bool = False):
        self.kind = kind
        self.parents = parents
        self.attrs = attrs
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.requires_grad = requires_grad
        self.buffer: Optional[np.ndarray] = None
        self.source = None
        self.retained = False

    @property
    def size(self) -> int:
        """Element count of the (future) output."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    def __repr__(self) -> str:
        return (f"LazyOp({self.kind!r}, shape={self.shape}, "
                f"nparents={len(self.parents)})")


def record(kind: str, parents: Sequence[LazyOp], attrs: Tuple,
           shape: Sequence[int], dtype=_F64) -> LazyOp:
    """Record a forward op node, mirroring the eager tape's grad rule.

    ``requires_grad`` is set exactly as ``Tensor._make`` would:
    recording enabled in this context *and* at least one parent
    requires grad.
    """
    rg = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
    return LazyOp(kind, tuple(parents), attrs, tuple(shape), dtype,
                  requires_grad=rg)


def _node(kind: str, parents: Sequence[LazyOp], attrs: Tuple,
          shape: Sequence[int]) -> LazyOp:
    """Build an internal (gradient-side) node: never itself on a tape."""
    return LazyOp(kind, tuple(parents), attrs, tuple(shape),
                  requires_grad=False)


def constant(value: np.ndarray) -> LazyOp:
    """A leaf node carrying a concrete array (coerced scalars, ones)."""
    arr = np.asarray(value, dtype=np.float64)
    node = LazyOp("source", shape=arr.shape)
    node.buffer = arr
    return node


# ------------------------------------------------------------------- #
# gradient-side node builders (exact eager-closure mirrors)
# ------------------------------------------------------------------- #
def _ew(kind: str, parents: Sequence[LazyOp], attrs: Tuple = ()) -> LazyOp:
    """Elementwise node with NumPy-broadcast output shape."""
    shape = np.broadcast_shapes(*[p.shape for p in parents])
    return _node(kind, parents, attrs, shape)


def _reduced_shape(shape: Tuple[int, ...], axis, keepdims: bool
                   ) -> Tuple[int, ...]:
    """Output shape of a ``sum``/``max`` reduction."""
    if axis is None:
        return (1,) * len(shape) if keepdims else ()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    if keepdims:
        return tuple(1 if i in axes else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in axes)


def unbroadcast_node(grad: LazyOp, shape: Tuple[int, ...]) -> LazyOp:
    """Node-level mirror of :func:`repro.autograd.tensor.unbroadcast`.

    Same three steps, same NumPy calls, so the realized value is
    bit-identical to what the eager closure computes.
    """
    if grad.shape == shape:
        return grad
    extra = len(grad.shape) - len(shape)
    if extra > 0:
        axis = tuple(range(extra))
        grad = _node("sum", (grad,), (axis, False),
                     _reduced_shape(grad.shape, axis, False))
    axes = tuple(i for i, s in enumerate(shape)
                 if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = _node("sum", (grad,), (axes, True),
                     _reduced_shape(grad.shape, axes, True))
    return _node("reshape", (grad,), (tuple(shape),), shape)


def _reshape_to(g: LazyOp, shape: Tuple[int, ...]) -> LazyOp:
    return _node("reshape", (g,), (tuple(shape),), shape)


# Each VJP takes (node, grad_node) and yields (parent_index, grad_node)
# pairs in the eager op's parent order.  Expressions mirror the eager
# backward closures line for line.
_VJPS = {}


def _vjp(kind):
    def deco(fn):
        _VJPS[kind] = fn
        return fn
    return deco


@_vjp("add")
def _vjp_add(node, g):
    a, b = node.parents
    yield 0, unbroadcast_node(g, a.shape)
    yield 1, unbroadcast_node(g, b.shape)


@_vjp("neg")
def _vjp_neg(node, g):
    yield 0, _ew("neg", (g,))


@_vjp("mul")
def _vjp_mul(node, g):
    a, b = node.parents
    yield 0, unbroadcast_node(_ew("mul", (g, b)), a.shape)
    yield 1, unbroadcast_node(_ew("mul", (g, a)), b.shape)


@_vjp("div")
def _vjp_div(node, g):
    a, b = node.parents
    yield 0, unbroadcast_node(_ew("div", (g, b)), a.shape)
    # eager closure: -g * self.data / other.data ** 2 (one kernel)
    yield 1, unbroadcast_node(_ew("div_bwd_b", (g, a, b)), b.shape)


@_vjp("pow")
def _vjp_pow(node, g):
    (exponent,) = node.attrs
    # eager closure: g * exponent * x ** (exponent - 1) (one kernel)
    yield 0, _ew("pow_bwd", (g, node.parents[0]), (exponent,))


@_vjp("exp")
def _vjp_exp(node, g):
    yield 0, _ew("mul", (g, node))


@_vjp("log")
def _vjp_log(node, g):
    yield 0, _ew("div", (g, node.parents[0]))


@_vjp("sqrt")
def _vjp_sqrt(node, g):
    yield 0, _ew("sqrt_bwd", (g, node))


@_vjp("tanh")
def _vjp_tanh(node, g):
    yield 0, _ew("tanh_bwd", (g, node))


@_vjp("sigmoid")
def _vjp_sigmoid(node, g):
    yield 0, _ew("sigmoid_bwd", (g, node))


@_vjp("relu")
def _vjp_relu(node, g):
    yield 0, _ew("gtz_mask_mul", (g, node.parents[0]))


@_vjp("abs")
def _vjp_abs(node, g):
    yield 0, _ew("sign_mul", (g, node.parents[0]))


@_vjp("clip")
def _vjp_clip(node, g):
    lo, hi = node.attrs
    yield 0, _ew("clip_mask_mul", (g, node.parents[0]), (lo, hi))


@_vjp("leaky_relu")
def _vjp_leaky_relu(node, g):
    (slope,) = node.attrs
    yield 0, _ew("leaky_relu_bwd", (g, node.parents[0]), (slope,))


@_vjp("softplus")
def _vjp_softplus(node, g):
    yield 0, _ew("softplus_bwd", (g, node.parents[0]))


@_vjp("gelu")
def _vjp_gelu(node, g):
    yield 0, _ew("gelu_bwd", (g, node.parents[0]))


@_vjp("sum")
def _vjp_sum(node, g):
    axis, keepdims = node.attrs
    x = node.parents[0]
    yield 0, _node("sum_bwd", (g,), (axis, keepdims, x.shape), x.shape)


@_vjp("max")
def _vjp_max(node, g):
    axis, keepdims = node.attrs
    x = node.parents[0]
    yield 0, _node("max_bwd", (g, x, node), (axis, keepdims), x.shape)


@_vjp("reshape")
def _vjp_reshape(node, g):
    x = node.parents[0]
    yield 0, _reshape_to(g, x.shape)


@_vjp("transpose")
def _vjp_transpose(node, g):
    (axes,) = node.attrs
    x = node.parents[0]
    inverse = None if axes is None else tuple(np.argsort(axes))
    yield 0, _node("transpose", (g,), (inverse,), x.shape)


@_vjp("getitem")
def _vjp_getitem(node, g):
    (index,) = node.attrs
    x = node.parents[0]
    yield 0, _node("scatter_add", (g,), (index, x.shape), x.shape)


@_vjp("log_softmax")
def _vjp_log_softmax(node, g):
    (axis,) = node.attrs
    yield 0, _node("log_softmax_bwd", (g, node), (axis,), node.shape)


@_vjp("concat")
def _vjp_concat(node, g):
    (axis,) = node.attrs
    offset = 0
    for i, p in enumerate(node.parents):
        lo, hi = offset, offset + p.shape[axis]
        offset = hi
        slicer = [slice(None)] * len(g.shape)
        slicer[axis] = slice(lo, hi)
        yield i, _node("getitem", (g,), (tuple(slicer),), p.shape)


@_vjp("stack")
def _vjp_stack(node, g):
    (axis,) = node.attrs
    for i, p in enumerate(node.parents):
        yield i, _node("take", (g,), (i, axis), p.shape)


@_vjp("matmul")
def _vjp_matmul(node, g):
    a, b = node.parents
    yield 0, _node("matmul_da", (g, b), (a.shape,), a.shape)
    yield 1, _node("matmul_db", (g, a), (b.shape,), b.shape)


@_vjp("pad2d")
def _vjp_pad2d(node, g):
    (p,) = node.attrs
    x = node.parents[0]
    slicer = (slice(None), slice(None), slice(p, -p), slice(p, -p))
    yield 0, _node("getitem", (g,), (slicer,), x.shape)


@_vjp("im2col")
def _vjp_im2col(node, g):
    (kij,) = node.attrs
    x_padded = node.parents[0]
    yield 0, _node("col2im", (g,), (kij, x_padded.shape), x_padded.shape)


@_vjp("conv_mm")
def _vjp_conv_mm(node, g):
    n, c_out, oh, ow = node.attrs
    w_mat, cols = node.parents
    yield 0, _node("conv_dw", (g, cols), (n, c_out), w_mat.shape)
    yield 1, _node("conv_dcols", (w_mat, g), (n, c_out), cols.shape)


@_vjp("avg_pool")
def _vjp_avg_pool(node, g):
    (kernel,) = node.attrs
    x = node.parents[0]
    yield 0, _node("avg_pool_bwd", (g,), (kernel, x.shape), x.shape)


@_vjp("max_pool")
def _vjp_max_pool(node, g):
    (kernel,) = node.attrs
    x = node.parents[0]
    yield 0, _node("max_pool_bwd", (g, x, node), (kernel, x.shape), x.shape)


@_vjp("alias")
def _vjp_alias(node, g):
    yield 0, g


def backward_graph(root: LazyOp, grad: LazyOp
                   ) -> List[Tuple[LazyOp, LazyOp]]:
    """Build the gradient graph for ``root``, seeded with ``grad``.

    An exact node-level replay of ``Tensor.backward``: the same
    iterative DFS (children in recorded parent order, restricted to
    grad-requiring parents), the same reversed processing, and the
    same pairwise ``grads[p] = grads[p] + contribution`` accumulation
    — so realized leaf gradients are bit-identical to the eager
    engine's, including float summation order.

    Returns
    -------
    list of (leaf_node, grad_node)
        Boundary pairs in processing order: each ``"source"`` leaf
        reached by the sweep, with the node computing its gradient.
        The caller realizes all grad nodes in one batch, then delivers
        each into its leaf's eager tensor.
    """
    topo: List[LazyOp] = []
    seen = {id(root)}
    stack: List[Tuple[LazyOp, Iterable[LazyOp]]] = [
        (root, iter([p for p in root.parents if p.requires_grad]))]
    while stack:
        cur, it = stack[-1]
        advanced = False
        for parent in it:
            if id(parent) not in seen:
                seen.add(id(parent))
                stack.append(
                    (parent,
                     iter([p for p in parent.parents if p.requires_grad])))
                advanced = True
                break
        if not advanced:
            topo.append(cur)
            stack.pop()

    grads = {id(root): grad}
    boundary: List[Tuple[LazyOp, LazyOp]] = []
    for node in reversed(topo):
        g = grads.pop(id(node), None)
        if g is None:
            continue
        if node.kind == "source":
            boundary.append((node, g))
            continue
        vjp = _VJPS.get(node.kind)
        if vjp is None:  # pragma: no cover - every recorded kind has one
            raise RuntimeError(f"no VJP for lazy op {node.kind!r}")
        for idx, contribution in vjp(node, g):
            parent = node.parents[idx]
            if not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = _ew("add", (grads[key], contribution))
            else:
                grads[key] = contribution
    return boundary
