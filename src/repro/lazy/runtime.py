"""The lazy execution context: device, buffer pool, stats, leaf map.

A :class:`LazyRuntime` owns everything one deferred-execution session
needs: the :class:`~repro.lazy.devices.Device` that runs kernels, the
cross-realization :class:`~repro.lazy.realize.BufferPool`, accumulated
:class:`~repro.lazy.realize.RealizeStats`, and the per-activation leaf
map that merges repeated consumptions of the same eager tensor into a
single graph source (which is what keeps gradient accumulation order
— and therefore float64 bits — identical to the eager engine).

Use :func:`lazy_mode` for the common case::

    with lazy_mode() as rt:
        loss = model(Tensor(batch)).sum()   # records, computes nothing
        loss.backward()                     # realizes one fused graph

Activation is scoped through a :mod:`contextvars` variable, so
concurrent threads (the serve pool) can run lazy and eager work side
by side without interfering.

Leaf values are read at realization time: mutating an eager tensor
between recording an op on it and realizing the graph is observed by
the realization.  The training-step flow (record forward, realize in
``backward()``, then let the optimizer mutate parameters) never does
this; it is only observable if a graph is deliberately kept unrealized
across an optimizer step.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, List, Optional, Tuple, Union

from repro.lazy.devices import Device
from repro.lazy.graph import LazyOp
from repro.lazy.realize import BufferPool, RealizeStats, run_graph
from repro.registry import registry

_ACTIVE: "contextvars.ContextVar[Optional[LazyRuntime]]" = \
    contextvars.ContextVar("repro_lazy_runtime", default=None)


def active_runtime() -> Optional["LazyRuntime"]:
    """The runtime recording in this context, or None (eager mode)."""
    return _ACTIVE.get()


class LazyRuntime:
    """One deferred-execution session: graph state plus an executor.

    Parameters
    ----------
    device : str or Device
        Registry name under kind ``"device"`` (default ``"numpy"``)
        or a ready :class:`~repro.lazy.devices.Device` instance.
    pool : BufferPool, optional
        Buffer pool to recycle temporaries through; a fresh bounded
        pool by default.
    """

    def __init__(self, device: Union[str, Device] = "numpy",
                 pool: Optional[BufferPool] = None):
        if isinstance(device, str):
            device = registry.build("device", device)
        self.device: Device = device
        self.pool = pool if pool is not None else BufferPool()
        self.stats = RealizeStats()
        self._leaves: Dict[int, Tuple[object, LazyOp]] = {}
        # record-time CSE for cheap derived-from-leaf nodes (e.g. the
        # ``weight.T`` every linear() call takes): keyed by
        # (kind, id(parent node), attrs), cleared with the leaf map
        self._derived: Dict[tuple, LazyOp] = {}

    @contextlib.contextmanager
    def active(self):
        """Activate this runtime for the dynamic extent of the block.

        Entering clears the leaf map, starting a fresh recording
        epoch: parameter mutations from a previous optimizer step are
        picked up because the next epoch creates new source nodes.
        """
        self._leaves.clear()
        self._derived.clear()
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def leaf_of(self, tensor) -> LazyOp:
        """The (memoized) graph source node for an eager tensor.

        Memoization per activation epoch means a parameter consumed by
        thirty timesteps is one graph leaf with thirty consumers, so
        its gradient accumulates inside the graph in the same order
        the eager engine's ``grads`` dict would.
        """
        key = id(tensor)
        hit = self._leaves.get(key)
        if hit is not None:
            return hit[1]
        node = LazyOp("source", shape=tensor.shape, dtype=tensor.dtype,
                      requires_grad=bool(tensor.requires_grad))
        node.source = tensor
        self._leaves[key] = (tensor, node)
        return node

    def realize(self, nodes: List[LazyOp]) -> None:
        """Execute the graph needed to materialize ``nodes``."""
        pending = [n for n in nodes if n.buffer is None]
        if not pending:
            return
        run_graph(self.device, self.pool, self.stats, pending)


@contextlib.contextmanager
def lazy_mode(device: Union[str, Device] = "numpy",
              runtime: Optional[LazyRuntime] = None):
    """Record ops lazily inside the block; yields the active runtime.

    Parameters
    ----------
    device : str or Device
        Device for a freshly created runtime (ignored when ``runtime``
        is passed).
    runtime : LazyRuntime, optional
        Re-enter an existing runtime (keeps its pool warm across
        steps, which is how training loops amortize allocations).
    """
    rt = runtime if runtime is not None else LazyRuntime(device=device)
    with rt.active():
        yield rt
