"""Graph scheduling: topo order, CSE, pruning, refcounts, fusion.

:func:`schedule` turns a set of requested root nodes into an execution
plan for :mod:`repro.lazy.realize`:

- **dead-node pruning** — only nodes reachable from the requested
  roots are planned; branches whose results were recorded but never
  demanded simply never execute;
- **common-subexpression elimination** — structurally identical nodes
  (same kind, same frozen attributes, same canonical parents) are
  merged, so e.g. two ``sigmoid(x * w)`` records realize one sweep;
- **consumer refcounts** — how many planned nodes read each value,
  which drives buffer release/reuse during execution;
- **fusion marking** — maximal chains of same-shape elementwise nodes
  with a single consumer are grouped; the chain realizes as one
  logical kernel launch sweeping a shared buffer.

Scheduling never computes values: it is pure graph analysis, cheap
enough to run per realization (a few microseconds per node).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.lazy.devices import ELEMENTWISE
from repro.lazy.graph import LazyOp


def _freeze(value):
    """Map an attribute value to a hashable CSE key component."""
    if isinstance(value, np.ndarray):
        return ("ndarray", id(value))
    if isinstance(value, slice):
        return ("slice", value.start, value.stop, value.step)
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(v) for v in value)
    return value


class Schedule:
    """An execution plan produced by :func:`schedule`.

    Attributes
    ----------
    topo : list of LazyOp
        Canonical nodes to execute, in dependency order.
    refcounts : dict
        ``id(node) -> consumer-edge count`` (roots get one extra pin).
    merged : list of (LazyOp, LazyOp)
        ``(duplicate, canonical)`` pairs eliminated by CSE; after
        execution the duplicate receives the canonical buffer.
    fused_into : dict
        ``id(node) -> consumer`` for nodes absorbed into their sole
        elementwise consumer's fused chain.
    cse_hits : int
        Number of duplicate nodes merged this schedule.
    launches : int
        Logical kernel launches (fused chains count once).
    root_ids : set
        ids of the canonical nodes backing the requested roots; their
        buffers are never recycled.
    """

    def __init__(self):
        self.topo: List[LazyOp] = []
        self.refcounts: Dict[int, int] = {}
        self.merged: List[Tuple[LazyOp, LazyOp]] = []
        self.fused_into: Dict[int, LazyOp] = {}
        self.cse_hits = 0
        self.launches = 0
        self.root_ids: set = set()


def schedule(roots: List[LazyOp]) -> Schedule:
    """Plan the realization of ``roots`` (see module docstring)."""
    plan = Schedule()
    memo: Dict[tuple, LazyOp] = {}
    canon: Dict[int, LazyOp] = {}
    seen = set()
    stack: List[Tuple[LazyOp, bool]] = [(r, False) for r in roots]

    while stack:
        node, processed = stack.pop()
        if processed:
            if node.buffer is not None or node.kind == "source":
                canon[id(node)] = node
                continue
            parents = tuple(canon[id(p)] for p in node.parents)
            if parents != node.parents:
                node.parents = parents
            key = (node.kind, _freeze(node.attrs),
                   tuple(id(p) for p in parents))
            existing = memo.get(key)
            if existing is not None:
                canon[id(node)] = existing
                plan.merged.append((node, existing))
                plan.cse_hits += 1
                # a merged duplicate's obligations transfer: if either
                # copy is retained, the canonical value must survive
                if node.retained:
                    existing.retained = True
                continue
            memo[key] = node
            canon[id(node)] = node
            plan.topo.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        if node.buffer is None and node.kind != "source":
            for parent in node.parents:
                stack.append((parent, False))

    # consumer refcounts over the canonical plan (+1 pin per root)
    refcounts = plan.refcounts
    for node in plan.topo:
        for parent in node.parents:
            key = id(parent)
            refcounts[key] = refcounts.get(key, 0) + 1
    for root in roots:
        key = id(canon.get(id(root), root))
        refcounts[key] = refcounts.get(key, 0) + 1
        plan.root_ids.add(key)

    # fusion: absorb an elementwise node into its sole elementwise
    # consumer when shapes match (one sweep over one buffer)
    sole_consumer: Dict[int, LazyOp] = {}
    for node in plan.topo:
        for parent in node.parents:
            key = id(parent)
            sole_consumer[key] = None if key in sole_consumer else node
    for node in plan.topo:
        if node.kind not in ELEMENTWISE:
            continue
        if refcounts.get(id(node)) != 1:
            continue
        consumer = sole_consumer.get(id(node))
        if (consumer is not None and consumer.kind in ELEMENTWISE
                and consumer.shape == node.shape):
            plan.fused_into[id(node)] = consumer
    plan.launches = len(plan.topo) - len(plan.fused_into)
    return plan
