"""Graph execution: buffer-pooled, in-place-planned kernel dispatch.

:func:`run_graph` executes a :class:`~repro.lazy.scheduler.Schedule`
on a :class:`~repro.lazy.devices.Device`, recycling temporaries:

- when a node's consumers are all done, its buffer returns to a
  ``(shape, dtype)``-keyed :class:`BufferPool` (unless the value must
  survive — it backs a user-visible tensor, a requested root, or a
  view aliases it);
- for kinds declared ``INPLACE_SAFE`` the inputs are released *first*,
  so a ``y = tanh(x)`` in the middle of a chain typically writes
  straight over the buffer ``x`` occupied — the fused elementwise
  chain becomes one sweep over one buffer, which is where the
  allocation win over eager execution comes from;
- the pool persists across realizations (it lives on the
  :class:`~repro.lazy.runtime.LazyRuntime`), so a training loop
  reaches a steady state where backward scatters and elementwise
  temporaries stop allocating entirely.

Values are unchanged by any of this: kernels are the verbatim eager
expressions and pooling only changes *where* results are written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.lazy.devices import (Device, INPLACE_SAFE, MAY_ALIAS,
                                SUPPORTS_OUT)
from repro.lazy.graph import LazyOp
from repro.lazy.scheduler import Schedule, schedule

_F64 = np.dtype(np.float64)


class BufferPool:
    """A ``(shape, dtype)``-keyed free list of realized buffers.

    Bounded (per-key and overall) so pathological graphs cannot hoard
    memory; a miss simply means the kernel allocates as eager would.
    """

    def __init__(self, max_per_key: int = 64, max_total: int = 2048):
        self._free: Dict[tuple, List[np.ndarray]] = {}
        self._total = 0
        self.max_per_key = max_per_key
        self.max_total = max_total

    def take(self, shape, dtype=_F64) -> Optional[np.ndarray]:
        """Pop a reusable buffer of ``shape``/``dtype``, or None."""
        bucket = self._free.get((tuple(shape), np.dtype(dtype)))
        if bucket:
            self._total -= 1
            return bucket.pop()
        return None

    def put(self, buf: np.ndarray) -> None:
        """Return a buffer to the pool (dropped when over budget)."""
        if not isinstance(buf, np.ndarray) or self._total >= self.max_total:
            return  # reduction kernels may yield NumPy scalars
        key = (buf.shape, buf.dtype)
        bucket = self._free.setdefault(key, [])
        if len(bucket) < self.max_per_key:
            bucket.append(buf)
            self._total += 1

    def clear(self) -> None:
        """Drop every pooled buffer."""
        self._free.clear()
        self._total = 0

    def __len__(self) -> int:
        return self._total


@dataclass
class RealizeStats:
    """Counters accumulated across a runtime's realizations.

    ``alloc_new`` vs ``nodes_executed`` is the headline pair: eager
    mode allocates roughly one temporary per op, so ``alloc_new``
    falling well below ``nodes_executed`` is the memory win the
    benchmark asserts on.
    """

    realizations: int = 0
    nodes_recorded: int = 0
    nodes_executed: int = 0
    kernel_launches: int = 0
    fused_nodes: int = 0
    cse_hits: int = 0
    alloc_new: int = 0
    pool_hits: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (for benchmark JSON and tests)."""
        out = {
            "realizations": self.realizations,
            "nodes_recorded": self.nodes_recorded,
            "nodes_executed": self.nodes_executed,
            "kernel_launches": self.kernel_launches,
            "fused_nodes": self.fused_nodes,
            "cse_hits": self.cse_hits,
            "alloc_new": self.alloc_new,
            "pool_hits": self.pool_hits,
        }
        out.update(self.extra)
        return out


def _input_buffer(node: LazyOp) -> np.ndarray:
    """Resolve a parent's realized value (leaf values read fresh)."""
    if node.buffer is not None:
        return node.buffer
    return node.source.data


def run_graph(device: Device, pool: BufferPool, stats: RealizeStats,
              roots: List[LazyOp]) -> Schedule:
    """Realize ``roots``: schedule, execute, and recycle buffers.

    Every root's ``buffer`` is filled on return.  Returns the executed
    :class:`~repro.lazy.scheduler.Schedule` (tests inspect it).
    """
    pending = [r for r in roots if r.buffer is None]
    plan = schedule(pending)
    refcounts = plan.refcounts
    releasable = set()

    def release_inputs(node: LazyOp) -> None:
        for parent in node.parents:
            key = id(parent)
            left = refcounts[key] = refcounts[key] - 1
            if left == 0 and key in releasable:
                pool.put(parent.buffer)
                parent.buffer = None
                releasable.discard(key)

    for node in plan.topo:
        inputs = [_input_buffer(p) for p in node.parents]
        kind = node.kind
        inplace = kind in INPLACE_SAFE
        if inplace:
            release_inputs(node)
        out = None
        if kind in SUPPORTS_OUT and node.dtype == _F64:
            out = pool.take(node.shape)
        result = device.run(kind, node.attrs, inputs, out)
        if not isinstance(result, np.ndarray):
            result = np.asarray(result)  # NumPy scalar from a reduction
        aliasing = False
        if kind in MAY_ALIAS:
            aliasing = (result.base is not None
                        or any(result is b for b in inputs))
        if out is not None and result is out:
            stats.pool_hits += 1
        elif not aliasing:
            stats.alloc_new += 1
            if out is not None:  # kernel declined the buffer
                pool.put(out)
        node.buffer = result
        if aliasing:
            # a view pins its inputs: neither the view nor what it
            # looks into may be recycled while either is reachable
            for parent in node.parents:
                releasable.discard(id(parent))
        elif (not node.retained and id(node) not in plan.root_ids
                and node.dtype == _F64):
            releasable.add(id(node))
        if not inplace:
            release_inputs(node)

    for duplicate, canonical in plan.merged:
        duplicate.buffer = canonical.buffer

    stats.realizations += 1
    stats.nodes_executed += len(plan.topo)
    stats.kernel_launches += plan.launches
    stats.fused_nodes += len(plan.fused_into)
    stats.cse_hits += plan.cse_hits
    return plan
