"""The :class:`Tensor` type: a NumPy array plus a reverse-mode tape.

Design notes
------------
Each differentiable operation builds a small closure list mapping parent
tensors to functions that transform the output gradient into a parent
gradient contribution.  ``backward`` runs a topological sort of the recorded
graph and accumulates gradients.  Broadcasting is handled once, in
:func:`unbroadcast`, so individual ops can assume NumPy semantics.

The engine is intentionally eager and simple (the scikit-learn performance
guide's advice: vectorized NumPy first, optimize only proven hotspots).  All
heavy math is delegated to BLAS via ``np.matmul``/``np.einsum``.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# Grad recording is scoped per-context (not a module global) so
# `no_grad()` in one thread of the serve pool — or on thread-fallback
# platforms — cannot disable recording in a concurrently training
# thread.  contextvars give each thread/task its own value.
_GRAD_ENABLED: "contextvars.ContextVar[bool]" = contextvars.ContextVar(
    "repro_grad_enabled", default=True)


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED.get()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (evaluation mode)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


# ------------------------------------------------------------------- #
# deferred-execution seam (populated by repro.lazy when imported)
# ------------------------------------------------------------------- #
# `repro.lazy` installs a tensor factory (so `Tensor(...)` built inside
# an active lazy context returns a graph-recording LazyTensor) and a
# table of functional-op hooks.  Both stay None/empty until repro.lazy
# is imported, so eager-only sessions pay a single `is None` check.
_LAZY_FACTORY: Optional[Callable] = None
_LAZY_HOOKS: dict = {}


def _install_lazy(factory: Callable, hooks: dict) -> None:
    """Install the deferred-execution seam (called by ``repro.lazy``)."""
    global _LAZY_FACTORY
    _LAZY_FACTORY = factory
    _LAZY_HOOKS.clear()
    _LAZY_HOOKS.update(hooks)


def _lazy_dispatch(op: str, *args, **kwargs):
    """Offer an op to the lazy engine; None means "run it eagerly"."""
    hook = _LAZY_HOOKS.get(op)
    if hook is None:
        return None
    return hook(*args, **kwargs)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype.kind in "fc":
        return arr.astype(dtype, copy=False)
    if arr.dtype.kind in "iub":
        return arr  # keep integer tensors (indices, targets) as-is
    raise TypeError(f"unsupported dtype {arr.dtype}")


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array contents; floats are stored as ``float64`` for gradient-check
        fidelity (models can still be small enough for this to be fast).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fns", "_parents", "name")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor
    _lazy = False  # LazyTensor overrides; cheaper than isinstance checks

    def __new__(cls, data: ArrayLike = None, requires_grad: bool = False,
                name: str = ""):
        """Construct a tensor; inside an active lazy context the public
        constructor yields a graph-recording ``LazyTensor`` instead."""
        if cls is Tensor and _LAZY_FACTORY is not None:
            made = _LAZY_FACTORY(data, requires_grad, name)
            if made is not None:
                return made
        return object.__new__(cls)

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED.get()
        self.grad: Optional[np.ndarray] = None
        self._backward_fns: List[Callable[[np.ndarray], np.ndarray]] = []
        self._parents: List["Tensor"] = []
        self.name = name

    @staticmethod
    def _new_eager(data: ArrayLike, requires_grad: bool = False,
                   name: str = "") -> "Tensor":
        """Always-eager constructor, bypassing the lazy factory.

        Internal op machinery (``_make``, ``_coerce``) uses this so
        eager ops on eager inputs stay eager even inside a lazy
        context — only *public* tensor construction is intercepted.
        """
        out = object.__new__(Tensor)
        Tensor.__init__(out, data, requires_grad, name)
        return out

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor._new_eager(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _store_grad(self, g: np.ndarray) -> None:
        """Accumulate a backward contribution arriving at this leaf.

        Seam for the lazy engine: a ``LazyTensor`` reached as a leaf of
        an *eager* tape overrides this to route the gradient into its
        own deferred graph instead of storing it directly.
        """
        self.grad = g if self.grad is None else self.grad + g

    # ------------------------------------------------------------------ #
    # graph construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray,
              parents: Sequence[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]]
              ) -> "Tensor":
        """Create an op output, wiring backward closures for grad parents."""
        needs = _GRAD_ENABLED.get() and any(p.requires_grad for p, _ in parents)
        out = Tensor._new_eager(data, requires_grad=needs)
        if needs:
            for parent, fn in parents:
                if parent.requires_grad:
                    out._parents.append(parent)
                    out._backward_fns.append(fn)
        return out

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Accumulate ``d(self)/d(leaf)`` into every reachable leaf's ``grad``.

        ``grad`` defaults to 1 and must match ``self.shape``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                cur, it = stack[-1]
                advanced = False
                for parent in it:
                    if id(parent) not in seen:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(cur)
                    stack.pop()

        visit(self)

        grads = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if not node._parents:  # leaf
                node._store_grad(g)
                continue
            for parent, fn in zip(node._parents, node._backward_fns):
                contribution = fn(g)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution
            # interior nodes with requires_grad keep their grad too if they
            # are also leaves elsewhere; we only store at true leaves to
            # bound memory.
        # store grads for interior tensors explicitly marked as leaves
        # (handled above: a leaf is a node without parents).

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor._new_eager(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data + other.data,
            [(self, lambda g: unbroadcast(g, self.shape)),
             (other, lambda g: unbroadcast(g, other.shape))])

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, [(self, lambda g: -g)])

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data * other.data,
            [(self, lambda g: unbroadcast(g * other.data, self.shape)),
             (other, lambda g: unbroadcast(g * self.data, other.shape))])

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor._make(
            self.data / other.data,
            [(self, lambda g: unbroadcast(g / other.data, self.shape)),
             (other, lambda g: unbroadcast(-g * self.data / other.data ** 2,
                                           other.shape))])

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return Tensor._make(
            self.data ** exponent,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))])

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data

        def grad_a(g: np.ndarray) -> np.ndarray:
            if b.ndim == 1:
                ga = np.multiply.outer(g, b) if a.ndim > 1 else g * b
            elif a.ndim == 1:
                ga = g @ np.swapaxes(b, -1, -2)
            else:
                ga = g @ np.swapaxes(b, -1, -2)
            return unbroadcast(ga.reshape(a.shape) if ga.shape != a.shape and ga.size == a.size else ga, a.shape)

        def grad_b(g: np.ndarray) -> np.ndarray:
            if a.ndim == 1:
                gb = np.multiply.outer(a, g) if b.ndim > 1 else a * g
            elif b.ndim == 1:
                gb = np.swapaxes(a, -1, -2) @ g
            else:
                gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(gb.reshape(b.shape) if gb.shape != b.shape and gb.size == b.size else gb, b.shape)

        return Tensor._make(a @ b, [(self, grad_a), (other, grad_b)])

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # comparisons produce plain boolean arrays (non-differentiable)
    def __gt__(self, other):  # pragma: no cover - trivial
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):  # pragma: no cover - trivial
        return self.data < (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        return Tensor._make(self.data.reshape(shape),
                            [(self, lambda g: g.reshape(original))])

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])  # accept t.transpose((1, 0)) like reshape
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        if axes_t is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes_t))
        return Tensor._make(
            self.data.transpose(axes_t),
            [(self, lambda g: g.transpose(inverse))])

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros(shape, dtype=np.float64)
            np.add.at(out, index, g)
            return out

        return Tensor._make(data, [(self, grad_fn)])

    # ------------------------------------------------------------------ #
    # reductions & elementwise math
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).copy() if np.ndim(g) else np.full(shape, g)
            gg = g
            if not keepdims:
                gg = np.expand_dims(g, axis)
            return np.broadcast_to(gg, shape).copy()

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                            [(self, grad_fn)])

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._make(out_data, [(self, lambda g: g * out_data)])

    def log(self) -> "Tensor":
        return Tensor._make(np.log(self.data),
                            [(self, lambda g: g / self.data)])

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._make(out_data, [(self, lambda g: g * 0.5 / out_data)])

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._make(out_data, [(self, lambda g: g * (1.0 - out_data ** 2))])

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(out_data,
                            [(self, lambda g: g * out_data * (1.0 - out_data))])

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._make(np.where(mask, self.data, 0.0),
                            [(self, lambda g: g * mask)])

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), [(self, lambda g: g * sign)])

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        return Tensor._make(np.clip(self.data, lo, hi),
                            [(self, lambda g: g * mask)])

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = out_data if (keepdims or axis is None) else np.expand_dims(out_data, axis)
        mask = (self.data == expanded)
        counts = mask.sum(axis=axis, keepdims=True)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            gg = g
            if axis is not None and not keepdims:
                gg = np.expand_dims(g, axis)
            return mask * gg / counts

        return Tensor._make(out_data, [(self, grad_fn)])


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = list(tensors)
    lazy = _lazy_dispatch("concatenate", tensors, axis)
    if lazy is not None:
        return lazy
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        lo, hi = offsets[i], offsets[i + 1]

        def grad_fn(g: np.ndarray, lo=lo, hi=hi) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            return g[tuple(slicer)]

        parents.append((t, grad_fn))
    return Tensor._make(data, parents)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = list(tensors)
    lazy = _lazy_dispatch("stack", tensors, axis)
    if lazy is not None:
        return lazy
    data = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def grad_fn(g: np.ndarray, i=i) -> np.ndarray:
            return np.take(g, i, axis=axis)

        parents.append((t, grad_fn))
    return Tensor._make(data, parents)
