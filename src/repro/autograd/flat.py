"""Flat-buffer parameter packing for fused optimizer kernels.

Per-tensor optimizer loops pay one round of Python/NumPy dispatch per
parameter per statistic — dozens of tiny vector ops per step on models
built from many small tensors (LSTM gates, ResNet block weights).
:class:`FlatParams` packs every parameter into one contiguous buffer and
re-points each tensor's ``.data`` at a view of it, so an optimizer can
express its whole update as a handful of ndarray operations regardless of
how many tensors the model has.  This is the same flattening trick
production parameter servers use to turn many small messages into one
large one.

Packing is transparent to the model: forward/backward see the same shapes,
and in-place updates on either side (``p.data -= ...`` or
``buffer -= ...``) are visible to both.  The one operation that breaks the
aliasing is *rebinding* ``p.data`` to a fresh array (as
``Module.load_state_dict`` does); :meth:`FlatParams.ensure_packed`
detects that cheaply by data pointer and re-packs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class FlatParams:
    """One contiguous buffer aliasing a list of parameter tensors.

    Parameters
    ----------
    params:
        Gradient-carrying tensors to pack.  Each tensor's ``.data`` is
        replaced by a view into :attr:`buffer`; values are preserved.

    Attributes
    ----------
    buffer:
        The packed 1-D array.  In-place arithmetic on it updates every
        parameter simultaneously.
    offsets:
        ``offsets[i]:offsets[i+1]`` is parameter ``i``'s slice of the
        buffer.

    Examples
    --------
    >>> from repro.autograd import Tensor
    >>> a = Tensor([1.0, 2.0], requires_grad=True)
    >>> b = Tensor([[3.0], [4.0]], requires_grad=True)
    >>> flat = FlatParams([a, b])
    >>> flat.buffer
    array([1., 2., 3., 4.])
    >>> flat.buffer *= 2.0
    >>> a.data
    array([2., 4.])
    """

    def __init__(self, params: Sequence[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("cannot pack an empty parameter list")
        dtype = np.result_type(*(p.data.dtype for p in self.params))
        if dtype.kind not in "fc":
            raise TypeError(f"parameters must be floating, got {dtype}")
        self.shapes = [p.data.shape for p in self.params]
        sizes = [int(p.data.size) for p in self.params]
        self.offsets: List[int] = [0]
        for s in sizes:
            self.offsets.append(self.offsets[-1] + s)
        self.size = self.offsets[-1]
        self.buffer = np.empty(self.size, dtype=dtype)
        self._pack()

    # ------------------------------------------------------------------ #
    # packing
    # ------------------------------------------------------------------ #
    def _pack(self) -> None:
        """Copy current parameter values in and alias ``.data`` to views."""
        self._views: List[np.ndarray] = []
        for i, p in enumerate(self.params):
            start, stop = self.offsets[i], self.offsets[i + 1]
            self.buffer[start:stop] = np.asarray(p.data, dtype=self.buffer.dtype).ravel()
            p.data = self.buffer[start:stop].reshape(self.shapes[i])
            self._views.append(p.data)

    @property
    def packed(self) -> bool:
        """Whether every ``p.data`` is still the exact view we installed.

        An identity check per tensor — O(1) each, no NumPy calls — so it is
        cheap enough to run at the top of every fused optimizer step.
        """
        for p, view in zip(self.params, self._views):
            if p.data is not view:
                return False
        return True

    def ensure_packed(self) -> None:
        """Re-pack if any ``p.data`` was rebound (e.g. ``load_state_dict``).

        Values currently held by the parameters win: re-packing copies them
        back into the buffer before restoring the views.
        """
        if not self.packed:
            self._pack()

    # ------------------------------------------------------------------ #
    # gather / scatter
    # ------------------------------------------------------------------ #
    def view(self, index: int) -> np.ndarray:
        """The buffer slice of parameter ``index`` (1-D, no copy)."""
        return self.buffer[self.offsets[index]:self.offsets[index + 1]]

    def gather(self, arrays: Sequence[Optional[np.ndarray]],
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Concatenate per-parameter arrays (e.g. gradients) into ``out``.

        ``None`` entries (parameters with no gradient this step) become
        zeros.  With a preallocated ``out`` this is the only per-tensor
        work left on the fused hot path — one C-level copy per tensor.
        """
        if out is None:
            out = np.empty(self.size, dtype=self.buffer.dtype)
        for i, a in enumerate(arrays):
            start, stop = self.offsets[i], self.offsets[i + 1]
            if a is None:
                out[start:stop] = 0.0
            else:
                out[start:stop] = np.asarray(a).reshape(-1)
        return out

    def gather_grads(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather ``p.grad`` of every packed parameter into one vector."""
        return self.gather([p.grad for p in self.params], out=out)

    def split(self, flat: np.ndarray) -> List[np.ndarray]:
        """Split a flat vector back into per-parameter copies."""
        flat = np.asarray(flat)
        return [flat[self.offsets[i]:self.offsets[i + 1]]
                .reshape(self.shapes[i]).copy()
                for i in range(len(self.params))]

    def zeros(self) -> np.ndarray:
        """A zero vector matching the buffer (for flat optimizer state)."""
        return np.zeros(self.size, dtype=self.buffer.dtype)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> np.ndarray:
        """Copy of the packed parameter vector (for checkpoints).

        Re-packs first if any ``p.data`` was rebound, so the snapshot
        always reflects the live parameter values.
        """
        self.ensure_packed()
        return self.buffer.copy()

    def restore(self, vec: np.ndarray) -> None:
        """Load a :meth:`snapshot` back into the packed parameters.

        Writes through the shared buffer, so every aliased tensor sees
        the restored values without rebinding — fused optimizer state
        stays coherent across a restore.
        """
        vec = np.asarray(vec)
        if vec.shape != (self.size,):
            raise ValueError(
                f"snapshot has shape {vec.shape}, expected ({self.size},)")
        self.ensure_packed()
        self.buffer[:] = vec

    def __len__(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return (f"FlatParams(tensors={len(self.params)}, size={self.size}, "
                f"dtype={self.buffer.dtype})")
