"""Flat-buffer parameter packing for fused optimizer kernels.

Per-tensor optimizer loops pay one round of Python/NumPy dispatch per
parameter per statistic — dozens of tiny vector ops per step on models
built from many small tensors (LSTM gates, ResNet block weights).
:class:`FlatParams` packs every parameter into one contiguous buffer and
re-points each tensor's ``.data`` at a view of it, so an optimizer can
express its whole update as a handful of ndarray operations regardless of
how many tensors the model has.  This is the same flattening trick
production parameter servers use to turn many small messages into one
large one.

Packing is transparent to the model: forward/backward see the same shapes,
and in-place updates on either side (``p.data -= ...`` or
``buffer -= ...``) are visible to both.  The one operation that breaks the
aliasing is *rebinding* ``p.data`` to a fresh array (as
``Module.load_state_dict`` does); :meth:`FlatParams.ensure_packed`
detects that cheaply by data pointer and re-packs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class FlatParams:
    """One contiguous buffer aliasing a list of parameter tensors.

    Parameters
    ----------
    params:
        Gradient-carrying tensors to pack.  Each tensor's ``.data`` is
        replaced by a view into :attr:`buffer`; values are preserved.

    Attributes
    ----------
    buffer:
        The packed 1-D array.  In-place arithmetic on it updates every
        parameter simultaneously.
    offsets:
        ``offsets[i]:offsets[i+1]`` is parameter ``i``'s slice of the
        buffer.

    Examples
    --------
    >>> from repro.autograd import Tensor
    >>> a = Tensor([1.0, 2.0], requires_grad=True)
    >>> b = Tensor([[3.0], [4.0]], requires_grad=True)
    >>> flat = FlatParams([a, b])
    >>> flat.buffer
    array([1., 2., 3., 4.])
    >>> flat.buffer *= 2.0
    >>> a.data
    array([2., 4.])
    """

    def __init__(self, params: Sequence[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("cannot pack an empty parameter list")
        dtype = np.result_type(*(p.data.dtype for p in self.params))
        if dtype.kind not in "fc":
            raise TypeError(f"parameters must be floating, got {dtype}")
        self.shapes = [p.data.shape for p in self.params]
        sizes = [int(p.data.size) for p in self.params]
        self.offsets: List[int] = [0]
        for s in sizes:
            self.offsets.append(self.offsets[-1] + s)
        self.size = self.offsets[-1]
        self.buffer = np.empty(self.size, dtype=dtype)
        self._pack()

    # ------------------------------------------------------------------ #
    # packing
    # ------------------------------------------------------------------ #
    def _pack(self) -> None:
        """Copy current parameter values in and alias ``.data`` to views."""
        self._views: List[np.ndarray] = []
        for i, p in enumerate(self.params):
            start, stop = self.offsets[i], self.offsets[i + 1]
            self.buffer[start:stop] = np.asarray(p.data, dtype=self.buffer.dtype).ravel()
            p.data = self.buffer[start:stop].reshape(self.shapes[i])
            self._views.append(p.data)

    @property
    def packed(self) -> bool:
        """Whether every ``p.data`` is still the exact view we installed.

        An identity check per tensor — O(1) each, no NumPy calls — so it is
        cheap enough to run at the top of every fused optimizer step.
        """
        for p, view in zip(self.params, self._views):
            if p.data is not view:
                return False
        return True

    def ensure_packed(self) -> None:
        """Re-pack if any ``p.data`` was rebound (e.g. ``load_state_dict``).

        Values currently held by the parameters win: re-packing copies them
        back into the buffer before restoring the views.
        """
        if not self.packed:
            self._pack()

    # ------------------------------------------------------------------ #
    # gather / scatter
    # ------------------------------------------------------------------ #
    def view(self, index: int) -> np.ndarray:
        """The buffer slice of parameter ``index`` (1-D, no copy)."""
        return self.buffer[self.offsets[index]:self.offsets[index + 1]]

    def gather(self, arrays: Sequence[Optional[np.ndarray]],
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Concatenate per-parameter arrays (e.g. gradients) into ``out``.

        ``None`` entries (parameters with no gradient this step) become
        zeros.  With a preallocated ``out`` this is the only per-tensor
        work left on the fused hot path — one C-level copy per tensor.
        """
        if out is None:
            out = np.empty(self.size, dtype=self.buffer.dtype)
        for i, a in enumerate(arrays):
            start, stop = self.offsets[i], self.offsets[i + 1]
            if a is None:
                out[start:stop] = 0.0
            else:
                out[start:stop] = np.asarray(a).reshape(-1)
        return out

    def gather_grads(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather ``p.grad`` of every packed parameter into one vector."""
        return self.gather([p.grad for p in self.params], out=out)

    def split(self, flat: np.ndarray) -> List[np.ndarray]:
        """Split a flat vector back into per-parameter copies."""
        flat = np.asarray(flat)
        return [flat[self.offsets[i]:self.offsets[i + 1]]
                .reshape(self.shapes[i]).copy()
                for i in range(len(self.params))]

    def zeros(self) -> np.ndarray:
        """A zero vector matching the buffer (for flat optimizer state)."""
        return np.zeros(self.size, dtype=self.buffer.dtype)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> np.ndarray:
        """Copy of the packed parameter vector (for checkpoints).

        Re-packs first if any ``p.data`` was rebound, so the snapshot
        always reflects the live parameter values.
        """
        self.ensure_packed()
        return self.buffer.copy()

    def restore(self, vec: np.ndarray) -> None:
        """Load a :meth:`snapshot` back into the packed parameters.

        Writes through the shared buffer, so every aliased tensor sees
        the restored values without rebinding — fused optimizer state
        stays coherent across a restore.
        """
        vec = np.asarray(vec)
        if vec.shape != (self.size,):
            raise ValueError(
                f"snapshot has shape {vec.shape}, expected ({self.size},)")
        self.ensure_packed()
        self.buffer[:] = vec

    def __len__(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return (f"FlatParams(tensors={len(self.params)}, size={self.size}, "
                f"dtype={self.buffer.dtype})")


class BatchedFlatParams:
    """R replicate parameter sets packed into one ``(R, size)`` buffer.

    The replicate axis of the :mod:`repro.vec` batched execution engine:
    each row aliases one replicate's parameter tensors exactly as
    :class:`FlatParams` aliases a single model, so a batched optimizer
    kernel can update *every* replicate with one ndarray operation while
    each replicate's model still sees its own row through ordinary
    ``p.data`` views.

    Rows of the C-contiguous buffer are themselves contiguous, which is
    what makes elementwise batched updates bit-identical per row to the
    scalar fused kernels — a property the differential test suite
    enforces.

    Parameters
    ----------
    param_lists:
        One sequence of gradient-carrying tensors per replicate.  Every
        replicate must have the same tensor count, shapes, and dtypes
        (they are replicas of one architecture).  Zero-size tensors are
        allowed and occupy empty slices.

    Attributes
    ----------
    buffer:
        The packed ``(replicates, size)`` array.
    offsets:
        ``offsets[i]:offsets[i+1]`` is tensor ``i``'s column slice —
        shared by every replicate row.
    """

    def __init__(self, param_lists: Sequence[Sequence[Tensor]]):
        self.param_lists: List[List[Tensor]] = [list(ps)
                                                for ps in param_lists]
        if not self.param_lists:
            raise ValueError("need at least one replicate")
        first = self.param_lists[0]
        if not first:
            raise ValueError("cannot pack an empty parameter list")
        self.shapes = [p.data.shape for p in first]
        dtype = np.result_type(*(p.data.dtype for p in first))
        if dtype.kind not in "fc":
            raise TypeError(f"parameters must be floating, got {dtype}")
        for r, params in enumerate(self.param_lists):
            if [p.data.shape for p in params] != self.shapes:
                raise ValueError(
                    f"replicate {r} parameter shapes differ from "
                    "replicate 0")
        self.offsets: List[int] = [0]
        for shape in self.shapes:
            self.offsets.append(self.offsets[-1]
                                + int(np.prod(shape, dtype=int)))
        self.size = self.offsets[-1]
        self.replicates = len(self.param_lists)
        self.buffer = np.empty((self.replicates, self.size), dtype=dtype)
        self._pack()

    def _pack(self) -> None:
        """Copy live values in and re-point every ``p.data`` at its row
        slice."""
        self._views: List[List[np.ndarray]] = []
        for r, params in enumerate(self.param_lists):
            row_views: List[np.ndarray] = []
            for i, p in enumerate(params):
                start, stop = self.offsets[i], self.offsets[i + 1]
                self.buffer[r, start:stop] = np.asarray(
                    p.data, dtype=self.buffer.dtype).ravel()
                p.data = self.buffer[r, start:stop].reshape(self.shapes[i])
                row_views.append(p.data)
            self._views.append(row_views)

    @property
    def packed(self) -> bool:
        """Whether every tensor still aliases the view we installed."""
        for params, views in zip(self.param_lists, self._views):
            for p, view in zip(params, views):
                if p.data is not view:
                    return False
        return True

    def ensure_packed(self) -> None:
        """Re-pack if any replicate rebound a ``p.data`` (values win)."""
        if not self.packed:
            self._pack()

    def row(self, r: int) -> np.ndarray:
        """Replicate ``r``'s packed parameter vector (contiguous view)."""
        return self.buffer[r]

    def gather_grads(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather every replicate's gradients into an ``(R, size)`` array.

        ``None`` gradients become zeros, mirroring
        :meth:`FlatParams.gather`.
        """
        if out is None:
            out = np.empty_like(self.buffer)
        for r, params in enumerate(self.param_lists):
            for i, p in enumerate(params):
                start, stop = self.offsets[i], self.offsets[i + 1]
                if p.grad is None:
                    out[r, start:stop] = 0.0
                else:
                    out[r, start:stop] = np.asarray(p.grad).reshape(-1)
        return out

    def zeros(self) -> np.ndarray:
        """A zero ``(R, size)`` array matching the buffer (flat state)."""
        return np.zeros_like(self.buffer)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> np.ndarray:
        """Copy of the full ``(R, size)`` parameter matrix."""
        self.ensure_packed()
        return self.buffer.copy()

    def snapshot_row(self, r: int) -> np.ndarray:
        """Copy of replicate ``r``'s packed parameter vector."""
        self.ensure_packed()
        return self.buffer[r].copy()

    def restore(self, mat: np.ndarray) -> None:
        """Load a :meth:`snapshot` back; every aliased tensor sees it."""
        mat = np.asarray(mat)
        if mat.shape != self.buffer.shape:
            raise ValueError(
                f"snapshot has shape {mat.shape}, expected "
                f"{self.buffer.shape}")
        self.ensure_packed()
        self.buffer[:] = mat

    def restore_row(self, r: int, vec: np.ndarray) -> None:
        """Load a :meth:`snapshot_row` back into replicate ``r``."""
        vec = np.asarray(vec)
        if vec.shape != (self.size,):
            raise ValueError(
                f"snapshot has shape {vec.shape}, expected ({self.size},)")
        self.ensure_packed()
        self.buffer[r] = vec

    def __len__(self) -> int:
        return self.replicates

    def __repr__(self) -> str:
        return (f"BatchedFlatParams(replicates={self.replicates}, "
                f"tensors={len(self.shapes)}, size={self.size}, "
                f"dtype={self.buffer.dtype})")
