"""Numerical gradient checking for autograd ops and nn modules.

Used pervasively by the test suite: every differentiable op is validated
against central finite differences before being trusted by the optimizer
experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_grad(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                   index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn(*tensors).sum()`` w.r.t. one input."""
    target = tensors[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*tensors).data.sum())
        flat[i] = orig - eps
        lo = float(fn(*tensors).data.sum())
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    eps: float = 1e-6) -> None:
    """Assert analytic gradients of ``fn(*tensors).sum()`` match numerics.

    Raises ``AssertionError`` with the worst mismatch on failure.
    """
    for t in tensors:
        t.zero_grad()
    out = fn(*tensors)
    out.sum().backward() if out.size > 1 else out.backward()
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        expected = numerical_grad(fn, tensors, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(
            actual, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i} of {fn}")
