"""Neural-network operations built on :class:`~repro.autograd.tensor.Tensor`.

Everything is expressed with vectorized NumPy (im2col for convolution), per
the ml-systems guide: no per-element Python loops on hot paths.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, _lazy_dispatch


# --------------------------------------------------------------------- #
# activations / softmax family
# --------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable ``log(softmax(x))`` along ``axis``."""
    lazy = _lazy_dispatch("log_softmax", x, axis)
    if lazy is not None:
        return lazy
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax_data = np.exp(out_data)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - softmax_data * g.sum(axis=axis, keepdims=True)

    return Tensor._make(out_data, [(x, grad_fn)])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` ``(N, C)`` and integer ``targets`` ``(N,)``.

    This is the negative log-probability objective YellowFin's measurement
    functions assume (Section 3.2: Fisher information approximates the
    Hessian for such losses).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got shape {logits.shape}")
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    if reduction == "mean":
        return -picked.mean()
    if reduction == "sum":
        return -picked.sum()
    if reduction == "none":
        return -picked
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    return x * Tensor(mask)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    lazy = _lazy_dispatch("leaky_relu", x, negative_slope)
    if lazy is not None:
        return lazy
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return Tensor._make(x.data * scale, [(x, lambda g: g * scale)])


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))``, computed stably."""
    lazy = _lazy_dispatch("softplus", x)
    if lazy is not None:
        return lazy
    out = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor._make(out, [(x, lambda g: g * sig)])


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation)."""
    lazy = _lazy_dispatch("gelu", x)
    if lazy is not None:
        return lazy
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + t)
    # d/dx [0.5 x (1 + tanh(u(x)))] with u' = c (1 + 3*0.044715 x^2)
    du = c * (1.0 + 3 * 0.044715 * x.data ** 2)
    grad_local = 0.5 * (1.0 + t) + 0.5 * x.data * (1.0 - t * t) * du
    return Tensor._make(out, [(x, lambda g: g * grad_local)])


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing (spatial) dims of an NCHW tensor."""
    if padding < 0:
        raise ValueError("padding must be >= 0")
    if padding == 0:
        return x
    lazy = _lazy_dispatch("pad2d", x, padding)
    if lazy is not None:
        return lazy
    p = padding
    out = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))
    return Tensor._make(out, [(x, lambda g: g[:, :, p:-p, p:-p])])


def split(x: Tensor, sections: int, axis: int = 0) -> list:
    """Differentiable ``np.split`` into equal sections."""
    size = x.shape[axis]
    if size % sections:
        raise ValueError(f"axis size {size} not divisible by {sections}")
    width = size // sections
    outs = []
    for i in range(sections):
        index = [slice(None)] * x.ndim
        index[axis] = slice(i * width, (i + 1) * width)
        outs.append(x[tuple(index)])
    return outs


# --------------------------------------------------------------------- #
# convolution (im2col) and pooling
# --------------------------------------------------------------------- #
def _im2col_indices(x_shape: Tuple[int, int, int, int], kh: int, kw: int,
                    stride: int, pad: int):
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution, NCHW layout.

    Parameters
    ----------
    x: ``(N, C_in, H, W)``
    weight: ``(C_out, C_in, KH, KW)``
    bias: ``(C_out,)`` or None
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in} vs weight {c_in_w}")
    lazy = _lazy_dispatch("conv2d", x, weight, bias, stride, padding)
    if lazy is not None:
        return lazy

    k, i, j, out_h, out_w = _im2col_indices(x.shape, kh, kw, stride, padding)
    x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                               (padding, padding)))
    cols = x_padded[:, k, i, j]                        # (N, C*KH*KW, OH*OW)
    w_mat = weight.data.reshape(c_out, -1)             # (C_out, C*KH*KW)
    out = np.einsum("of,nfl->nol", w_mat, cols)        # (N, C_out, OH*OW)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    padded_shape = x_padded.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, c_out, -1)                    # (N, C_out, L)
        dcols = np.einsum("of,nol->nfl", w_mat, g_mat)     # (N, F, L)
        dx_padded = np.zeros(padded_shape, dtype=np.float64)
        np.add.at(dx_padded, (slice(None), k, i, j), dcols)
        if padding:
            return dx_padded[:, :, padding:-padding, padding:-padding]
        return dx_padded

    def grad_w(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, c_out, -1)
        dw = np.einsum("nol,nfl->of", g_mat, cols)
        return dw.reshape(weight.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor._make(out, parents)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Average pooling with stride == kernel (used for ResNet downsampling)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    lazy = _lazy_dispatch("avg_pool2d", x, kernel)
    if lazy is not None:
        return lazy
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.mean(axis=(3, 5))

    def grad_fn(g: np.ndarray) -> np.ndarray:
        g_expanded = g[:, :, :, None, :, None] / (kernel * kernel)
        return np.broadcast_to(
            g_expanded, (n, c, oh, kernel, ow, kernel)).reshape(n, c, h, w)

    return Tensor._make(out, [(x, grad_fn)])


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Max pooling with stride == kernel."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    lazy = _lazy_dispatch("max_pool2d", x, kernel)
    if lazy is not None:
        return lazy
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = view.max(axis=(3, 5))
    mask = view == out[:, :, :, None, :, None]
    counts = mask.sum(axis=(3, 5), keepdims=True)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        spread = mask * (g[:, :, :, None, :, None] / counts)
        return spread.reshape(n, c, h, w)

    return Tensor._make(out, [(x, grad_fn)])


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    lazy = _lazy_dispatch("embedding", weight, indices)
    if lazy is not None:
        return lazy
    out = weight.data[indices]
    shape = weight.shape

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dw = np.zeros(shape, dtype=np.float64)
        np.add.at(dw, indices.reshape(-1),
                  g.reshape(-1, shape[1]))
        return dw

    return Tensor._make(out, [(weight, grad_fn)])


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` matching ``torch.nn.functional.linear``."""
    if not isinstance(x, Tensor):
        x = Tensor(x)
    lazy = _lazy_dispatch("linear", x, weight, bias)
    if lazy is not None:
        return lazy
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out
