"""Reverse-mode automatic differentiation over NumPy arrays.

This is the substrate that stands in for PyTorch/TensorFlow in the paper's
experiments: YellowFin only ever consumes minibatch gradients, so any
correct autodiff engine reproduces the optimizer's trajectory.

The public surface mirrors a minimal ``torch``:

>>> from repro.autograd import Tensor
>>> x = Tensor([1.0, 2.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4.])
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd.flat import BatchedFlatParams, FlatParams
from repro.autograd import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "FlatParams",
           "BatchedFlatParams", "functional"]
