"""Wall-clock timing primitives for the benchmark harness.

Everything is ``time.perf_counter``-based and allocation-light so the
harness itself stays invisible next to the workloads it measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class WallTimer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self):
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingStats:
    """Summary of repeated timings of one operation.

    Attributes
    ----------
    samples : list of float
        Per-repeat wall-clock seconds, in run order.
    calls_per_sample : int
        Inner-loop call count each sample covers; ``per_call`` divides by
        it.
    """

    samples: List[float] = field(default_factory=list)
    calls_per_sample: int = 1

    @property
    def best(self) -> float:
        """Fastest sample — the least noise-contaminated estimate."""
        return min(self.samples)

    @property
    def median(self) -> float:
        """Median sample: robust to one-off scheduler hiccups."""
        ordered = sorted(self.samples)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def per_call(self, which: str = "median") -> float:
        """Seconds per inner call, from the chosen aggregate."""
        return getattr(self, which) / self.calls_per_sample

    def as_dict(self) -> dict:
        """JSON-ready summary (seconds)."""
        return {
            "best_s": self.best,
            "median_s": self.median,
            "mean_s": self.mean,
            "total_s": self.total,
            "repeats": len(self.samples),
            "calls_per_sample": self.calls_per_sample,
            "per_call_median_s": self.per_call("median"),
            "per_call_best_s": self.per_call("best"),
        }


def time_fn(fn: Callable[[], object], repeats: int = 5, calls: int = 1,
            warmup: int = 1) -> TimingStats:
    """Time ``fn`` with warm-up and repeats.

    Parameters
    ----------
    fn : callable
        Operation to measure (no arguments; close over inputs).
    repeats : int, optional
        Number of timed samples (statistics are computed over these).
    calls : int, optional
        Inner-loop invocations per sample, for sub-microsecond operations
        that need batching to rise above timer resolution.
    warmup : int, optional
        Untimed invocations first (cache/JIT/allocator warm-up).

    Returns
    -------
    TimingStats
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if calls < 1:
        raise ValueError(f"calls must be >= 1, got {calls}")
    for _ in range(warmup):
        fn()
    stats = TimingStats(calls_per_sample=calls)
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        stats.samples.append(time.perf_counter() - start)
    return stats
