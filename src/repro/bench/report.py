"""JSON perf records: the ``BENCH_*.json`` files benchmark scripts emit.

Every record captures *what* was measured (metrics), *under which knobs*
(params), and *on what* (environment), so that future PRs can diff perf
against the committed trajectory instead of folklore.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

# Directory BENCH_*.json files land in unless a reporter says otherwise.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


# Scale knob the benchmark suite honors; recorded with every record so
# baseline diffs can tell a scaled-down smoke run from a full run.
BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"


def environment_info() -> dict:
    """Software/hardware fingerprint attached to every record.

    Besides the interpreter/platform identity this includes the bench
    scale (``$REPRO_BENCH_SCALE``), so two records taken at different
    scales can never be silently compared as like-for-like.
    """
    import numpy
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "bench_scale": float(os.environ.get(BENCH_SCALE_ENV, "1.0")),
    }


@dataclass
class BenchRecord:
    """One benchmark result destined for ``BENCH_<name>.json``.

    Attributes
    ----------
    name : str
        Record key; the file is named ``BENCH_<name>.json``.
    metrics : dict
        Measured quantities (timings in seconds, speedups, counts).
    params : dict
        The knobs the measurement was taken under (sizes, step counts,
        flags).
    env : dict
        Interpreter/platform fingerprint (see :func:`environment_info`).
    unix_time : float
        Record creation time (seconds since epoch).
    """

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=environment_info)
    unix_time: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {"name": self.name, "metrics": self.metrics,
                "params": self.params, "env": self.env,
                "unix_time": self.unix_time}

    @property
    def filename(self) -> str:
        return f"BENCH_{self.name}.json"


class BenchReporter:
    """Collects :class:`BenchRecord` objects and writes them to disk.

    Parameters
    ----------
    out_dir : str, optional
        Target directory.  Defaults to ``$REPRO_BENCH_DIR`` when set,
        else the current working directory (the repo root under the
        standard pytest invocation).
    """

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir or os.environ.get(BENCH_DIR_ENV) or os.getcwd()
        self.records: Dict[str, BenchRecord] = {}

    def record(self, name: str, metrics: Dict[str, float],
               params: Optional[Dict[str, object]] = None,
               seed: Optional[int] = None) -> BenchRecord:
        """Create (or replace) the record for ``name``.

        Parameters
        ----------
        name : str
            Record key (file becomes ``BENCH_<name>.json``).
        metrics : dict
            Measured quantities.
        params : dict, optional
            The knobs the measurement was taken under.
        seed : int, optional
            Base seed of the measured run; stamped into the record's
            environment so baseline diffs can explain drift that is
            really a seed change.
        """
        rec = BenchRecord(name=name, metrics=dict(metrics),
                          params=dict(params or {}))
        if seed is not None:
            rec.env["seed"] = int(seed)
        self.records[name] = rec
        return rec

    def write(self, name: Optional[str] = None) -> list:
        """Write one record (or all of them) as ``BENCH_<name>.json``.

        Returns
        -------
        list of str
            Paths written.
        """
        names = [name] if name is not None else list(self.records)
        paths = []
        os.makedirs(self.out_dir, exist_ok=True)
        for n in names:
            rec = self.records[n]
            path = os.path.join(self.out_dir, rec.filename)
            with open(path, "w") as fh:
                json.dump(rec.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            paths.append(path)
        return paths


def load_record(path: str) -> BenchRecord:
    """Read a ``BENCH_*.json`` file back into a :class:`BenchRecord`."""
    with open(path) as fh:
        raw = json.load(fh)
    return BenchRecord(name=raw["name"], metrics=raw["metrics"],
                       params=raw.get("params", {}), env=raw.get("env", {}),
                       unix_time=raw.get("unix_time", 0.0))
