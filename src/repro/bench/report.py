"""JSON perf records: the ``BENCH_*.json`` files benchmark scripts emit.

Every record captures *what* was measured (metrics), *under which knobs*
(params), and *on what* (environment), so that future PRs can diff perf
against the committed trajectory instead of folklore.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

# Directory BENCH_*.json files land in unless a reporter says otherwise.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


# Scale knob the benchmark suite honors; recorded with every record so
# baseline diffs can tell a scaled-down smoke run from a full run.
BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"


def environment_info() -> dict:
    """Software/hardware fingerprint attached to every record.

    Besides the interpreter/platform identity this includes the bench
    scale (``$REPRO_BENCH_SCALE``), so two records taken at different
    scales can never be silently compared as like-for-like.
    """
    import numpy
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "bench_scale": float(os.environ.get(BENCH_SCALE_ENV, "1.0")),
    }


def replicate_statistics(replicate_metrics: Sequence[Dict[str, float]]
                         ) -> Dict[str, float]:
    """Aggregate per-replicate metric dicts into mean/std/CI fields.

    For every metric ``m`` present in the replicate dicts the output
    carries ``m`` (the sample mean — the value baseline gates judge),
    ``m_std`` (sample standard deviation, ``ddof=1``), and ``m_ci95``
    (the 95% normal-approximation confidence half-width,
    ``1.96 · std / sqrt(R)``), plus a ``replicates`` count.  With a
    single replicate the std/CI fields are omitted (no spread to
    estimate) and the means are the values themselves.

    Parameters
    ----------
    replicate_metrics : sequence of dict
        One scalar-metric dict per replicate (all with the same keys).

    Returns
    -------
    dict
        The aggregated metric dict, ready for a BENCH record or a
        replicated :class:`~repro.xp.runner.ScenarioResult`.
    """
    if not replicate_metrics:
        raise ValueError("need at least one replicate metric dict")
    n = len(replicate_metrics)
    out: Dict[str, float] = {}
    for key in replicate_metrics[0]:
        values = [float(m[key]) for m in replicate_metrics]
        mean = sum(values) / n
        out[key] = mean
        if n > 1:
            if any(math.isnan(v) for v in values):
                std = float("nan")
            else:
                var = sum((v - mean) ** 2 for v in values) / (n - 1)
                std = math.sqrt(var)
            out[f"{key}_std"] = std
            out[f"{key}_ci95"] = 1.96 * std / math.sqrt(n)
    out["replicates"] = float(n)
    return out


def _register_aggregators() -> None:
    """File the built-in metric aggregator in the central registry.

    The replicate runner resolves its aggregation step through the
    ``"aggregator"`` kind, so downstream code can register alternative
    aggregations (medians, trimmed means) and select them by name.
    """
    from repro.registry import registry

    registry.register(
        "aggregator", "replicate_stats",
        lambda: replicate_statistics,
        description="mean + *_std / *_ci95 spread fields per metric")


_register_aggregators()


@dataclass
class BenchRecord:
    """One benchmark result destined for ``BENCH_<name>.json``.

    Attributes
    ----------
    name : str
        Record key; the file is named ``BENCH_<name>.json``.
    metrics : dict
        Measured quantities (timings in seconds, speedups, counts).
    params : dict
        The knobs the measurement was taken under (sizes, step counts,
        flags).
    env : dict
        Interpreter/platform fingerprint (see :func:`environment_info`).
    unix_time : float
        Record creation time (seconds since epoch).
    """

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=environment_info)
    unix_time: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {"name": self.name, "metrics": self.metrics,
                "params": self.params, "env": self.env,
                "unix_time": self.unix_time}

    @property
    def filename(self) -> str:
        return f"BENCH_{self.name}.json"


class BenchReporter:
    """Collects :class:`BenchRecord` objects and writes them to disk.

    Parameters
    ----------
    out_dir : str, optional
        Target directory.  Defaults to ``$REPRO_BENCH_DIR`` when set,
        else the current working directory (the repo root under the
        standard pytest invocation).
    """

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir or os.environ.get(BENCH_DIR_ENV) or os.getcwd()
        self.records: Dict[str, BenchRecord] = {}

    def record(self, name: str, metrics: Dict[str, float],
               params: Optional[Dict[str, object]] = None,
               seed: Optional[int] = None) -> BenchRecord:
        """Create (or replace) the record for ``name``.

        Parameters
        ----------
        name : str
            Record key (file becomes ``BENCH_<name>.json``).
        metrics : dict
            Measured quantities.
        params : dict, optional
            The knobs the measurement was taken under.
        seed : int, optional
            Base seed of the measured run; stamped into the record's
            environment so baseline diffs can explain drift that is
            really a seed change.
        """
        rec = BenchRecord(name=name, metrics=dict(metrics),
                          params=dict(params or {}))
        if seed is not None:
            rec.env["seed"] = int(seed)
        self.records[name] = rec
        return rec

    def record_replicates(self, name: str,
                          replicate_metrics: Sequence[Dict[str, float]],
                          params: Optional[Dict[str, object]] = None,
                          seed: Optional[int] = None) -> BenchRecord:
        """Create the record for ``name`` from per-replicate metrics.

        Aggregates with :func:`replicate_statistics`, so the record
        carries ``m`` / ``m_std`` / ``m_ci95`` per metric plus the
        replicate count — the statistical BENCH-record shape the
        CI-aware baseline gate understands.

        Parameters
        ----------
        name : str
            Record key (file becomes ``BENCH_<name>.json``).
        replicate_metrics : sequence of dict
            One scalar-metric dict per replicate.
        params : dict, optional
            The knobs the measurement was taken under.
        seed : int, optional
            Base seed of the measured run.
        """
        return self.record(name, replicate_statistics(replicate_metrics),
                           params=params, seed=seed)

    def write(self, name: Optional[str] = None) -> list:
        """Write one record (or all of them) as ``BENCH_<name>.json``.

        Returns
        -------
        list of str
            Paths written.
        """
        names = [name] if name is not None else list(self.records)
        paths = []
        os.makedirs(self.out_dir, exist_ok=True)
        for n in names:
            rec = self.records[n]
            path = os.path.join(self.out_dir, rec.filename)
            with open(path, "w") as fh:
                json.dump(rec.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            paths.append(path)
        return paths


def load_record(path: str) -> BenchRecord:
    """Read a ``BENCH_*.json`` file back into a :class:`BenchRecord`."""
    with open(path) as fh:
        raw = json.load(fh)
    return BenchRecord(name=raw["name"], metrics=raw["metrics"],
                       params=raw.get("params", {}), env=raw.get("env", {}),
                       unix_time=raw.get("unix_time", 0.0))
