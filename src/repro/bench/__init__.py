"""Unified benchmark harness: timers, JSON perf records, runners.

Every figure script under ``benchmarks/`` reports through this package so
performance leaves a paper trail: a ``BENCH_<name>.json`` file per
measurement, carrying the metrics, the knobs, and the environment they
were taken under.

Typical use::

    from repro.bench import compare_benchmark
    record = compare_benchmark(
        "fig01", baseline=per_tensor_step, candidate=fused_step,
        repeats=5, calls=200, params={"model": "cifar100-resnet"})
    assert record.metrics["speedup"] >= 2.0
"""

from repro.bench.timers import WallTimer, TimingStats, time_fn
from repro.bench.report import (BenchRecord, BenchReporter, environment_info,
                                load_record, replicate_statistics)
from repro.bench.runner import compare_benchmark, run_benchmark

__all__ = [
    "WallTimer", "TimingStats", "time_fn",
    "BenchRecord", "BenchReporter", "environment_info", "load_record",
    "replicate_statistics", "run_benchmark", "compare_benchmark",
]
