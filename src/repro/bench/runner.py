"""High-level benchmark runner: time → record → write in one call.

The figure scripts under ``benchmarks/`` call these helpers so that every
run leaves a ``BENCH_*.json`` perf record behind; ``benchmarks/conftest``
additionally auto-records the wall time of every figure test.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bench.report import BenchRecord, BenchReporter
from repro.bench.timers import TimingStats, time_fn


def run_benchmark(name: str, fn: Callable[[], object], repeats: int = 5,
                  calls: int = 1, warmup: int = 1,
                  params: Optional[Dict[str, object]] = None,
                  extra_metrics: Optional[Dict[str, float]] = None,
                  reporter: Optional[BenchReporter] = None,
                  write: bool = True) -> BenchRecord:
    """Time ``fn`` and persist the result as ``BENCH_<name>.json``.

    Parameters
    ----------
    name : str
        Record name (file becomes ``BENCH_<name>.json``).
    fn : callable
        The operation under test.
    repeats, calls, warmup : int, optional
        Passed to :func:`repro.bench.timers.time_fn`.
    params : dict, optional
        Knobs to attach to the record.
    extra_metrics : dict, optional
        Additional metrics merged into the record (e.g. derived ratios).
    reporter : BenchReporter, optional
        Reuse a reporter (and its output directory); a fresh one
        otherwise.
    write : bool, optional
        Skip the disk write when False (the record is still returned).

    Returns
    -------
    BenchRecord
    """
    stats = time_fn(fn, repeats=repeats, calls=calls, warmup=warmup)
    reporter = reporter or BenchReporter()
    metrics = stats.as_dict()
    if extra_metrics:
        metrics.update(extra_metrics)
    record = reporter.record(name, metrics, params)
    if write:
        reporter.write(name)
    return record


def compare_benchmark(name: str, baseline: Callable[[], object],
                      candidate: Callable[[], object], repeats: int = 5,
                      calls: int = 1, warmup: int = 1,
                      params: Optional[Dict[str, object]] = None,
                      reporter: Optional[BenchReporter] = None,
                      write: bool = True) -> BenchRecord:
    """Time a baseline/candidate pair and record their speedup.

    The headline use: per-tensor vs fused optimizer kernels.  Metrics
    include both raw timings (``baseline_*``/``candidate_*``) and
    ``speedup`` = baseline median / candidate median.

    Returns
    -------
    BenchRecord
        With ``metrics["speedup"]`` > 1 meaning the candidate is faster.
    """
    base_stats = time_fn(baseline, repeats=repeats, calls=calls,
                         warmup=warmup)
    cand_stats = time_fn(candidate, repeats=repeats, calls=calls,
                         warmup=warmup)
    metrics: Dict[str, float] = {}
    for key, value in base_stats.as_dict().items():
        metrics[f"baseline_{key}"] = value
    for key, value in cand_stats.as_dict().items():
        metrics[f"candidate_{key}"] = value
    metrics["speedup"] = base_stats.median / cand_stats.median
    metrics["speedup_best"] = base_stats.best / cand_stats.best
    reporter = reporter or BenchReporter()
    record = reporter.record(name, metrics, params)
    if write:
        reporter.write(name)
    return record
