"""The YellowFin optimizer (paper Algorithm 1).

Per step:

1. (optional) adaptively clip gradients at ``sqrt(hmax)`` (Section 3.3);
2. update the measurement oracles from the (clipped) gradients;
3. solve SingleStep for the target momentum and learning rate;
4. smooth the targets with zero-debiased EMAs and apply the slow-start
   learning-rate discount ``lr <- min(lr, t * lr / (10 w))`` (Appendix E);
5. take one Polyak-momentum SGD step.

The class follows the ``torch.optim`` contract (``zero_grad`` / ``step``),
making it a drop-in replacement for any optimizer, as released by the
authors.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.clipping import AdaptiveClipper
from repro.core.ema import ZeroDebiasEMA
from repro.core.measurements import GradientMeasurements
from repro.core.single_step import SingleStepResult, single_step
from repro.optim.optimizer import Optimizer


class YellowFin(Optimizer):
    """Automatic tuner for momentum SGD: one global ``(lr, momentum)``.

    Parameters
    ----------
    params:
        Trainable tensors.
    lr, momentum:
        Initial values used before the oracles have enough signal
        (defaults 1.0 / 0.0 per the released implementation).
    beta:
        EMA smoothing for all running estimates (paper: 0.999).
    window:
        Curvature sliding-window width ``w`` (paper: 20).
    adaptive_clip:
        Enable adaptive gradient clipping at ``sqrt(hmax)``.
    slow_start:
        Apply the learning-rate discount over the first ``10 w`` steps.
    lr_factor:
        Manual multiplier on the auto-tuned learning rate (Appendix J.4,
        Fig. 11); 1.0 means fully automatic.
    prescribed_momentum:
        If set, the SingleStep momentum is still computed (and logged) but
        the underlying SGD uses this fixed value — the Fig. 9 ablation.
    zero_debias, log_space_curvature:
        Appendix-E estimator design choices, exposed so the ablation
        benches can switch them off individually.
    nesterov:
        Apply the tuned (lr, momentum) through Nesterov's update instead
        of Polyak's (as in the released implementation's option).
    fused:
        Pack parameters into one flat buffer and run the whole hot path
        (clip → measure → update) on packed vectors: one gradient gather
        per step instead of three per-tensor traversals.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1.0,
                 momentum: float = 0.0, beta: float = 0.999, window: int = 20,
                 adaptive_clip: bool = True, slow_start: bool = True,
                 lr_factor: float = 1.0,
                 prescribed_momentum: Optional[float] = None,
                 zero_debias: bool = True, log_space_curvature: bool = True,
                 nesterov: bool = False, fused: bool = False):
        super().__init__(params, fused=fused)
        if lr <= 0:
            raise ValueError(f"initial lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"initial momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.beta = beta
        self.window = window
        self.slow_start = slow_start
        self.lr_factor = lr_factor
        self.prescribed_momentum = prescribed_momentum
        self.nesterov = nesterov

        self.measurements = GradientMeasurements(
            beta=beta, window=window,
            limit_envelope_growth=adaptive_clip,
            log_space_curvature=log_space_curvature,
            zero_debias=zero_debias)
        self.clipper: Optional[AdaptiveClipper] = (
            AdaptiveClipper() if adaptive_clip else None)
        self._lr_ema = ZeroDebiasEMA(beta, debias=zero_debias)
        self._mu_ema = ZeroDebiasEMA(beta, debias=zero_debias)
        if self.fused:
            self._velocity = self._flat.zeros()
        else:
            self._velocity: List[np.ndarray] = [np.zeros_like(p.data)
                                                for p in self.params]
        self.last_result: Optional[SingleStepResult] = None

    # ------------------------------------------------------------------ #
    # tuner
    # ------------------------------------------------------------------ #
    def _clip_gradients(self) -> Optional[np.ndarray]:
        """Adaptive-clip this step's gradients.

        Per-tensor mode clips every ``p.grad`` in place and returns
        ``None``; fused mode gathers the packed gradient once, clips the
        vector in place, and returns it for reuse by the tuner and the
        update kernel.
        """
        hmax = None
        if self.clipper is not None and \
                self.measurements.curvature._hmax.initialized:
            hmax = self.measurements.curvature.hmax
        if self.fused:
            flat_grad = self._gather_flat_gradient()
            if self.clipper is not None:
                self.clipper.clip_flat(flat_grad, hmax)
            return flat_grad
        if self.clipper is not None:
            self.clipper.clip(self.params, hmax)
        return None

    def _tune(self, flat_grad: Optional[np.ndarray] = None) -> None:
        """Run measurement + SingleStep + smoothing; set self.lr/momentum."""
        if flat_grad is not None:
            self.measurements.update_flat(flat_grad)
        else:
            self.measurements.update(self.gradients())
        snap = self.measurements.snapshot()
        result = single_step(variance=snap.variance, distance=snap.distance,
                             hmax=snap.hmax, hmin=snap.hmin)
        self.last_result = result
        self.momentum = float(self._mu_ema.update(result.mu))
        self.lr = float(self._lr_ema.update(result.lr))

    def effective_lr(self) -> float:
        """Learning rate actually applied: smoothing, slow start, lr_factor."""
        lr = self.lr * self.lr_factor
        if self.slow_start:
            lr = min(lr, (self.t + 1) * lr / (10.0 * self.window))
        return lr

    def effective_momentum(self) -> float:
        """Momentum actually applied (honours ``prescribed_momentum``)."""
        if self.prescribed_momentum is not None:
            return self.prescribed_momentum
        return self.momentum

    # ------------------------------------------------------------------ #
    # optimizer contract
    # ------------------------------------------------------------------ #
    def _raw_step(self) -> None:
        """One tuner + momentum-SGD step (Algorithm 1).

        Overrides the base kernel dispatch so the whole
        measure/tune/update pipeline runs inside the instrumented
        :meth:`~repro.optim.optimizer.Optimizer.step` wrapper.
        """
        if self.fused:
            self._flat.ensure_packed()
        flat_grad = self._clip_gradients()
        self._tune(flat_grad)
        mu = self.effective_momentum()
        alpha = self.effective_lr()
        self._apply_momentum_update(mu, alpha, flat_grad)
        self.t += 1

    def _apply_momentum_update(self, mu: float, alpha: float,
                               flat_grad: Optional[np.ndarray] = None) -> None:
        """Momentum-SGD update; fused when ``flat_grad`` is supplied."""
        if flat_grad is not None:
            x, v = self._flat.buffer, self._velocity
            v *= mu
            v -= alpha * flat_grad
            if self.nesterov:
                x += mu * v - alpha * flat_grad
            else:
                x += v
            return
        for p, g, v in zip(self.params, self.gradients(), self._velocity):
            v *= mu
            v -= alpha * g
            if self.nesterov:
                p.data += mu * v - alpha * g
            else:
                p.data += v

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def _extra_state(self) -> dict:
        return {
            "momentum": self.momentum,
            "measurements": self.measurements.get_state(),
            "lr_ema": self._lr_ema.get_state(),
            "mu_ema": self._mu_ema.get_state(),
            "velocity": self._state_to_lists(self._velocity),
            "clipper_steps": (self.clipper._steps
                              if self.clipper is not None else 0),
        }

    def _load_extra_state(self, extra: dict) -> None:
        self.momentum = extra["momentum"]
        self.measurements.set_state(extra["measurements"])
        self._lr_ema.set_state(extra["lr_ema"])
        self._mu_ema.set_state(extra["mu_ema"])
        self._velocity = self._state_from_lists(extra["velocity"])
        if self.clipper is not None:
            self.clipper._steps = extra["clipper_steps"]

    # introspection used by benchmarks / examples
    def stats(self) -> dict:
        """Current tuner state for logging (Fig. 4-style momentum traces)."""
        base = {
            "lr": self.effective_lr(),
            "momentum": self.effective_momentum(),
            "target_momentum": self.momentum,
        }
        if self.t == 0:
            base.update(hmax=math.nan, hmin=math.nan,
                        variance=math.nan, distance=math.nan)
        else:
            snap = self.measurements.snapshot()
            base.update(hmax=snap.hmax, hmin=snap.hmin,
                        variance=snap.variance, distance=snap.distance)
        return base
