"""Zero-debiased exponential moving averages (Appendix E).

YellowFin's measurement oracles all smooth their raw signals with
exponential averages.  Following Kingma & Ba's zero-debias trick, the
average at step ``t`` is divided by ``1 - beta^t`` so early estimates track
the signal level instead of being biased toward the zero initialization.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

ArrayOrFloat = Union[float, np.ndarray]


class ZeroDebiasEMA:
    """EMA with zero-debias correction; supports scalars and arrays.

    ``debias=False`` disables the correction (plain EMA initialized at 0),
    exposed so the Appendix-E design choice can be ablated.
    """

    def __init__(self, beta: float = 0.999, debias: bool = True):
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = beta
        self.debias = debias
        self._raw: Optional[ArrayOrFloat] = None
        self._t = 0

    def update(self, value: ArrayOrFloat) -> ArrayOrFloat:
        """Fold in a new observation and return the debiased average."""
        self._t += 1
        if self._raw is None:
            self._raw = (1 - self.beta) * np.asarray(value, dtype=np.float64) \
                if isinstance(value, np.ndarray) else (1 - self.beta) * float(value)
        else:
            self._raw = self.beta * self._raw + (1 - self.beta) * value
        return self.value

    @property
    def value(self) -> ArrayOrFloat:
        """Debiased estimate; raises before the first update."""
        if self._raw is None:
            raise RuntimeError("EMA read before any update")
        if not self.debias:
            return self._raw
        return self._raw / (1.0 - self.beta ** self._t)

    @property
    def initialized(self) -> bool:
        return self._raw is not None

    @property
    def steps(self) -> int:
        return self._t

    def get_state(self) -> dict:
        """Serializable snapshot for optimizer checkpointing."""
        raw = self._raw
        if isinstance(raw, np.ndarray):
            raw = raw.copy()
        return {"beta": self.beta, "debias": self.debias, "raw": raw,
                "t": self._t}

    def set_state(self, state: dict) -> None:
        self.beta = state["beta"]
        self.debias = state["debias"]
        raw = state["raw"]
        self._raw = raw.copy() if isinstance(raw, np.ndarray) else raw
        self._t = state["t"]


class LogSpaceEMA(ZeroDebiasEMA):
    """EMA of ``log(value)``, read back through ``exp``.

    Appendix E: curvature estimates can decrease quickly during training, so
    the extremal curvatures ``hmax``/``hmin`` are smoothed on a logarithmic
    scale where fast geometric decay looks linear.
    """

    def update(self, value: ArrayOrFloat) -> ArrayOrFloat:
        value = np.maximum(np.asarray(value, dtype=np.float64), 1e-300)
        super().update(np.log(value))
        return self.value

    @property
    def value(self) -> ArrayOrFloat:
        return float(np.exp(super().value))
