"""The SingleStep tuning rule (paper eq. 15) and its closed-form solution.

SingleStep minimizes the one-step-ahead surrogate of expected squared
distance to the local optimum,

    minimize_{mu, alpha}   mu D^2 + alpha^2 C
    subject to             mu >= ((sqrt(kappa)-1)/(sqrt(kappa)+1))^2,
                           alpha = (1 - sqrt(mu))^2 / hmin,

with kappa = hmax/hmin the (generalized) condition-number estimate.

Substituting the alpha constraint with x = sqrt(mu) gives the scalar
problem  p(x) = x^2 D^2 + (1-x)^4 C / hmin^2  on x in [0, 1).  Setting
p'(x) = 0 yields the depressed cubic  y^3 + p y + p = 0  with  y = x - 1
and  p = D^2 hmin^2 / (2C),  solved exactly by Cardano's formula
(Appendix D: "Vieta's substitution").  Since p(x) is unimodal on [0, 1),
the optimizer is the cubic root clamped by the robust-region lower bound.

This module is pure scalar math over the oracle statistics, so it is the
one stage of the tuner shared verbatim by every execution mode: the
per-tensor and fused (flat-buffer) YellowFin hot paths and the sharded
parameter-server runtime all feed it the same
(variance, distance, hmax, hmin) snapshot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_EPS = 1e-12

__all__ = ["SingleStepResult", "cubic_root", "robust_momentum_floor",
           "single_step"]


@dataclass(frozen=True)
class SingleStepResult:
    """Output of the tuning rule: the hyperparameters for the next step."""

    mu: float
    lr: float
    mu_unconstrained: float  # cubic solution before the robust-region clamp
    mu_robust_floor: float   # ((sqrt(kappa)-1)/(sqrt(kappa)+1))^2


def cubic_root(dist: float, variance: float, hmin: float) -> float:
    """Solve min_x  x^2 D^2 + (1-x)^4 C / hmin^2  for x = sqrt(mu) in [0, 1).

    Returns the unique real root of the stationarity cubic, which Cardano's
    method provides in closed form.  Degenerate cases: with C -> 0 the
    objective is x^2 D^2 and the solution is x = 0; with D -> 0 anything
    with x = 0 (lr = 1/hmin) is optimal.
    """
    if variance <= _EPS or dist <= _EPS:
        return 0.0
    p = dist * dist * hmin * hmin / (2.0 * variance)
    # Depressed cubic y^3 + p*y + p = 0, y = x - 1.
    w3 = (-math.sqrt(p * p + 4.0 / 27.0 * p ** 3) - p) / 2.0
    w = math.copysign(abs(w3) ** (1.0 / 3.0), w3)
    y = w - p / (3.0 * w) if abs(w) > _EPS else 0.0
    x = min(max(y + 1.0, 0.0), 1.0 - _EPS)
    # Cardano computes x = 1 + y from two large near-cancelling terms, so
    # extreme p loses precision.  Polish on q(x) = x^3 - 3x^2 + (3+p)x - 1
    # (the stationarity cubic in x), which is strictly increasing
    # (q' = 3(x-1)^2 + p > 0) and therefore has exactly one real root.
    for _ in range(64):
        q = ((x - 3.0) * x + (3.0 + p)) * x - 1.0
        dq = 3.0 * (x - 1.0) ** 2 + p
        step = q / dq
        x_new = min(max(x - step, 0.0), 1.0 - _EPS)
        if abs(x_new - x) <= 1e-16 * max(x, 1e-16):
            x = x_new
            break
        x = x_new
    return x


def robust_momentum_floor(hmax: float, hmin: float) -> float:
    """Smallest momentum giving homogeneous spectral radii (eq. 9 / 15)."""
    if hmin <= 0.0:
        raise ValueError(f"hmin must be positive, got {hmin}")
    if hmax < hmin:
        raise ValueError(f"need hmax >= hmin, got {hmax} < {hmin}")
    sqrt_kappa = math.sqrt(hmax / hmin)
    return ((sqrt_kappa - 1.0) / (sqrt_kappa + 1.0)) ** 2


def single_step(variance: float, distance: float, hmax: float, hmin: float
                ) -> SingleStepResult:
    """Solve eq. (15): one (mu, lr) pair for the whole model.

    Parameters
    ----------
    variance:
        Gradient-variance estimate ``C``.
    distance:
        Distance-to-optimum estimate ``D``.
    hmax, hmin:
        Extremal generalized-curvature estimates.

    Returns
    -------
    SingleStepResult
        ``mu`` is ``max(cubic solution^2, robust floor)``; ``lr`` is
        ``(1 - sqrt(mu))^2 / hmin`` so that (mu, lr) sits exactly on the
        lower edge of the robust region for the flattest direction.
    """
    x = cubic_root(distance, variance, hmin)
    mu_cubic = x * x
    mu_floor = robust_momentum_floor(hmax, hmin)
    mu = max(mu_cubic, mu_floor)
    lr = (1.0 - math.sqrt(mu)) ** 2 / hmin
    return SingleStepResult(mu=mu, lr=lr,
                            mu_unconstrained=mu_cubic,
                            mu_robust_floor=mu_floor)
