"""Closed-loop YellowFin for asynchronous training (Section 4, Algorithm 5).

Asynchrony with staleness ``tau`` behaves like extra momentum (Mitliagkas
et al., 2016).  Closed-loop YellowFin:

1. models the running system as
   ``E[x_{t+1} - x_t] = mu_T E[x_t - x_{t-1}] - alpha E grad f(x_t)`` (eq. 16);
2. estimates total momentum each step as the elementwise median

   ``mu_hat_T = median((x_{t-tau} - x_{t-tau-1} + alpha g) / (x_{t-tau-1} - x_{t-tau-2}))``

   where ``g`` is the freshly-delivered gradient evaluated at
   ``x_{t-tau-1}`` (eq. 37);
3. closes the loop: ``mu <- mu + gamma (mu_star - mu_hat_T)`` so measured
   total momentum tracks the SingleStep target ``mu_star``.  The resulting
   algorithmic momentum may legitimately go negative (Fig. 4, right).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.yellowfin import YellowFin


class TotalMomentumEstimator:
    """Median-of-ratios estimator of total momentum (eq. 37).

    Parameters
    ----------
    staleness:
        Gradient delay ``tau`` of the running system (0 = synchronous).
    denom_eps:
        Coordinates whose previous displacement is smaller than this are
        excluded from the median (their ratio is numerically meaningless).
    """

    def __init__(self, staleness: int = 0, denom_eps: float = 1e-30):
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        self.staleness = staleness
        self.denom_eps = denom_eps
        # need x_{t-tau}, x_{t-tau-1}, x_{t-tau-2}: keep tau + 3 iterates
        self._iterates: Deque[np.ndarray] = deque(maxlen=staleness + 3)
        self._pending: Optional[tuple] = None  # previous step's (grad, lr)

    def record_iterate(self, x_flat: np.ndarray) -> None:
        """Record the model ``x_t`` right after update ``t`` is applied."""
        self._iterates.append(np.array(x_flat, dtype=np.float64, copy=True))

    @property
    def ready(self) -> bool:
        return len(self._iterates) == self._iterates.maxlen

    def estimate(self, grad_flat: np.ndarray, lr: float) -> Optional[float]:
        """Total-momentum estimate, or None until enough history exists.

        Call once per step, *before* applying the update, with the gradient
        being applied this step (evaluated at ``x_{t-tau}`` in a system with
        delay ``tau``).  Internally the estimator uses the *previous* step's
        gradient — evaluated at ``x_{t-tau-1}`` — so that the deque indices
        line up with eq. (37) for every ``tau >= 0``:

            mu_hat = median( (x_{t-tau} - x_{t-tau-1} + lr * g) /
                             (x_{t-tau-1} - x_{t-tau-2}) ).
        """
        previous = self._pending
        self._pending = (np.array(grad_flat, dtype=np.float64, copy=True),
                         float(lr))
        if previous is None or not self.ready:
            return None
        g_prev, lr_prev = previous
        # deque holds [x_{t-tau-2}, x_{t-tau-1}, x_{t-tau}, ..., x_t]
        x_lag2 = self._iterates[0]
        x_lag1 = self._iterates[1]
        x_lag0 = self._iterates[2]
        numer = x_lag0 - x_lag1 + lr_prev * g_prev
        denom = x_lag1 - x_lag2
        mask = np.abs(denom) > self.denom_eps
        if not mask.any():
            return None
        return float(np.median(numer[mask] / denom[mask]))


class ClosedLoopYellowFin(YellowFin):
    """YellowFin plus the negative-feedback momentum controller.

    Parameters
    ----------
    gamma:
        Feedback gain (Algorithm 5 uses 0.01).
    staleness:
        System staleness ``tau``; with 0 this still works and the controller
        simply keeps algorithmic momentum at the target.
    momentum_bounds:
        Clamp for algorithmic momentum; asynchrony compensation can push it
        below zero (paper Fig. 4 shows approximately -0.2).
    feedback:
        With ``False`` the controller is disabled: algorithmic momentum
        tracks the SingleStep target exactly (plain YellowFin) while total
        momentum is still *measured* — the instrumented open-loop runs of
        Fig. 4 (left and middle panels).
    """

    def __init__(self, params: Iterable[Tensor], gamma: float = 0.01,
                 staleness: int = 0, lr: float = 1e-4, momentum: float = 0.0,
                 momentum_bounds: tuple = (-0.9, 0.999),
                 feedback: bool = True, **kwargs):
        super().__init__(params, lr=lr, momentum=momentum, **kwargs)
        self.gamma = gamma
        self.staleness = staleness
        self.feedback = feedback
        self.momentum_bounds = momentum_bounds
        self.estimator = TotalMomentumEstimator(staleness=staleness)
        self._algorithmic_mu = momentum
        self.last_total_momentum: Optional[float] = None
        # seed the iterate history with the initial model
        self.estimator.record_iterate(self._flat_params())

    def _flat_params(self) -> np.ndarray:
        if self.fused:
            return self._flat.buffer
        return np.concatenate([p.data.reshape(-1) for p in self.params])

    def effective_momentum(self) -> float:
        if self.prescribed_momentum is not None:
            return self.prescribed_momentum
        return self._algorithmic_mu

    def _raw_step(self) -> None:
        """One closed-loop step: tune, measure total momentum, update."""
        if self.fused:
            self._flat.ensure_packed()
        fused_grad = self._clip_gradients()  # clipped flat grad, or None
        grad_flat = (fused_grad if fused_grad is not None
                     else self.flat_gradient())
        self._tune(fused_grad)  # sets target momentum (self.momentum) and lr

        # measure total momentum of the running system
        mu_hat = self.estimator.estimate(grad_flat, self.effective_lr())
        self.last_total_momentum = mu_hat
        if mu_hat is not None and self.feedback:
            lo, hi = self.momentum_bounds
            self._algorithmic_mu = float(np.clip(
                self._algorithmic_mu + self.gamma * (self.momentum - mu_hat),
                lo, hi))
        else:
            # open-loop (feedback off, or estimator still warming up):
            # algorithmic momentum is simply the SingleStep target
            self._algorithmic_mu = self.momentum

        self._apply_momentum_update(self.effective_momentum(),
                                    self.effective_lr(), fused_grad)
        self.t += 1
        self.estimator.record_iterate(self._flat_params())

    def _extra_state(self) -> dict:
        extra = super()._extra_state()
        extra["algorithmic_mu"] = self._algorithmic_mu
        extra["iterates"] = [x.copy() for x in self.estimator._iterates]
        pending = self.estimator._pending
        extra["pending"] = (None if pending is None
                            else (pending[0].copy(), pending[1]))
        return extra

    def _load_extra_state(self, extra: dict) -> None:
        super()._load_extra_state(extra)
        self._algorithmic_mu = extra["algorithmic_mu"]
        self.estimator._iterates.clear()
        for x in extra["iterates"]:
            self.estimator._iterates.append(x.copy())
        pending = extra["pending"]
        self.estimator._pending = (None if pending is None
                                   else (pending[0].copy(), pending[1]))

    def stats(self) -> dict:
        base = super().stats()
        base["algorithmic_momentum"] = self._algorithmic_mu
        base["total_momentum"] = (self.last_total_momentum
                                  if self.last_total_momentum is not None
                                  else float("nan"))
        return base
