"""Adaptive gradient clipping (Section 3.3 / Appendix F).

YellowFin already tracks the running maximum of squared gradient norms,
``hmax``.  The paper posits ``sqrt(hmax)`` as the ideal clipping threshold:
gradients larger than the recent envelope are treated as exploding and
rescaled.  To keep a single catastrophic spike from permanently inflating
the envelope, the raw window maximum entering the EMA is capped at
``100 * hmax`` (eq. 35) — handled by
:class:`~repro.core.measurements.CurvatureRange` with
``limit_envelope_growth=True``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.grad_clip import global_grad_norm


class AdaptiveClipper:
    """Clip gradient norm at ``sqrt(hmax)`` using the tuner's own envelope.

    The clipper is a passive consumer of the curvature range: it never
    maintains state of its own, so threshold and tuner always agree.
    """

    def __init__(self, warmup_steps: int = 1):
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.warmup_steps = warmup_steps
        self._steps = 0
        self.last_threshold: Optional[float] = None
        self.last_norm: Optional[float] = None
        self.clip_events = 0

    def clip(self, params: Iterable[Tensor], hmax: Optional[float]) -> float:
        """Rescale gradients in place; returns the pre-clip global norm.

        During warm-up (or before ``hmax`` exists) gradients pass through
        unchanged, matching the tuner's slow start.
        """
        params = list(params)
        norm = global_grad_norm(params)
        self._steps += 1
        self.last_norm = norm
        if hmax is None or self._steps <= self.warmup_steps:
            self.last_threshold = None
            return norm
        threshold = float(np.sqrt(max(hmax, 0.0)))
        self.last_threshold = threshold
        if norm > threshold > 0.0:
            scale = threshold / norm
            for p in params:
                if p.grad is not None:
                    p.grad = p.grad * scale
            self.clip_events += 1
        return norm

    def clip_flat(self, flat_grad: np.ndarray,
                  hmax: Optional[float]) -> float:
        """Fused-path variant of :meth:`clip` on a packed gradient vector.

        Rescales ``flat_grad`` in place; returns the pre-clip norm.  Same
        warm-up and threshold semantics as the per-tensor path.
        """
        norm = float(np.sqrt(np.dot(flat_grad, flat_grad)))
        self._steps += 1
        self.last_norm = norm
        if hmax is None or self._steps <= self.warmup_steps:
            self.last_threshold = None
            return norm
        threshold = float(np.sqrt(max(hmax, 0.0)))
        self.last_threshold = threshold
        if norm > threshold > 0.0:
            flat_grad *= threshold / norm
            self.clip_events += 1
        return norm
