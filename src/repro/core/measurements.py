"""Gradient-only measurement oracles (paper Algorithms 2-4).

All three oracles consume only minibatch gradients, relying on the
negative log-probability assumption under which the Fisher information
(expected outer product of gradients) approximates the Hessian.

- :class:`CurvatureRange` — extremal curvature estimates ``hmax, hmin``
  from ``h_t = ||g_t||^2`` over a sliding window (Algorithm 2), smoothed in
  log space with zero-debias (Appendix E).  Optionally limits the growth of
  the ``hmax`` envelope (eq. 35) for adaptive clipping robustness.
- :class:`GradientVariance` — ``C = 1^T (E[g*g] - E[g]^2)`` (Algorithm 3).
- :class:`DistanceToOpt` — ``D = EMA(||g||) / EMA(h)`` (Algorithm 4), from
  the quadratic bound ``||∇f(x)|| <= ||H|| ||x - x*||``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.core.ema import LogSpaceEMA, ZeroDebiasEMA


class CurvatureRange:
    """Sliding-window extremal-curvature estimator (Algorithm 2).

    Parameters
    ----------
    beta:
        EMA smoothing (paper default 0.999).
    window:
        Sliding-window width ``w`` (paper default 20).
    limit_envelope_growth:
        Apply eq. (35): ``hmax <- beta hmax + (1-beta) min(hmax_t, 100 hmax)``,
        protecting the adaptive clipping threshold from single-step spikes.
    log_space, zero_debias:
        Appendix-E design choices, exposed for ablation: smooth the
        envelopes on a logarithmic scale, and zero-debias the EMAs.
    """

    def __init__(self, beta: float = 0.999, window: int = 20,
                 limit_envelope_growth: bool = False,
                 log_space: bool = True, zero_debias: bool = True):
        self.beta = beta
        self.window = window
        self.limit_envelope_growth = limit_envelope_growth
        ema_cls = LogSpaceEMA if log_space else ZeroDebiasEMA
        self._history: Deque[float] = deque(maxlen=window)
        self._hmax = ema_cls(beta, debias=zero_debias)
        self._hmin = ema_cls(beta, debias=zero_debias)

    def update(self, grad_sq_norm: float) -> "CurvatureRange":
        """Fold in ``h_t = ||g_t||^2`` for the current step."""
        h_t = float(grad_sq_norm)
        if h_t < 0:
            raise ValueError(f"squared norm must be non-negative, got {h_t}")
        self._history.append(max(h_t, 1e-300))
        hmax_t = max(self._history)
        hmin_t = min(self._history)
        if self.limit_envelope_growth and self._hmax.initialized:
            hmax_t = min(hmax_t, 100.0 * self._hmax.value)
        self._hmax.update(hmax_t)
        self._hmin.update(hmin_t)
        return self

    @property
    def hmax(self) -> float:
        return float(self._hmax.value)

    @property
    def hmin(self) -> float:
        return float(self._hmin.value)


class GradientVariance:
    """Gradient-variance estimator (Algorithm 3).

    Maintains elementwise EMAs of ``g`` and ``g*g``; the variance is
    the summed elementwise difference, clipped at zero (EMA noise can make
    individual coordinates slightly negative).
    """

    def __init__(self, beta: float = 0.999, zero_debias: bool = True):
        self._g = ZeroDebiasEMA(beta, debias=zero_debias)
        self._g2 = ZeroDebiasEMA(beta, debias=zero_debias)

    def update(self, grad: np.ndarray) -> "GradientVariance":
        grad = np.asarray(grad, dtype=np.float64)
        self._g.update(grad)
        self._g2.update(grad * grad)
        return self

    @property
    def variance(self) -> float:
        g = self._g.value
        g2 = self._g2.value
        return float(np.maximum(g2 - g * g, 0.0).sum())


class DistanceToOpt:
    """Distance-to-optimum estimator (Algorithm 4)."""

    def __init__(self, beta: float = 0.999, zero_debias: bool = True):
        self._norm = ZeroDebiasEMA(beta, debias=zero_debias)  # ||g_t||
        self._h = ZeroDebiasEMA(beta, debias=zero_debias)     # ||g_t||^2
        self._dist = ZeroDebiasEMA(beta, debias=zero_debias)  # ||g|| / h

    def update(self, grad_norm: float) -> "DistanceToOpt":
        grad_norm = float(grad_norm)
        self._norm.update(grad_norm)
        self._h.update(grad_norm * grad_norm)
        denom = max(self._h.value, 1e-300)
        self._dist.update(self._norm.value / denom)
        return self

    @property
    def distance(self) -> float:
        return float(self._dist.value)


@dataclass
class MeasurementSnapshot:
    """One step's tuner inputs: the quantities consumed by SingleStep."""

    hmax: float
    hmin: float
    variance: float
    distance: float
    grad_norm: float


class GradientMeasurements:
    """Bundles the three oracles behind a single per-step ``update``.

    This is the "measurement" half of Algorithm 1; :class:`YellowFin`
    combines it with the SingleStep rule.
    """

    def __init__(self, beta: float = 0.999, window: int = 20,
                 limit_envelope_growth: bool = False,
                 log_space_curvature: bool = True, zero_debias: bool = True):
        self.curvature = CurvatureRange(
            beta=beta, window=window,
            limit_envelope_growth=limit_envelope_growth,
            log_space=log_space_curvature, zero_debias=zero_debias)
        self.variance = GradientVariance(beta=beta, zero_debias=zero_debias)
        self.distance = DistanceToOpt(beta=beta, zero_debias=zero_debias)

    def update(self, grads: List[np.ndarray]) -> MeasurementSnapshot:
        """Fold in this step's per-parameter gradient list."""
        flat_sq = 0.0
        for g in grads:
            flat_sq += float(np.sum(g * g))
        grad_norm = float(np.sqrt(flat_sq))
        self.curvature.update(flat_sq)
        self.distance.update(grad_norm)
        # variance operates on the concatenated gradient vector
        flat = np.concatenate([np.asarray(g, dtype=np.float64).reshape(-1)
                               for g in grads])
        self.variance.update(flat)
        return self.snapshot(grad_norm)

    def update_flat(self, flat: np.ndarray) -> MeasurementSnapshot:
        """Fold in this step's gradient as one pre-flattened vector.

        The fused optimizer hot path: identical semantics to
        :meth:`update` with the concatenated gradient, but skips the
        per-tensor concatenation entirely.
        """
        flat = np.asarray(flat, dtype=np.float64)
        flat_sq = float(np.dot(flat, flat))
        grad_norm = float(np.sqrt(flat_sq))
        self.curvature.update(flat_sq)
        self.distance.update(grad_norm)
        self.variance.update(flat)
        return self.snapshot(grad_norm)

    def snapshot(self, grad_norm: float = float("nan")) -> MeasurementSnapshot:
        return MeasurementSnapshot(
            hmax=self.curvature.hmax,
            hmin=self.curvature.hmin,
            variance=self.variance.variance,
            distance=self.distance.distance,
            grad_norm=grad_norm,
        )

    def get_state(self) -> dict:
        """Serializable oracle state for optimizer checkpointing."""
        return {
            "curvature_history": list(self.curvature._history),
            "hmax": self.curvature._hmax.get_state(),
            "hmin": self.curvature._hmin.get_state(),
            "var_g": self.variance._g.get_state(),
            "var_g2": self.variance._g2.get_state(),
            "dist_norm": self.distance._norm.get_state(),
            "dist_h": self.distance._h.get_state(),
            "dist_dist": self.distance._dist.get_state(),
        }

    def set_state(self, state: dict) -> None:
        self.curvature._history.clear()
        self.curvature._history.extend(state["curvature_history"])
        self.curvature._hmax.set_state(state["hmax"])
        self.curvature._hmin.set_state(state["hmin"])
        self.variance._g.set_state(state["var_g"])
        self.variance._g2.set_state(state["var_g2"])
        self.distance._norm.set_state(state["dist_norm"])
        self.distance._h.set_state(state["dist_h"])
        self.distance._dist.set_state(state["dist_dist"])
