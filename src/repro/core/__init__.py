"""YellowFin: automatic momentum and learning-rate tuning for momentum SGD.

This package is the paper's primary contribution:

- :mod:`repro.core.ema` — zero-debiased exponential moving averages
  (Appendix E), including the log-space variant used for the curvature
  envelope.
- :mod:`repro.core.measurements` — the gradient-only measurement oracles
  CurvatureRange / Variance / Distance (Algorithms 2–4).
- :mod:`repro.core.single_step` — the SingleStep rule (eq. 15) solved in
  closed form via Cardano's method (Appendix D).
- :mod:`repro.core.yellowfin` — the :class:`YellowFin` optimizer
  (Algorithm 1) with slow start and optional adaptive clipping.
- :mod:`repro.core.clipping` — adaptive gradient clipping at ``sqrt(hmax)``
  with bounded envelope growth (Section 3.3, Appendix F).
- :mod:`repro.core.closed_loop` — total-momentum estimation and the
  negative-feedback controller for asynchronous training (Algorithm 5).
"""

from repro.core.ema import ZeroDebiasEMA, LogSpaceEMA
from repro.core.measurements import (CurvatureRange, GradientVariance,
                                     DistanceToOpt, GradientMeasurements)
from repro.core.single_step import single_step, SingleStepResult
from repro.core.yellowfin import YellowFin
from repro.core.clipping import AdaptiveClipper
from repro.core.closed_loop import TotalMomentumEstimator, ClosedLoopYellowFin

__all__ = [
    "ZeroDebiasEMA", "LogSpaceEMA",
    "CurvatureRange", "GradientVariance", "DistanceToOpt",
    "GradientMeasurements",
    "single_step", "SingleStepResult",
    "YellowFin", "AdaptiveClipper",
    "TotalMomentumEstimator", "ClosedLoopYellowFin",
]
