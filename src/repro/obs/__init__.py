"""Unified tracing, metrics, and profiling across all five backends.

``repro.obs`` is the observability layer of the stack: one
explicitly-scoped session (:class:`ObsSession`, usually entered via
:func:`observe` or ``run(..., obs=True)``) bundles up to three
components —

- :class:`Tracer` — nested spans and instant events with wall-time
  and (via ``args``) deterministic sim-time, recorded from the run
  API, the cluster event loop, the vec engine, and the mp runtime;
  exportable as JSONL and Chrome ``trace_event`` JSON for Perfetto;
- :class:`MetricsRegistry` — counters/gauges/histograms (cache
  hits, queue depth, staleness, respawns) plus the per-iteration
  subscriber hook that future streaming consumers attach to;
- :class:`Profiler` — accumulating timing for hot paths (fused
  optimizer kernels, mp transport and codec), summarised by the
  ``python -m repro trace`` CLI.

Components are capability-registered under the ``"obs"`` registry
kind, so ``registry.build("obs", "tracer")`` is the construction path
and alternative implementations can be swapped in.

Two contracts every instrumentation site honours:

- **zero perturbation** — recording only reads run state and never
  touches any RNG, so records are bit-identical with observability on
  or off (``tests/test_obs_differential.py`` proves this for all five
  backends, including the real-process mp backend);
- **near-zero disabled cost** — sites are gated on a single
  :func:`active` check, measured by the committed
  ``BENCH_obs_overhead.json`` at <2% of the fig01 headline step.

See ``docs/observability.md`` for the tour.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import Profiler
from repro.obs.session import (ObsSession, StepTimer, active, enabled,
                               observe)
from repro.obs.tracer import Tracer, validate_chrome_trace
from repro.registry import registry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "Profiler",
    "StepTimer",
    "Tracer",
    "active",
    "enabled",
    "observe",
    "validate_chrome_trace",
]

registry.register(
    "obs", "tracer", Tracer,
    description="nested span + instant event recorder with JSONL and "
                "Chrome trace_event export")
registry.register(
    "obs", "metrics", MetricsRegistry,
    description="counter/gauge/histogram store with a per-iteration "
                "subscriber hook")
registry.register(
    "obs", "profiler", Profiler,
    description="accumulating hot-path timing profiler (optimizer "
                "kernels, transport, codec)")
