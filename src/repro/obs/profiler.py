"""Opt-in accumulating profiler for hot paths.

:class:`Profiler` aggregates named timing samples — fused optimizer
kernels, mp transport send/recv waits, codec encode/decode — into
count/total/min/max accumulators.  Unlike the tracer it keeps no
per-event records, so it is safe on paths that fire thousands of times
per run; the trade-off is that it reports aggregates only.

Samples arrive either pre-measured via :meth:`Profiler.add` (the
pattern the optimizer and transport hot paths use: one
``perf_counter`` pair guarded by a single ``active()`` check) or via
the :meth:`Profiler.sample` context manager for colder call sites.

:meth:`Profiler.render_top` formats the aggregate table the
``python -m repro trace`` CLI prints — the ``repro top``-style view of
where a run's time went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict


class Profiler:
    """Accumulating timing profiler keyed by sample name."""

    def __init__(self):
        self._stats: Dict[str, dict] = {}

    def add(self, name: str, seconds: float) -> None:
        """Fold one pre-measured duration into the ``name`` bucket.

        Parameters
        ----------
        name : str
            Hot-path label, e.g. ``"optimizer.YellowFin.fused"`` or
            ``"mp.transport.send"``.
        seconds : float
            Measured duration.
        """
        stat = self._stats.get(name)
        if stat is None:
            stat = {"count": 0, "total": 0.0,
                    "min": float("inf"), "max": float("-inf")}
            self._stats[name] = stat
        stat["count"] += 1
        stat["total"] += seconds
        if seconds < stat["min"]:
            stat["min"] = seconds
        if seconds > stat["max"]:
            stat["max"] = seconds

    @contextmanager
    def sample(self, name: str):
        """Time the enclosed block and :meth:`add` it under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def summary(self) -> dict:
        """Aggregates per name: count, total, mean, min, max (seconds)."""
        out = {}
        for name, stat in sorted(self._stats.items()):
            out[name] = {
                "count": stat["count"], "total_s": stat["total"],
                "mean_s": stat["total"] / stat["count"],
                "min_s": stat["min"], "max_s": stat["max"],
            }
        return out

    def render_top(self, limit: int = 10) -> str:
        """Format the heaviest sample buckets as an aligned text table.

        Parameters
        ----------
        limit : int
            Maximum number of rows, ordered by total time descending.

        Returns
        -------
        str
            A ``repro top``-style table, or a placeholder line when no
            samples were recorded.
        """
        if not self._stats:
            return "(no profiler samples recorded)"
        rows = sorted(self._stats.items(),
                      key=lambda item: item[1]["total"], reverse=True)
        width = max(len(name) for name, _ in rows[:limit])
        width = max(width, len("name"))
        lines = [f"{'name':<{width}}  {'count':>8}  {'total':>10}  "
                 f"{'mean':>10}  {'max':>10}"]
        for name, stat in rows[:limit]:
            mean = stat["total"] / stat["count"]
            lines.append(
                f"{name:<{width}}  {stat['count']:>8d}  "
                f"{stat['total'] * 1e3:>8.3f}ms  {mean * 1e6:>8.2f}us  "
                f"{stat['max'] * 1e6:>8.2f}us")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._stats)

    def __repr__(self) -> str:
        return f"Profiler(buckets={len(self._stats)})"
