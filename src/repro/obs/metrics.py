"""Counters, gauges, and histograms with a per-iteration subscriber hook.

:class:`MetricsRegistry` is the numeric half of an observability
session: instrumentation sites get-or-create named instruments
(:meth:`~MetricsRegistry.counter`, :meth:`~MetricsRegistry.gauge`,
:meth:`~MetricsRegistry.histogram`) and update them as a run executes
— cache hits in the run API, queue depth and staleness in the cluster
event loop, fallback and respawn counts in the vec and mp layers.
:meth:`~MetricsRegistry.snapshot` renders everything as plain dicts,
which is what :meth:`repro.obs.session.ObsSession.report` attaches to
``RunResult.obs``.

The registry also carries the **live-metrics seam**: callables added
with :meth:`~MetricsRegistry.subscribe` receive every
:meth:`~MetricsRegistry.emit` call — the cluster runtime emits one
payload per committed iteration (step, staleness, worker, sim_time,
queue depth), which is the hook a future ``repro serve`` daemon will
stream from.  Subscribers run synchronously in the recording process;
they must not mutate run state.

Like the tracer, instruments only *read* run state and never touch any
RNG, so attaching metrics cannot perturb the deterministic records
contract.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class Counter:
    """Monotonically increasing count (cache hits, commits, respawns).

    Attributes
    ----------
    value : int or float
        Current total.
    """

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter(value={self.value})"


class Gauge:
    """Last-observed value of a fluctuating quantity (queue depth).

    Attributes
    ----------
    value : float
        Most recently set value (``0.0`` before the first set).
    """

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge(value={self.value})"


class Histogram:
    """Streaming summary of a distribution (staleness, wait times).

    Keeps count/total/min/max rather than raw samples, so observing is
    O(1) and the memory footprint is independent of run length.
    """

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the running summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict:
        """Plain-dict summary: count, total, mean, min, max.

        An empty histogram reports ``mean``/``min``/``max`` of 0.0 so
        the snapshot stays JSON-serialisable.
        """
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max}

    def __repr__(self) -> str:
        return f"Histogram(count={self.count})"


class MetricsRegistry:
    """Named instrument store plus the per-iteration subscriber hook.

    Instruments are created on first use and shared by name, so
    instrumentation sites in different modules can update the same
    counter without coordination.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._subscribers: List[Callable[[int, dict], None]] = []

    # ------------------------------------------------------------- #
    # instruments
    # ------------------------------------------------------------- #
    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` registered under ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` registered under ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the :class:`Histogram` registered under ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram()
        return self._histograms[name]

    # ------------------------------------------------------------- #
    # streaming
    # ------------------------------------------------------------- #
    def subscribe(self, callback: Callable[[int, dict], None]) -> None:
        """Register ``callback(step, payload)`` for every :meth:`emit`.

        This is the live-metrics seam: the cluster runtime emits one
        payload per committed iteration, and a streaming consumer (the
        future ``repro serve``) subscribes here.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[int, dict], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def emit(self, step: int, payload: dict) -> None:
        """Deliver a per-iteration payload to all subscribers."""
        for callback in self._subscribers:
            callback(step, payload)

    # ------------------------------------------------------------- #
    # export
    # ------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """All instruments as plain JSON-serialisable dicts.

        Returns
        -------
        dict
            ``{"counters": {name: value}, "gauges": {name: value},
            "histograms": {name: summary_dict}}``.
        """
        return {
            "counters": {k: v.value for k, v in sorted(self._counters.items())},
            "gauges": {k: v.value for k, v in sorted(self._gauges.items())},
            "histograms": {k: v.summary()
                           for k, v in sorted(self._histograms.items())},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
