"""Explicitly-scoped observability sessions and the shared step timer.

The central design constraint of ``repro.obs`` is that instrumentation
must cost (almost) nothing when nobody is looking.  Every
instrumentation site in the run API, cluster event loop, vec engine,
and mp runtime performs exactly one cheap check — :func:`active`
returning the module-level session or ``None`` — and only does
recording work when a session is installed.  The committed
``BENCH_obs_overhead.json`` record gates that disabled cost at <2% of
the fig01 headline optimizer step.

Sessions are *explicitly scoped*: :class:`ObsSession` is a context
manager that installs itself as the process-wide active session on
entry and restores the previous one on exit, so observability never
leaks past the ``with`` block (or the ``run(..., obs=...)`` call) that
requested it.  Nested sessions shadow outer ones; the innermost wins.

:class:`StepTimer` is the one wall-clock timer every backend uses for
its headline ``wall_s`` measurement — it replaces the four
copy-pasted ``time.perf_counter()`` blocks that previously lived in
``run/backends.py``, ``vec/runner.py``, ``mp/backend.py``, and
``mp/freerun.py``, and doubles as a tracer span + profiler sample when
a session is active.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer

_ACTIVE: Optional["ObsSession"] = None


def active() -> Optional["ObsSession"]:
    """The currently installed :class:`ObsSession`, or ``None``.

    This is the single guard every instrumentation site calls; its
    cost when no session is installed (one global read and a ``None``
    check) is what the disabled-overhead benchmark measures.
    """
    return _ACTIVE


def enabled() -> bool:
    """Whether an observability session is currently installed."""
    return _ACTIVE is not None


class ObsSession:
    """A scoped bundle of tracer, metrics registry, and profiler.

    Any component may be ``None``, in which case instrumentation
    sites skip that kind of recording — e.g. a metrics-only session
    collects counters without paying for span records.

    Parameters
    ----------
    tracer : Tracer, optional
        Span/instant recorder.
    metrics : MetricsRegistry, optional
        Counter/gauge/histogram store with the subscriber hook.
    profiler : Profiler, optional
        Hot-path timing accumulator.

    Examples
    --------
    >>> from repro.obs import ObsSession, Tracer
    >>> with ObsSession(tracer=Tracer()) as session:
    ...     pass  # instrumented code records into session.tracer
    >>> session.tracer.to_chrome_trace("trace.json")  # doctest: +SKIP
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[Profiler] = None):
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self._previous: Optional["ObsSession"] = None

    @classmethod
    def from_registry(cls, trace: bool = True, metrics: bool = True,
                      profile: bool = True) -> "ObsSession":
        """Build a session from the capability registry.

        Components are constructed via ``registry.build("obs", ...)``
        under the names ``"tracer"``, ``"metrics"``, and
        ``"profiler"``, so alternative implementations can be swapped
        in by re-registering — the same extension seam every other
        component family (optimizers, delays, backends) uses.

        Parameters
        ----------
        trace, metrics, profile : bool
            Which components to build; disabled ones stay ``None``.
        """
        from repro.registry import registry

        return cls(
            tracer=registry.build("obs", "tracer") if trace else None,
            metrics=registry.build("obs", "metrics") if metrics else None,
            profiler=registry.build("obs", "profiler") if profile else None,
        )

    def __enter__(self) -> "ObsSession":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    def report(self) -> dict:
        """Plain-dict summary of everything the session recorded.

        This is the payload :func:`repro.run.api.run` attaches to
        ``RunResult.obs``.  Keys are present only for components the
        session carries: ``"tracer"`` (event totals + per-category
        counts), ``"metrics"`` (the registry snapshot), and
        ``"profiler"`` (aggregate timings).
        """
        out: dict = {}
        if self.tracer is not None:
            out["tracer"] = self.tracer.summary()
        if self.metrics is not None:
            out["metrics"] = self.metrics.snapshot()
        if self.profiler is not None:
            out["profiler"] = self.profiler.summary()
        return out

    def __repr__(self) -> str:
        parts = [name for name, comp in (("tracer", self.tracer),
                                         ("metrics", self.metrics),
                                         ("profiler", self.profiler))
                 if comp is not None]
        return f"ObsSession({', '.join(parts) or 'empty'})"


@contextmanager
def observe(trace: bool = True, metrics: bool = True, profile: bool = True):
    """Install a registry-built :class:`ObsSession` for the block.

    The one-line way to observe any instrumented code path::

        with observe() as session:
            outcome = run(specs, backend="cluster")
        print(session.profiler.render_top())

    Parameters
    ----------
    trace, metrics, profile : bool
        Which components the session carries (see
        :meth:`ObsSession.from_registry`).

    Yields
    ------
    ObsSession
        The installed session; it is uninstalled (and the previous
        session restored) when the block exits.
    """
    session = ObsSession.from_registry(trace=trace, metrics=metrics,
                                       profile=profile)
    with session:
        yield session


class StepTimer:
    """The shared wall-clock timer for backend step/run measurement.

    Measures elapsed wall time with ``time.perf_counter`` exactly as
    the four per-backend copies it replaces did, and — only when an
    observability session is active at :meth:`stop` time — records the
    same interval as a tracer span and a profiler sample, so timing
    and tracing always agree on the measured window.

    Use as a context manager for straight-line regions, or via
    explicit :meth:`start`/:meth:`stop` with the live :attr:`elapsed`
    property for deadline loops (``mp.freerun`` polls ``elapsed``
    against its timeout).

    Parameters
    ----------
    name : str
        Measured-region label, e.g. ``"scenario:fig01"``.
    cat : str
        Subsystem category for the tracer span (``"run.backend"``,
        ``"mp.backend"``, ...).
    """

    def __init__(self, name: str, cat: str = "run"):
        self.name = name
        self.cat = cat
        self._start: Optional[float] = None
        self._stop: Optional[float] = None

    def start(self) -> "StepTimer":
        """Begin (or restart) timing; returns ``self`` for chaining."""
        self._start = time.perf_counter()
        self._stop = None
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` — live while running, frozen
        after :meth:`stop`, and 0.0 before the timer ever started."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start

    def stop(self, **args) -> float:
        """Stop the timer and return the elapsed seconds.

        When an observability session is active, also records the
        interval as a ``complete`` tracer span and a profiler sample
        (keyed ``"<cat>:<name>"``).  Extra keyword arguments become
        the span's ``args`` payload.  Idempotent: a second call
        returns the frozen elapsed time without re-recording.
        """
        if self._start is None:
            raise RuntimeError("StepTimer.stop() before start()")
        if self._stop is not None:
            return self.elapsed
        self._stop = time.perf_counter()
        session = active()
        if session is not None:
            if session.tracer is not None:
                session.tracer.complete(self.name, self.cat,
                                        self._start, self._stop, **args)
            if session.profiler is not None:
                session.profiler.add(f"{self.cat}:{self.name}", self.elapsed)
        return self.elapsed

    def __enter__(self) -> "StepTimer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = ("idle" if self._start is None
                 else "running" if self._stop is None else "stopped")
        return f"StepTimer({self.name!r}, cat={self.cat!r}, {state})"
