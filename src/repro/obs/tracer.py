"""Span/event tracer with JSONL and Chrome ``trace_event`` export.

:class:`Tracer` records two event shapes into an in-memory list of
plain dicts:

- **spans** — nested durations opened with :meth:`Tracer.span` (a
  context manager) or recorded after the fact with
  :meth:`Tracer.complete`; and
- **instants** — point-in-time markers (:meth:`Tracer.instant`), e.g.
  a fault firing or a vec-engine fallback transition.

Every record carries a wall-clock timestamp relative to the tracer's
construction (``time.perf_counter`` based) plus whatever the caller
puts in ``args`` — instrumentation sites in the cluster runtime pass
the deterministic simulated time as ``sim_time``, so a trace answers
both "when did this happen on the wall clock" and "when in simulated
time".

Export targets:

- :meth:`Tracer.to_jsonl` — one record per line, the raw form;
- :meth:`Tracer.chrome_trace` / :meth:`Tracer.to_chrome_trace` — the
  Chrome ``trace_event`` JSON object format (``{"traceEvents":
  [...]}``) with ``ph: "X"`` complete events and ``ph: "i"`` instants,
  loadable in Perfetto / ``chrome://tracing``.

:func:`validate_chrome_trace` structurally checks an exported payload
— the round-trip gate ``make obs-smoke`` runs on every trace the test
suite produces.

Recording never touches any RNG and never mutates traced objects, so
attaching a tracer cannot perturb the deterministic records contract
(proven by the differential suite in ``tests/test_obs_differential.py``).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

#: Event phases the exporter emits and the validator accepts.
CHROME_PHASES = ("X", "i", "M")


class Tracer:
    """In-memory recorder of nested spans and instant events.

    Parameters
    ----------
    pid : int, optional
        Process id stamped into exported Chrome events; defaults to
        the current process id.

    Attributes
    ----------
    records : list of dict
        The recorded events, in completion order.  Span records carry
        ``{"ph": "X", "name", "cat", "ts", "dur", "depth", "args"}``
        (seconds relative to tracer construction); instants carry
        ``{"ph": "i", ...}`` without ``dur``.
    """

    def __init__(self, pid: Optional[int] = None):
        self.pid = int(os.getpid() if pid is None else pid)
        self.records: List[dict] = []
        self._t0 = time.perf_counter()
        self._depth = 0

    # ------------------------------------------------------------- #
    # recording
    # ------------------------------------------------------------- #
    def _rel(self, stamp: float) -> float:
        return max(0.0, stamp - self._t0)

    @contextmanager
    def span(self, name: str, cat: str = "default", **args):
        """Record a nested duration span around the enclosed block.

        Parameters
        ----------
        name : str
            Span label (e.g. ``"event:arrival"``).
        cat : str
            Subsystem category (``"cluster.events"``, ``"optimizer"``,
            ...); Chrome/Perfetto group and filter by it.
        **args
            Extra payload recorded under ``args`` — pass ``sim_time``
            here to stamp the deterministic simulated clock.
        """
        start = time.perf_counter()
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            end = time.perf_counter()
            self.records.append({
                "ph": "X", "name": str(name), "cat": str(cat),
                "ts": self._rel(start), "dur": max(0.0, end - start),
                "depth": self._depth, "args": dict(args),
            })

    def complete(self, name: str, cat: str, start: float, end: float,
                 **args) -> None:
        """Record an already-measured span from absolute stamps.

        Parameters
        ----------
        name, cat : str
            Span label and subsystem category.
        start, end : float
            ``time.perf_counter`` stamps taken by the caller (the
            shared :class:`~repro.obs.session.StepTimer` uses this so
            timing and tracing read the same clock exactly once).
        **args
            Extra payload recorded under ``args``.
        """
        self.records.append({
            "ph": "X", "name": str(name), "cat": str(cat),
            "ts": self._rel(start), "dur": max(0.0, end - start),
            "depth": self._depth, "args": dict(args),
        })

    def instant(self, name: str, cat: str = "default", **args) -> None:
        """Record a point-in-time marker (fault fired, fallback taken).

        Parameters
        ----------
        name, cat : str
            Event label and subsystem category.
        **args
            Extra payload recorded under ``args``.
        """
        self.records.append({
            "ph": "i", "name": str(name), "cat": str(cat),
            "ts": self._rel(time.perf_counter()),
            "depth": self._depth, "args": dict(args),
        })

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.records)

    def categories(self) -> Dict[str, int]:
        """Recorded event counts per category."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record["cat"]] = counts.get(record["cat"], 0) + 1
        return counts

    def summary(self) -> dict:
        """Compact report block: totals and per-category counts."""
        spans = sum(1 for r in self.records if r["ph"] == "X")
        return {"events": len(self.records), "spans": spans,
                "instants": len(self.records) - spans,
                "by_category": self.categories()}

    # ------------------------------------------------------------- #
    # export
    # ------------------------------------------------------------- #
    def to_jsonl(self, path: Union[str, "os.PathLike"]) -> str:
        """Write the raw records as JSON Lines; returns the path."""
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        return str(path)

    def chrome_trace(self) -> dict:
        """The records as a Chrome ``trace_event`` JSON object.

        Returns
        -------
        dict
            ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with
            timestamps/durations in microseconds, one process-name
            metadata event, and every span/instant on thread 0 —
            nesting renders from interval containment, as Perfetto
            expects for same-thread complete events.
        """
        events: List[dict] = [{
            "ph": "M", "name": "process_name", "pid": self.pid,
            "tid": 0, "args": {"name": "repro"},
        }]
        for record in self.records:
            event = {
                "ph": record["ph"], "name": record["name"],
                "cat": record["cat"], "pid": self.pid, "tid": 0,
                "ts": round(record["ts"] * 1e6, 3),
                "args": dict(record["args"]),
            }
            if record["ph"] == "X":
                event["dur"] = round(record["dur"] * 1e6, 3)
            else:
                event["s"] = "t"  # thread-scoped instant
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_trace(self, path: Union[str, "os.PathLike"]) -> str:
        """Write :meth:`chrome_trace` as JSON; returns the path."""
        payload = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return str(path)

    def __repr__(self) -> str:
        return (f"Tracer(events={len(self.records)}, "
                f"categories={sorted(self.categories())})")


def validate_chrome_trace(payload: Union[dict, str, "os.PathLike"]) -> dict:
    """Structurally validate a Chrome ``trace_event`` export.

    The round-trip half of the ``make obs-smoke`` gate: every trace
    the suite exports must come back through this validator, so a
    malformed export fails the build instead of failing silently in a
    viewer.

    Parameters
    ----------
    payload : dict or path
        The trace object, or a path to an exported JSON file.

    Returns
    -------
    dict
        The validated payload (parsed from disk when a path was
        given).

    Raises
    ------
    ValueError
        When the payload is not the JSON-object trace format, an
        event is missing required fields, uses an unknown phase, or
        carries negative timestamps/durations.
    """
    if not isinstance(payload, dict):
        with open(payload) as fh:
            payload = json.load(fh)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(
            "not a Chrome trace: expected a JSON object with a "
            "'traceEvents' key")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be objects")
        phase = event.get("ph")
        if phase not in CHROME_PHASES:
            raise ValueError(
                f"{where}: unknown phase {phase!r} (expected one of "
                f"{CHROME_PHASES})")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing or empty 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key!r} must be an int")
        if phase == "M":
            continue
        if not isinstance(event.get("cat"), str) or not event["cat"]:
            raise ValueError(f"{where}: missing or empty 'cat'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(
                f"{where}: 'ts' must be a non-negative number, "
                f"got {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: complete events need a non-negative "
                    f"'dur', got {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
    return payload
