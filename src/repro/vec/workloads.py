"""Batched workload evaluation for the replicate engine.

The engine needs, per simulated read, every replicate's loss and
gradient.  Two evaluation strategies implement that contract:

- :class:`ModelReplicateAdapter` — the universal fallback: builds ``R``
  ordinary scalar models (one per replicate seed), packs their
  parameters into a shared :class:`~repro.autograd.flat.
  BatchedFlatParams` matrix, and evaluates each replicate's autograd
  loss closure in turn.  Gradients are bit-identical to the scalar path
  by construction (it *is* the scalar computation); only the optimizer
  and simulation layers are batched.
- **Vectorized workloads** — workloads registered in the vec registry
  additionally provide a fully batched evaluator whose per-row results
  are bit-identical to their scalar builder by design (elementwise math
  plus per-row reductions).  These batch the gradient computation too,
  which is where the order-of-magnitude replicate speedup comes from.

``quadratic_bowl`` (the noisy quadratic of the paper's analysis
sections, registered both here and in :mod:`repro.xp.workloads`) is the
built-in vectorized workload.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.autograd.flat import BatchedFlatParams
from repro.registry import registry
from repro.xp.workloads import build_workload

# builder: seeds -> batched evaluator; factory: **workload_params -> builder
VecWorkloadBuilder = Callable[[Sequence[int]], "object"]
VecWorkloadFactory = Callable[..., VecWorkloadBuilder]


def register_vec_workload(name: str, factory: VecWorkloadFactory) -> None:
    """Register a batched evaluator for the workload named ``name``.

    Stored in the central typed registry under the ``"vec_workload"``
    kind.  The scalar registry must already know the name: the batched
    evaluator is an *optimization* of the current scalar builder, and
    the differential suite holds the two bit-identical.  The pairing is
    captured at registration time (the scalar factory rides along as
    registration metadata) — if the scalar entry is replaced
    afterwards, the batched evaluator is ignored and scenarios use the
    per-replicate adapter over the replacement.
    """
    if not registry.has("workload", str(name)):
        raise ValueError(
            f"cannot register batched workload {name!r}: no scalar "
            "workload of that name (register_workload it first)")
    scalar = registry.get("workload", str(name)).factory
    registry.register("vec_workload", str(name), factory,
                      extra={"scalar_factory": scalar})


def has_vec_workload(name: str) -> bool:
    """Whether ``name`` has a batched evaluator still paired with the
    current scalar registry entry."""
    if not registry.has("vec_workload", name):
        return False
    paired = registry.get("vec_workload", name).extra.get("scalar_factory")
    return (registry.has("workload", name)
            and registry.get("workload", name).factory is paired)


def vec_workload_names() -> list:
    """Sorted names with fully batched evaluators."""
    return registry.names("vec_workload")


def build_vec_evaluator(name: str, seeds: Sequence[int], **params):
    """Build the best available batched evaluator for a workload.

    Workloads whose batched evaluator is still paired with the current
    scalar registry entry get it; anything else gets a
    :class:`ModelReplicateAdapter` over the scalar builder.

    Parameters
    ----------
    name : str
        Workload name (scalar registry key or ``module:attr``
        reference).
    seeds : sequence of int
        One derived seed per replicate.
    **params
        The spec's ``workload_params``.
    """
    if has_vec_workload(name):
        return registry.build("vec_workload", name, **params)(seeds)
    return ModelReplicateAdapter(name, seeds, **params)


class ModelReplicateAdapter:
    """R scalar models sharing one batched parameter matrix.

    Evaluates each replicate's autograd closure per read (gradient
    computation is not batched), while exposing the packed ``(R, N)``
    buffer so optimizer and simulation layers run batched.

    Parameters
    ----------
    name : str
        Scalar workload registry key.
    seeds : sequence of int
        One seed per replicate, passed to the scalar builder.
    **params
        The spec's ``workload_params``.
    """

    def __init__(self, name: str, seeds: Sequence[int], **params):
        build = build_workload(name, **params)
        self.models = []
        self.loss_fns = []
        for seed in seeds:
            model, loss_fn = build(int(seed))
            self.models.append(model)
            self.loss_fns.append(loss_fn)
        self.flat = BatchedFlatParams(
            [m.parameters() for m in self.models])
        self.buffer = self.flat.buffer
        self.offsets = self.flat.offsets

    def ensure_packed(self) -> None:
        """Re-pack if any replicate's model rebound a parameter."""
        self.flat.ensure_packed()

    def read(self, out: np.ndarray) -> List[float]:
        """One read per replicate: losses returned, gradients into
        ``out`` rows (missing gradients become zeros)."""
        losses = []
        for model, loss_fn in zip(self.models, self.loss_fns):
            model.zero_grad()
            loss = loss_fn()
            loss.backward()
            losses.append(float(loss.data))
        self.flat.gather_grads(out=out)
        return losses


class QuadraticBowlVec:
    """Fully batched noisy-quadratic evaluator.

    The batched twin of the scalar ``quadratic_bowl`` workload
    (:mod:`repro.xp.workloads`): parameters are one ``(R, dim)``
    matrix; per-replicate noise tables — drawn from per-replicate
    generators in the scalar builder's draw order — are stacked into a
    ``(horizon, R, dim)`` block so each read's noise is one contiguous
    slice.  A read is then three batched elementwise operations and one
    row-wise loss reduction: no per-replicate NumPy calls remain on the
    hot path, which is where the replicate-axis speedup comes from.
    """

    def __init__(self, seeds: Sequence[int], dim: int, hmin: float,
                 hmax: float, noise: float, noise_horizon: int):
        rngs = [np.random.default_rng(int(s)) for s in seeds]
        self.h = np.exp(np.linspace(np.log(hmin), np.log(hmax), dim))
        self.buffer = np.empty((len(rngs), dim))
        tables = []
        for r, rng in enumerate(rngs):
            self.buffer[r] = rng.normal(size=dim)
            tables.append(noise * rng.normal(size=(noise_horizon, dim)))
        self._table = np.ascontiguousarray(np.stack(tables, axis=1))
        self.noise_horizon = noise_horizon
        self.offsets = [0, dim]
        self._t = 0
        self._hx = np.empty_like(self.buffer)
        self._hxx = np.empty_like(self.buffer)

    def ensure_packed(self) -> None:
        """No tensors alias the buffer; nothing to re-pack."""

    def read(self, out: np.ndarray) -> np.ndarray:
        """One batched read: losses per replicate, gradients into
        ``out``."""
        t = self._t % self.noise_horizon
        self._t += 1
        X = self.buffer
        hx = self._hx
        np.multiply(self.h, X, out=hx)
        np.add(hx, self._table[t], out=out)
        np.multiply(hx, X, out=self._hxx)
        return 0.5 * self._hxx.sum(axis=1)


def _quadratic_bowl_vec(dim: int = 256, hmin: float = 0.05,
                        hmax: float = 2.0, noise: float = 0.1,
                        noise_horizon: int = 512) -> VecWorkloadBuilder:
    """Factory mirroring the scalar ``quadratic_bowl`` signature."""
    def build(seeds: Sequence[int]) -> QuadraticBowlVec:
        return QuadraticBowlVec(seeds, dim=dim, hmin=hmin, hmax=hmax,
                                noise=noise, noise_horizon=noise_horizon)
    return build


register_vec_workload("quadratic_bowl", _quadratic_bowl_vec)
