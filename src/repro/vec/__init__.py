"""Batched multi-replicate execution engine.

The statistical claims of the paper — tuned-momentum robustness,
closed-loop gains under asynchrony — live across seeds and delay
realizations, so every headline number wants replicates with error
bars.  This package makes the replicate axis cheap: ``R`` replicates of
a scenario are stacked into one extra leading axis of the flat
parameter buffer (:class:`~repro.autograd.flat.BatchedFlatParams`) and
stepped together by batched fused optimizer kernels, under a single
lockstep event loop.

Layout
------
- :mod:`repro.vec.engine` — the lockstep
  :class:`~repro.vec.engine.BatchedClusterEngine` and its
  applicability predicate :func:`~repro.vec.engine.supports_batched`.
- :mod:`repro.vec.optim` — batched SGD / momentum / Adam / YellowFin /
  closed-loop YellowFin kernels with per-replicate tuned
  hyperparameter vectors.
- :mod:`repro.vec.measurements` — replicate-vectorized YellowFin
  measurement oracles and adaptive clipping.
- :mod:`repro.vec.workloads` — batched workload evaluators (vectorized
  ``quadratic_bowl``; generic per-replicate adapter for everything
  else).
- :mod:`repro.vec.runner` — :func:`~repro.vec.runner.
  run_replicated_scenario`, the ``replicates > 1`` branch of
  :func:`repro.xp.runner.run_scenario`, with transparent serial
  fallback.

Contract
--------
Per-replicate records are **bit-identical** to ``R`` serial runs of the
scalar path (enforced by ``tests/test_vec_equivalence.py``); batching
buys speed, never different numbers.
"""

from repro.vec.engine import (BatchedClusterEngine, ReplicateDiverged,
                              supports_batched)
from repro.vec.optim import (VecAdam, VecClosedLoopYellowFin,
                             VecMomentumSGD, VecOptimizer, VecSGD,
                             VecYellowFin, build_vec_optimizer,
                             has_vec_optimizer, vec_optimizer_names)
from repro.vec.runner import run_replicated_scenario
from repro.vec.workloads import (ModelReplicateAdapter, QuadraticBowlVec,
                                 build_vec_evaluator, has_vec_workload,
                                 register_vec_workload,
                                 vec_workload_names)

__all__ = [
    "BatchedClusterEngine", "ReplicateDiverged", "supports_batched",
    "VecOptimizer", "VecSGD", "VecMomentumSGD", "VecAdam",
    "VecYellowFin", "VecClosedLoopYellowFin", "build_vec_optimizer",
    "has_vec_optimizer", "vec_optimizer_names",
    "run_replicated_scenario",
    "ModelReplicateAdapter", "QuadraticBowlVec", "build_vec_evaluator",
    "has_vec_workload", "register_vec_workload", "vec_workload_names",
]
