"""Lockstep batched execution of replicated cluster scenarios.

One scalar :class:`~repro.cluster.runtime.ClusterRuntime` run interleaves
three kinds of work: event scheduling (pure bookkeeping), gradient
computation, and optimizer updates.  For the **lockstep-schedulable**
scenario class — constant delays, no fault injection — the event
schedule is a function of the spec alone, independent of gradient
values and seeds.  ``R`` replicates of such a scenario therefore visit
the *same* reads and commits in the *same* order, and the whole sweep
collapses onto a single event loop whose per-event work is batched
across the replicate axis:

- parameters live in one ``(R, N)`` matrix
  (:class:`~repro.autograd.flat.BatchedFlatParams` or a vectorized
  workload's own buffer);
- gradient computation is batched when the workload has a vectorized
  evaluator, per-replicate otherwise;
- the optimizer update is always batched
  (:mod:`repro.vec.optim`), with per-replicate tuned hyperparameters
  carried as vectors.

Every replicate keeps its own training log, staleness bookkeeping, and
(for random delivery) its own server RNG stream, so the per-replicate
records are **bit-identical** to ``R`` serial scalar runs — the
engine's defining contract, enforced by ``tests/test_vec_equivalence``.

Scenarios outside the lockstep class — stochastic delay models, fault
plans, optimizers without a batched kernel — and runs where any
replicate diverges (which truncates that replicate's scalar schedule)
are *not* handled here; :func:`supports_batched` reports the former,
and a mid-run divergence raises :class:`ReplicateDiverged` so the
caller can fall back to serial scalar execution.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.cluster.delays import ConstantDelay
from repro.cluster.events import EventQueue
from repro.sim.trainer import TrainerHooks
from repro.utils.logging import TrainLog
from repro.utils.rng import new_rng
from repro.vec.optim import build_vec_optimizer, has_vec_optimizer
from repro.vec.workloads import build_vec_evaluator
from repro.xp.spec import ScenarioSpec

# the scalar path runs under default TrainerHooks; sharing its
# divergence threshold keeps the two paths from ever drifting (None
# means "non-finite only", which +inf reproduces in the comparisons)
_DEFAULT_STOP = TrainerHooks().stop_on_divergence
_DIVERGENCE_THRESHOLD = (float("inf") if _DEFAULT_STOP is None
                         else _DEFAULT_STOP)
_NEG_INF = float("-inf")
_POS_INF = float("inf")


class ReplicateDiverged(Exception):
    """A replicate diverged mid-run, truncating its scalar schedule.

    Divergence stops a scalar run immediately, so a diverged replicate
    falls out of lockstep with the others; the engine aborts and the
    caller re-runs the scenario serially (where each replicate may stop
    at its own point).
    """

    def __init__(self, replicate: int, read_step: int):
        super().__init__(
            f"replicate {replicate} diverged at read {read_step}")
        self.replicate = replicate
        self.read_step = read_step


def supports_batched(spec: ScenarioSpec) -> bool:
    """Whether a spec falls in the lockstep-schedulable class.

    Requires a constant delay model (gradient-independent event order),
    an empty fault plan, no fleet topology (which would rewrite the
    delay/fault fields on expansion), and an optimizer with a batched
    kernel.  Anything else runs through the serial fallback of
    :func:`repro.vec.runner.run_replicated_scenario`.
    """
    return (spec.delay.get("kind") == "constant"
            and not spec.faults
            and not getattr(spec, "fleet", None)
            and has_vec_optimizer(spec.optimizer))


class ReplicateOutcome:
    """One replicate's share of a batched run.

    Attributes
    ----------
    log : TrainLog
        The replicate's training log, series-compatible with a scalar
        :class:`~repro.cluster.runtime.ClusterRuntime` run.
    reads, updates : int
        The replicate's budget counters at the end of the run.
    """

    def __init__(self, log: TrainLog, reads: int, updates: int):
        self.log = log
        self.reads = reads
        self.updates = updates


class BatchedClusterEngine:
    """Single event loop driving ``R`` lockstep scenario replicates.

    Parameters
    ----------
    spec : ScenarioSpec
        The scenario (must satisfy :func:`supports_batched`).
    seeds : sequence of int
        One derived seed per replicate (see
        :meth:`ScenarioSpec.replicate_seeds`).
    """

    def __init__(self, spec: ScenarioSpec, seeds):
        from repro.utils.deprecation import (entered_internally,
                                             warn_deprecated)

        if not entered_internally():
            # ad-hoc construction is deprecated, the engine is not;
            # the vec backend builds engines inside internal_calls()
            warn_deprecated(
                "direct BatchedClusterEngine construction",
                'repro.run.run(spec, backend="vec")')
        if not supports_batched(spec):
            raise ValueError(
                f"scenario {spec.name!r} is not lockstep-schedulable")
        self.spec = spec
        self.seeds = [int(s) for s in seeds]
        self.replicates = len(self.seeds)
        self.workload = build_vec_evaluator(
            spec.workload, self.seeds, **spec.workload_params)
        self.buffer = self.workload.buffer
        self.optimizer = build_vec_optimizer(
            spec.optimizer, self.buffer, self.workload.offsets,
            **spec.optimizer_params)
        delay_params = {k: v for k, v in spec.delay.items()
                        if k != "kind"}
        self.delay_model = ConstantDelay(**delay_params)
        # per-replicate server RNGs: only the "random" delivery draws
        # from them, exactly as the sharded server's seeded RNG does
        self.rngs = [new_rng(s) for s in self.seeds]
        self.random_delivery = spec.delivery == "random"
        self.tau = spec.queue_staleness

        R = self.replicates
        self.logs = [TrainLog() for _ in range(R)]
        # direct per-replicate series-list handles: the engine's commit
        # loop appends to these without going through TrainLog.append
        self._series = {
            name: ([log.scalars.setdefault(name, [])
                    for log in self.logs],
                   [log.steps.setdefault(name, [])
                    for log in self.logs])
            for name in ("loss", "staleness", "worker", "sim_time")}
        if self.optimizer.has_stats:
            stats_names = ["lr", "momentum", "target_momentum"]
            if hasattr(self.optimizer, "estimators"):
                stats_names += ["total_momentum", "algorithmic_momentum"]
            self._stats_names = stats_names
            for name in stats_names:
                self._series[name] = (
                    [log.scalars.setdefault(name, [])
                     for log in self.logs],
                    [log.steps.setdefault(name, [])
                     for log in self.logs])
        else:
            self._stats_names = []
        # pending read steps: one shared FIFO queue for fifo delivery,
        # per-replicate queues for random delivery (random pops
        # desynchronize the queue *contents*, never their length)
        self.queue: Deque[int] = deque()
        self.queues: List[Deque[int]] = [self.queue for _ in range(R)] \
            if not self.random_delivery else [deque() for _ in range(R)]
        # read metadata shared across replicates (lockstep): worker id
        # and the update count observed at read time
        self._meta: Dict[int, tuple] = {}
        # per-read gradient matrices, dropped once every replicate
        # committed that read
        self._grads: Dict[int, np.ndarray] = {}
        self._commits_left: Dict[int, int] = {}

        self.events = EventQueue()
        self.clock = 0.0
        self.reads_done = 0
        self.steps_applied = 0

    # ------------------------------------------------------------- #
    # lockstep protocol
    # ------------------------------------------------------------- #
    def _append(self, name: str, values, step: int) -> None:
        """Append one value per replicate to a cached series."""
        value_lists, step_lists = self._series[name]
        for r in range(self.replicates):
            value_lists[r].append(float(values[r]))
            step_lists[r].append(step)

    def _read_and_dispatch(self, worker_id: int) -> None:
        """All replicates read, check divergence, and ship gradients."""
        step = self.reads_done
        grads = np.empty_like(self.buffer)
        losses = self.workload.read(grads)
        if isinstance(losses, np.ndarray):
            losses = losses.tolist()
        loss_values, loss_steps = self._series["loss"]
        for r, loss_value in enumerate(losses):
            loss_values[r].append(loss_value)
            loss_steps[r].append(step)
        self.reads_done += 1
        for loss_value in losses:
            # fast path: a finite, non-divergent loss satisfies the
            # chained comparison; NaN/±inf/threshold breaches fall
            # through to the exact scalar-path check (the explicit
            # +inf test matters when the threshold itself is +inf,
            # i.e. stop_on_divergence=None means "non-finite only")
            if not (_NEG_INF < loss_value <= _DIVERGENCE_THRESHOLD) \
                    or loss_value == _POS_INF:
                for r, value in enumerate(losses):
                    if not math.isfinite(value) \
                            or value > _DIVERGENCE_THRESHOLD:
                        raise ReplicateDiverged(r, step)
        self._grads[step] = grads
        self._meta[step] = (worker_id, self.steps_applied)
        if self.random_delivery:
            self._commits_left[step] = self.replicates
        delay = self.delay_model.sample(worker_id, self.clock)
        self.events.schedule(self.clock + delay, "arrival", worker_id,
                             {"read_step": step})

    def _log_commit(self, log_step: int) -> None:
        """Per-commit optimizer statistics series (YellowFin family)."""
        stats = self.optimizer.stats_all()
        for name in self._stats_names:
            value_lists, step_lists = self._series[name]
            for r in range(self.replicates):
                value_lists[r].append(float(stats[r][name]))
                step_lists[r].append(log_step)

    def _commit_ready(self, updates: Optional[int]) -> None:
        """Commit queued gradients while the depth gate is open."""
        pending = len(self.queues[0])
        R = self.replicates
        while pending > self.tau and (
                updates is None or self.steps_applied < updates):
            version = self.steps_applied
            log_step = self.reads_done - 1
            if not self.random_delivery:
                # fifo: every replicate commits the same read, so the
                # gradient matrix and bookkeeping are shared wholesale
                step = self.queue.popleft()
                commit = self._grads.pop(step)
                worker_id, read_version = self._meta.pop(step)
                self.workload.ensure_packed()
                self.optimizer.step(commit)
                self.steps_applied += 1
                pending -= 1
                staleness = version - read_version
                for name, value in (("staleness", staleness),
                                    ("worker", worker_id),
                                    ("sim_time", self.clock)):
                    value = float(value)
                    value_lists, step_lists = self._series[name]
                    for r in range(R):
                        value_lists[r].append(value)
                        step_lists[r].append(log_step)
            else:
                steps = []
                for r in range(R):
                    pos = int(self.rngs[r].integers(pending))
                    queue = self.queues[r]
                    steps.append(queue[pos])
                    del queue[pos]
                commit = np.empty_like(self.buffer)
                for r, s in enumerate(steps):
                    commit[r] = self._grads[s][r]
                self.workload.ensure_packed()
                self.optimizer.step(commit)
                self.steps_applied += 1
                pending -= 1
                meta = [self._meta[s] for s in steps]
                self._append("staleness",
                             [version - ver for _, ver in meta], log_step)
                self._append("worker", [wid for wid, _ in meta], log_step)
                self._append("sim_time", [self.clock] * R, log_step)
                for s in steps:
                    left = self._commits_left[s] = \
                        self._commits_left[s] - 1
                    if left == 0:
                        del self._grads[s]
                        del self._commits_left[s]
                        del self._meta[s]
            if self._stats_names:
                self._log_commit(log_step)

    # ------------------------------------------------------------- #
    # driving loop
    # ------------------------------------------------------------- #
    def run(self) -> List[ReplicateOutcome]:
        """Simulate the spec's budgets; one outcome per replicate.

        Raises
        ------
        ReplicateDiverged
            If any replicate's loss goes non-finite or past the
            divergence threshold (the caller falls back to serial
            execution).
        """
        spec = self.spec
        reads, updates = spec.reads, spec.updates
        for worker_id in range(spec.workers):
            if self.reads_done >= reads:
                break
            self._read_and_dispatch(worker_id)
        while True:
            if self.reads_done >= reads and (
                    updates is None or self.steps_applied >= updates):
                break
            if not self.events:
                break
            event = self.events.pop()
            self.clock = event.time
            step = event.payload["read_step"]
            if self.random_delivery:
                for queue in self.queues:
                    queue.append(step)
            else:
                self.queue.append(step)
            self._commit_ready(updates)
            if self.reads_done < reads:
                self._read_and_dispatch(event.worker)
        return [ReplicateOutcome(log=self.logs[r], reads=self.reads_done,
                                 updates=self.steps_applied)
                for r in range(self.replicates)]
