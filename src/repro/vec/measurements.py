"""Replicate-vectorized YellowFin measurement oracles.

The scalar oracles of :mod:`repro.core.measurements` track one run; the
classes here track ``R`` independent runs at once, carrying every
statistic as a length-``R`` vector (or an ``(R, N)`` matrix for the
elementwise gradient EMAs).  All smoothing is elementwise, so each row
of a vectorized oracle evolves bit-for-bit like a scalar oracle fed the
same row — the property the :mod:`repro.vec` differential tests assert.
Reductions that the scalar path performs with BLAS (``np.dot``) are
executed per row on contiguous row views, so they call the exact same
kernel on the exact same memory layout.

Two gradient-reduction modes mirror the scalar optimizer's two hot
paths:

- ``fused`` — per-replicate ``np.dot(row, row)`` (the flat-buffer path);
- per-tensor — per-slice ``float(np.sum(g * g))`` accumulated in Python
  floats, in tensor order (the reference per-tensor path).  The modes
  differ by floating-point association only, exactly as the scalar
  optimizers do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

import numpy as np

from repro.core.ema import ZeroDebiasEMA


def row_sq_norms(grads: np.ndarray, offsets: Sequence[int],
                 fused: bool) -> np.ndarray:
    """Per-replicate squared gradient norms, in scalar-path op order.

    Parameters
    ----------
    grads : numpy.ndarray
        ``(R, N)`` gradient matrix with contiguous rows.
    offsets : sequence of int
        Per-tensor column boundaries (``offsets[i]:offsets[i+1]``).
    fused : bool
        ``True`` reproduces the fused path (one ``np.dot`` per row);
        ``False`` reproduces the per-tensor path (Python-float sum of
        per-slice ``np.sum(g * g)`` terms).

    Returns
    -------
    numpy.ndarray
        Length-``R`` float64 vector of squared norms.
    """
    R = grads.shape[0]
    out = np.empty(R, dtype=np.float64)
    if fused:
        for r in range(R):
            row = grads[r]
            out[r] = float(np.dot(row, row))
    else:
        for r in range(R):
            total = 0.0
            row = grads[r]
            for i in range(len(offsets) - 1):
                g = row[offsets[i]:offsets[i + 1]]
                total += float(np.sum(g * g))
            out[r] = total
    return out


class VecLogSpaceEMA(ZeroDebiasEMA):
    """Vector-valued log-space EMA (`LogSpaceEMA` per replicate).

    ``update`` folds in a length-``R`` vector; ``value`` returns the
    exponentiated debiased average as a vector.  Per element this is
    exactly the scalar :class:`repro.core.ema.LogSpaceEMA` recurrence.
    """

    def update(self, value) -> np.ndarray:
        """Fold in a length-``R`` observation vector."""
        value = np.maximum(np.asarray(value, dtype=np.float64), 1e-300)
        super().update(np.log(value))
        return self.value

    @property
    def value(self) -> np.ndarray:
        """Debiased estimate vector (``exp`` of the smoothed logs)."""
        return np.exp(super().value)


class VecCurvatureRange:
    """Vectorized sliding-window extremal-curvature estimator.

    One :class:`repro.core.measurements.CurvatureRange` per replicate,
    carried as length-``R`` vectors.  The window history holds one
    ``(R,)`` vector per step; extremal envelopes use exact elementwise
    ``max``/``min``, so each row matches the scalar estimator exactly.
    """

    def __init__(self, replicates: int, beta: float = 0.999,
                 window: int = 20, limit_envelope_growth: bool = False,
                 log_space: bool = True, zero_debias: bool = True):
        self.replicates = replicates
        self.window = window
        self.limit_envelope_growth = limit_envelope_growth
        ema_cls = VecLogSpaceEMA if log_space else ZeroDebiasEMA
        self._history: Deque[np.ndarray] = deque(maxlen=window)
        self._hmax = ema_cls(beta, debias=zero_debias)
        self._hmin = ema_cls(beta, debias=zero_debias)

    def update(self, grad_sq_norms: np.ndarray) -> "VecCurvatureRange":
        """Fold in this step's per-replicate ``||g||^2`` vector."""
        h_t = np.maximum(np.asarray(grad_sq_norms, dtype=np.float64),
                         1e-300)
        self._history.append(h_t)
        stacked = np.stack(self._history)
        hmax_t = stacked.max(axis=0)
        hmin_t = stacked.min(axis=0)
        if self.limit_envelope_growth and self._hmax.initialized:
            hmax_t = np.minimum(hmax_t, 100.0 * self._hmax.value)
        self._hmax.update(hmax_t)
        self._hmin.update(hmin_t)
        return self

    @property
    def hmax(self) -> np.ndarray:
        """Per-replicate smoothed maximal curvature."""
        return np.asarray(self._hmax.value, dtype=np.float64)

    @property
    def hmin(self) -> np.ndarray:
        """Per-replicate smoothed minimal curvature."""
        return np.asarray(self._hmin.value, dtype=np.float64)


class VecGradientVariance:
    """Vectorized gradient-variance estimator (Algorithm 3, per row).

    Maintains ``(R, N)`` elementwise EMAs of ``g`` and ``g * g``; the
    per-replicate variance is the row-summed clipped difference.
    """

    def __init__(self, beta: float = 0.999, zero_debias: bool = True):
        self._g = ZeroDebiasEMA(beta, debias=zero_debias)
        self._g2 = ZeroDebiasEMA(beta, debias=zero_debias)

    def update(self, grads: np.ndarray) -> "VecGradientVariance":
        """Fold in this step's ``(R, N)`` gradient matrix."""
        grads = np.asarray(grads, dtype=np.float64)
        self._g.update(grads)
        self._g2.update(grads * grads)
        return self

    @property
    def variance(self) -> np.ndarray:
        """Per-replicate summed elementwise variance (length ``R``)."""
        g = self._g.value
        g2 = self._g2.value
        diff = np.maximum(g2 - g * g, 0.0)
        # row-wise reduction of the C-contiguous matrix uses the same
        # pairwise summation per row as the scalar estimator's
        # whole-array sum, so each entry is bit-identical
        return diff.sum(axis=1)


class VecDistanceToOpt:
    """Vectorized distance-to-optimum estimator (Algorithm 4)."""

    def __init__(self, beta: float = 0.999, zero_debias: bool = True):
        self._norm = ZeroDebiasEMA(beta, debias=zero_debias)
        self._h = ZeroDebiasEMA(beta, debias=zero_debias)
        self._dist = ZeroDebiasEMA(beta, debias=zero_debias)

    def update(self, grad_norms: np.ndarray) -> "VecDistanceToOpt":
        """Fold in this step's per-replicate ``||g||`` vector."""
        grad_norms = np.asarray(grad_norms, dtype=np.float64)
        self._norm.update(grad_norms)
        self._h.update(grad_norms * grad_norms)
        denom = np.maximum(self._h.value, 1e-300)
        self._dist.update(self._norm.value / denom)
        return self

    @property
    def distance(self) -> np.ndarray:
        """Per-replicate smoothed distance estimate (length ``R``)."""
        return np.asarray(self._dist.value, dtype=np.float64)


@dataclass
class VecMeasurementSnapshot:
    """One step's tuner inputs as per-replicate vectors."""

    hmax: np.ndarray
    hmin: np.ndarray
    variance: np.ndarray
    distance: np.ndarray
    grad_norm: np.ndarray


class VecMeasurements:
    """Replicate-vectorized bundle of the three YellowFin oracles.

    The batched counterpart of
    :class:`repro.core.measurements.GradientMeasurements`: one ``update``
    folds in an ``(R, N)`` gradient matrix and advances every
    replicate's oracles in a handful of batched elementwise operations,
    plus per-row reductions that replay the scalar path's exact BLAS
    calls.

    Parameters
    ----------
    replicates : int
        Number of replicate rows ``R``.
    offsets : sequence of int
        Per-tensor column boundaries of the gradient matrix (used by
        the per-tensor reduction mode).
    fused : bool
        Reduction mode: fused flat-buffer semantics or per-tensor
        reference semantics (see :func:`row_sq_norms`).
    beta, window, limit_envelope_growth, log_space_curvature, \
zero_debias :
        Forwarded to the underlying oracles, as in the scalar bundle.
    """

    def __init__(self, replicates: int, offsets: Sequence[int],
                 fused: bool = True, beta: float = 0.999,
                 window: int = 20, limit_envelope_growth: bool = False,
                 log_space_curvature: bool = True,
                 zero_debias: bool = True):
        self.replicates = replicates
        self.offsets = list(offsets)
        self.fused = fused
        self.curvature = VecCurvatureRange(
            replicates, beta=beta, window=window,
            limit_envelope_growth=limit_envelope_growth,
            log_space=log_space_curvature, zero_debias=zero_debias)
        self.variance = VecGradientVariance(beta=beta,
                                            zero_debias=zero_debias)
        self.distance = VecDistanceToOpt(beta=beta,
                                         zero_debias=zero_debias)

    def update(self, grads: np.ndarray) -> VecMeasurementSnapshot:
        """Fold in this step's ``(R, N)`` gradients; return a snapshot."""
        if self.fused:
            # the scalar fused path (update_flat) casts to float64
            # before its norm reduction; the per-tensor path reduces at
            # the native dtype — mirror both exactly
            grads64 = np.asarray(grads, dtype=np.float64)
            flat_sq = row_sq_norms(grads64, self.offsets, True)
        else:
            grads64 = grads
            flat_sq = row_sq_norms(grads, self.offsets, False)
        grad_norm = np.sqrt(flat_sq)
        self.curvature.update(flat_sq)
        self.distance.update(grad_norm)
        self.variance.update(grads64)
        return self.snapshot(grad_norm)

    def snapshot(self, grad_norm: Optional[np.ndarray] = None
                 ) -> VecMeasurementSnapshot:
        """Current per-replicate oracle estimates."""
        if grad_norm is None:
            grad_norm = np.full(self.replicates, np.nan)
        return VecMeasurementSnapshot(
            hmax=self.curvature.hmax, hmin=self.curvature.hmin,
            variance=self.variance.variance,
            distance=self.distance.distance, grad_norm=grad_norm)


class VecAdaptiveClipper:
    """Replicate-vectorized adaptive gradient clipping.

    Mirrors :class:`repro.core.clipping.AdaptiveClipper` per row:
    row norms are taken with the scalar path's own reduction (fused
    ``np.dot`` or per-tensor sums), and rows exceeding their replicate's
    ``sqrt(hmax)`` threshold are rescaled in place by the same scalar
    factor the scalar clipper would apply.
    """

    def __init__(self, replicates: int, offsets: Sequence[int],
                 fused: bool = True, warmup_steps: int = 1):
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.replicates = replicates
        self.offsets = list(offsets)
        self.fused = fused
        self.warmup_steps = warmup_steps
        self._steps = 0
        self.clip_events = 0
        self.last_norms: Optional[np.ndarray] = None

    def clip(self, grads: np.ndarray,
             hmax: Optional[np.ndarray]) -> np.ndarray:
        """Rescale each row in place; returns the pre-clip row norms."""
        norms = np.sqrt(row_sq_norms(grads, self.offsets, self.fused))
        self._steps += 1
        self.last_norms = norms
        if hmax is None or self._steps <= self.warmup_steps:
            return norms
        thresholds = np.sqrt(np.maximum(np.asarray(hmax, np.float64),
                                        0.0))
        for r in range(self.replicates):
            norm = float(norms[r])
            threshold = float(thresholds[r])
            if norm > threshold > 0.0:
                grads[r] *= threshold / norm
                self.clip_events += 1
        return norms


def vec_single_step(variance: np.ndarray, distance: np.ndarray,
                    hmax: np.ndarray, hmin: np.ndarray
                    ) -> "VecSingleStepResult":
    """SingleStep (eq. 15) applied independently per replicate.

    The tuning rule is a handful of scalar operations, so it simply
    loops the exact scalar :func:`repro.core.single_step.single_step`
    over the replicate axis — bit-identical by construction — and
    assembles the outputs into vectors.
    """
    from repro.core.single_step import single_step

    R = len(variance)
    mu = np.empty(R)
    lr = np.empty(R)
    for r in range(R):
        result = single_step(variance=float(variance[r]),
                             distance=float(distance[r]),
                             hmax=float(hmax[r]), hmin=float(hmin[r]))
        mu[r] = result.mu
        lr[r] = result.lr
    return VecSingleStepResult(mu=mu, lr=lr)


@dataclass
class VecSingleStepResult:
    """Per-replicate SingleStep outputs (``mu`` and ``lr`` vectors)."""

    mu: np.ndarray
    lr: np.ndarray
