"""Replicated-scenario execution: batched fast path, serial fallback.

:func:`run_replicated_scenario` is the ``replicates > 1`` branch of
:func:`repro.xp.runner.run_scenario`.  It produces one
:class:`~repro.xp.runner.ScenarioResult` whose per-replicate metrics
are bit-identical to ``R`` serial runs of the scalar path over the
spec's derived replicate seeds — regardless of which execution strategy
actually ran:

- **batched** — the scenario is lockstep-schedulable
  (:func:`repro.vec.engine.supports_batched`): one
  :class:`~repro.vec.engine.BatchedClusterEngine` steps all replicates
  together, an order of magnitude cheaper than serial for vectorized
  workloads;
- **serial** — anything else (stochastic delays, faults, exotic
  optimizers), or a batched run aborted by a replicate divergence:
  each replicate runs the ordinary scalar path.

Aggregation is shared with the BENCH reporters
(:func:`repro.bench.report.replicate_statistics`): the result's
``metrics`` carry per-metric means plus ``*_std`` / ``*_ci95`` spread
fields, its ``series`` are replicate 0's, and the raw per-replicate
metrics ride along in ``replicate_metrics``.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.bench.report import environment_info, replicate_statistics
from repro.vec.engine import (BatchedClusterEngine, ReplicateDiverged,
                              supports_batched)
from repro.xp.spec import ScenarioSpec


def run_replicated_scenario(spec: ScenarioSpec):
    """Run all replicates of a spec and aggregate one result record.

    Parameters
    ----------
    spec : ScenarioSpec
        A scenario with ``replicates > 1``.

    Returns
    -------
    ScenarioResult
        Aggregated record: mean/std/CI metrics, replicate 0's series,
        and the per-replicate metric dicts.  ``env`` records the
        execution strategy under ``"vec_engine"``.
    """
    from repro.xp.runner import ScenarioResult, summarize_log

    if spec.replicates < 2:
        raise ValueError(
            "run_replicated_scenario needs replicates > 1; "
            "run_scenario handles the scalar case")
    start = time.perf_counter()
    outcomes = None
    strategy = "serial"
    if supports_batched(spec):
        try:
            engine = BatchedClusterEngine(spec, spec.replicate_seeds())
            outcomes = engine.run()
            strategy = "batched"
        except ReplicateDiverged:
            # a diverged replicate leaves lockstep; rerun serially so
            # each replicate stops exactly where its scalar run would
            outcomes = None

    per_metrics: List[Dict[str, float]] = []
    series: Dict[str, List[float]] = {}
    if outcomes is not None:
        for r, outcome in enumerate(outcomes):
            metrics, rep_series = summarize_log(
                spec, outcome.log, outcome.reads, outcome.updates,
                diverged=False)
            per_metrics.append(metrics)
            if r == 0:
                series = rep_series
    else:
        from repro.xp.runner import run_scenario

        for r in range(spec.replicates):
            result = run_scenario(spec.replicate_spec(r))
            per_metrics.append(result.metrics)
            if r == 0:
                series = result.series
    wall = time.perf_counter() - start

    env = environment_info()
    # replicate 0's seed, which is what actually ran (resolved_seed()
    # would hash the spec WITH its replicate count and match no run)
    env["seed"] = spec.replicate_seeds()[0]
    env["vec_engine"] = strategy
    return ScenarioResult(
        name=spec.name, spec_hash=spec.content_hash(),
        metrics=replicate_statistics(per_metrics), series=series,
        replicate_metrics=per_metrics, env=env, wall_s=wall)
