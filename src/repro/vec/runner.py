"""Replicated-scenario execution: batched fast path, serial fallback.

:func:`execute_replicated` is the replicate-axis engine room of the
unified :mod:`repro.run` API.  It produces one
:class:`~repro.xp.runner.ScenarioResult` whose per-replicate metrics
are bit-identical to ``R`` serial runs of the scalar path over the
spec's derived replicate seeds — regardless of which execution strategy
actually ran:

- **batched** — the scenario is lockstep-schedulable
  (:func:`repro.vec.engine.supports_batched`): one
  :class:`~repro.vec.engine.BatchedClusterEngine` steps all replicates
  together, an order of magnitude cheaper than serial for vectorized
  workloads;
- **serial** — anything else (stochastic delays, faults, exotic
  optimizers), or a batched run aborted by a replicate divergence:
  each replicate runs the ordinary scalar path.

The ``strategy`` parameter lets callers pin a path: the ``vec``
execution backend forces ``"batched"`` (including for single-replicate
specs, where the batched engine runs with ``R = 1`` and the result
keeps the scalar record shape), while the ``serial`` reference backend
forces ``"serial"``.

Aggregation is shared with the BENCH reporters through the
``"aggregator"`` registry kind (default ``"replicate_stats"``,
:func:`repro.bench.report.replicate_statistics`): the result's
``metrics`` carry per-metric means plus ``*_std`` / ``*_ci95`` spread
fields, its ``series`` are replicate 0's, and the raw per-replicate
metrics ride along in ``replicate_metrics``.

:func:`run_replicated_scenario` remains as the pre-PR-5 name for the
``replicates > 1`` auto-strategy path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.report import environment_info
from repro.obs.session import StepTimer, active as _obs_active
from repro.registry import registry
from repro.utils.deprecation import internal_calls
from repro.vec.engine import (BatchedClusterEngine, ReplicateDiverged,
                              supports_batched)
from repro.xp.spec import ScenarioSpec

_STRATEGIES = ("auto", "batched", "serial")


def execute_replicated(spec: ScenarioSpec, strategy: str = "auto",
                       aggregator: str = "replicate_stats"):
    """Run every replicate of a spec and assemble one result record.

    Parameters
    ----------
    spec : ScenarioSpec
        The scenario; any ``replicates >= 1`` is accepted.
    strategy : str
        ``"auto"`` uses the batched engine when the spec is
        lockstep-schedulable and serial scalar runs otherwise;
        ``"batched"`` prefers the engine even for ``replicates == 1``
        (still falling back to serial when the spec is outside the
        lockstep class or a replicate diverges mid-run);
        ``"serial"`` forces per-replicate scalar execution.
    aggregator : str
        Registry key (kind ``"aggregator"``) of the metric aggregation
        applied when ``replicates > 1``.

    Returns
    -------
    ScenarioResult
        For ``replicates > 1``: aggregated mean/std/CI metrics,
        replicate 0's series, and the per-replicate metric dicts.  For
        a single replicate the record keeps the scalar shape (plain
        metrics, no ``replicate_metrics``) so batched and scalar
        single-replicate runs are interchangeable bit-for-bit.
        ``env`` records the executed strategy under ``"vec_engine"``.
    """
    from repro.xp.runner import ScenarioResult, summarize_log

    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    want_batched = (strategy == "batched"
                    or (strategy == "auto" and spec.replicates > 1))
    timer = StepTimer(f"replicated:{spec.name}", cat="vec.runner").start()
    session = _obs_active()
    outcomes = None
    executed = "serial"
    if want_batched and supports_batched(spec):
        try:
            with internal_calls():
                engine = BatchedClusterEngine(spec,
                                              spec.replicate_seeds())
                if session is not None and session.tracer is not None:
                    with session.tracer.span(
                            f"batched:{spec.name}", "vec.engine",
                            replicates=spec.replicates):
                        outcomes = engine.run()
                else:
                    outcomes = engine.run()
            executed = "batched"
        except ReplicateDiverged:
            # a diverged replicate leaves lockstep; rerun serially so
            # each replicate stops exactly where its scalar run would
            outcomes = None
            if session is not None:
                if session.tracer is not None:
                    session.tracer.instant("fallback:diverged",
                                           "vec.engine", spec=spec.name)
                if session.metrics is not None:
                    session.metrics.counter("vec.fallbacks").inc()
    elif want_batched and session is not None:
        # wanted the batched engine but the spec is outside the
        # lockstep class — record the fallback transition
        if session.tracer is not None:
            session.tracer.instant("fallback:unsupported", "vec.engine",
                                   spec=spec.name)
        if session.metrics is not None:
            session.metrics.counter("vec.fallbacks").inc()

    per_metrics: List[Dict[str, float]] = []
    series: Dict[str, List[float]] = {}
    if outcomes is not None:
        for r, outcome in enumerate(outcomes):
            metrics, rep_series = summarize_log(
                spec, outcome.log, outcome.reads, outcome.updates,
                diverged=False)
            per_metrics.append(metrics)
            if r == 0:
                series = rep_series
    else:
        from repro.run.backends import execute_scalar

        for r in range(spec.replicates):
            result = execute_scalar(spec.replicate_spec(r))
            per_metrics.append(result.metrics)
            if r == 0:
                series = result.series
    wall = timer.stop(strategy=executed)

    env = environment_info()
    # replicate 0's seed, which is what actually ran (resolved_seed()
    # would hash the spec WITH its replicate count and match no run)
    env["seed"] = spec.replicate_seeds()[0]
    env["vec_engine"] = executed
    if spec.replicates == 1:
        # scalar record shape: interchangeable with the scalar path
        return ScenarioResult(
            name=spec.name, spec_hash=spec.content_hash(),
            metrics=per_metrics[0], series=series, env=env, wall_s=wall)
    aggregate = registry.get("aggregator", aggregator).factory()
    return ScenarioResult(
        name=spec.name, spec_hash=spec.content_hash(),
        metrics=aggregate(per_metrics), series=series,
        replicate_metrics=per_metrics, env=env, wall_s=wall)


def run_replicated_scenario(spec: ScenarioSpec):
    """Run all replicates of a spec and aggregate one result record.

    The pre-PR-5 name for :func:`execute_replicated` with the
    ``"auto"`` strategy; kept because it is the documented
    ``replicates > 1`` branch of the scenario runner.

    Parameters
    ----------
    spec : ScenarioSpec
        A scenario with ``replicates > 1``.

    Returns
    -------
    ScenarioResult
        Aggregated record: mean/std/CI metrics, replicate 0's series,
        and the per-replicate metric dicts.  ``env`` records the
        execution strategy under ``"vec_engine"``.
    """
    if spec.replicates < 2:
        raise ValueError(
            "run_replicated_scenario needs replicates > 1; "
            "repro.run handles the scalar case")
    return execute_replicated(spec, strategy="auto")
