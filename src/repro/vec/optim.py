"""Batched fused optimizer kernels over the replicate axis.

Each class here steps ``R`` independent optimization runs at once on an
``(R, N)`` parameter matrix (rows = replicates, columns = the packed
flat-parameter axis of :class:`~repro.autograd.flat.BatchedFlatParams`).
All elementwise state (velocities, Adam moments, gradient EMAs) is
carried as ``(R, N)`` matrices and advanced in single NumPy operations;
per-replicate tuned hyperparameters (YellowFin's learning rate and
momentum) are length-``R`` vectors broadcast down the rows.

Bit-identity contract
---------------------
Row ``r`` of a batched kernel evolves bit-for-bit like the corresponding
scalar optimizer from :mod:`repro.optim` / :mod:`repro.core` fed the
same gradients:

- elementwise updates are IEEE-identical under broadcasting;
- reductions (norms, dots, medians) run per row on contiguous row
  views, replaying the scalar path's exact kernel on the same layout;
- the ``fused`` hyperparameter selects between the scalar fused and
  per-tensor reduction semantics, exactly as it does for the scalar
  classes.

The differential suite (``tests/test_vec_equivalence.py``) enforces the
contract for every kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.closed_loop import TotalMomentumEstimator
from repro.vec.measurements import (VecAdaptiveClipper, VecMeasurements,
                                    vec_single_step)


class VecOptimizer:
    """Base class: an optimizer stepping ``R`` replicates in lockstep.

    Parameters
    ----------
    buffer : numpy.ndarray
        The shared ``(R, N)`` parameter matrix, updated in place.
    offsets : sequence of int
        Per-tensor column boundaries (used by per-tensor reduction
        semantics); ``[0, N]`` for a single-tensor workload.

    Attributes
    ----------
    t : int
        Shared step counter (replicates commit in lockstep).
    """

    has_stats = False

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int]):
        if buffer.ndim != 2:
            raise ValueError(
                f"buffer must be (replicates, size), got {buffer.shape}")
        self.buffer = buffer
        self.offsets = list(offsets)
        self.replicates = int(buffer.shape[0])
        self.size = int(buffer.shape[1])
        self.t = 0

    def step(self, grads: np.ndarray) -> None:
        """Apply one lockstep update from the ``(R, N)`` gradients.

        ``grads`` may be modified in place (weight decay, clipping) —
        callers must treat it as consumed, mirroring the scalar fused
        kernels' reuse of their gather scratch.
        """
        self._kernel(grads)
        self.t += 1

    def _kernel(self, grads: np.ndarray) -> None:
        """Subclass hook: the actual batched update."""
        raise NotImplementedError

    def stats_for(self, r: int) -> dict:
        """Per-replicate tuner statistics (YellowFin family only)."""
        raise NotImplementedError(
            f"{type(self).__name__} records no tuner statistics")


class VecSGD(VecOptimizer):
    """Batched vanilla SGD (mirrors :class:`repro.optim.SGD`)."""

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int],
                 lr: float = 0.05, weight_decay: float = 0.0,
                 fused: bool = False):
        super().__init__(buffer, offsets)
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.fused = bool(fused)  # fused and per-tensor SGD are identical

    def _kernel(self, grads: np.ndarray) -> None:
        if self.weight_decay:
            grads += self.weight_decay * self.buffer
        self.buffer -= self.lr * grads


class VecMomentumSGD(VecOptimizer):
    """Batched Polyak/Nesterov momentum SGD
    (mirrors :class:`repro.optim.MomentumSGD`)."""

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int],
                 lr: float = 0.05, momentum: float = 0.9,
                 nesterov: bool = False, weight_decay: float = 0.0,
                 fused: bool = False):
        super().__init__(buffer, offsets)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self.fused = bool(fused)
        self._velocity = np.zeros_like(buffer)

    def _kernel(self, grads: np.ndarray) -> None:
        mu, alpha = self.momentum, self.lr
        x, v = self.buffer, self._velocity
        if self.weight_decay:
            grads += self.weight_decay * x
        v *= mu
        v -= alpha * grads
        if self.nesterov:
            x += mu * v - alpha * grads
        else:
            x += v


class VecAdam(VecOptimizer):
    """Batched Adam with bias correction
    (mirrors :class:`repro.optim.Adam`)."""

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int],
                 lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 amsgrad: bool = False, fused: bool = False):
        super().__init__(buffer, offsets)
        if not -1.0 < beta1 < 1.0:
            raise ValueError(f"beta1 must be in (-1, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.amsgrad = bool(amsgrad)
        self.fused = bool(fused)
        self._m = np.zeros_like(buffer)
        self._v = np.zeros_like(buffer)
        self._vmax = np.zeros_like(buffer)

    def step(self, grads: np.ndarray) -> None:
        """One bias-corrected Adam lockstep (``t`` increments first,
        as in the scalar class)."""
        self.t += 1
        self._kernel(grads)

    def _kernel(self, grads: np.ndarray) -> None:
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        m, v, vmax = self._m, self._v, self._vmax
        m *= b1
        m += (1 - b1) * grads
        v *= b2
        v += (1 - b2) * grads * grads
        m_hat = m / bias1
        if self.amsgrad:
            np.maximum(vmax, v, out=vmax)
            v_hat = vmax / bias2
        else:
            v_hat = v / bias2
        self.buffer -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class VecYellowFin(VecOptimizer):
    """Batched YellowFin: per-replicate tuned ``(lr, mu)`` vectors.

    The measurement oracles, EMAs, and momentum update all run batched;
    the SingleStep rule (a handful of scalar operations) loops per
    replicate through the exact scalar solver.  Mirrors
    :class:`repro.core.yellowfin.YellowFin` row by row, in both fused
    and per-tensor reduction modes.
    """

    has_stats = True

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int],
                 lr: float = 1.0, momentum: float = 0.0,
                 beta: float = 0.999, window: int = 20,
                 adaptive_clip: bool = True, slow_start: bool = True,
                 lr_factor: float = 1.0,
                 prescribed_momentum: Optional[float] = None,
                 zero_debias: bool = True,
                 log_space_curvature: bool = True,
                 nesterov: bool = False, fused: bool = False):
        super().__init__(buffer, offsets)
        if lr <= 0:
            raise ValueError(f"initial lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(
                f"initial momentum must be in [0, 1), got {momentum}")
        from repro.core.ema import ZeroDebiasEMA

        self.lr = np.full(self.replicates, float(lr))
        self.momentum = np.full(self.replicates, float(momentum))
        self.window = window
        self.slow_start = slow_start
        self.lr_factor = lr_factor
        self.prescribed_momentum = prescribed_momentum
        self.nesterov = nesterov
        self.fused = bool(fused)
        self.measurements = VecMeasurements(
            self.replicates, offsets, fused=self.fused, beta=beta,
            window=window, limit_envelope_growth=adaptive_clip,
            log_space_curvature=log_space_curvature,
            zero_debias=zero_debias)
        self.clipper: Optional[VecAdaptiveClipper] = (
            VecAdaptiveClipper(self.replicates, offsets, fused=self.fused)
            if adaptive_clip else None)
        self._lr_ema = ZeroDebiasEMA(beta, debias=zero_debias)
        self._mu_ema = ZeroDebiasEMA(beta, debias=zero_debias)
        self._velocity = np.zeros_like(buffer)

    # ------------------------------------------------------------- #
    # tuner
    # ------------------------------------------------------------- #
    def _clip_gradients(self, grads: np.ndarray) -> None:
        """Adaptive-clip every replicate row in place."""
        hmax = None
        if self.clipper is not None and \
                self.measurements.curvature._hmax.initialized:
            hmax = self.measurements.curvature.hmax
        if self.clipper is not None:
            self.clipper.clip(grads, hmax)

    def _tune(self, grads: np.ndarray) -> None:
        """Measure + SingleStep + EMA smoothing, all per replicate."""
        snap = self.measurements.update(grads)
        result = vec_single_step(variance=snap.variance,
                                 distance=snap.distance,
                                 hmax=snap.hmax, hmin=snap.hmin)
        self.momentum = np.asarray(self._mu_ema.update(result.mu),
                                   dtype=np.float64)
        self.lr = np.asarray(self._lr_ema.update(result.lr),
                             dtype=np.float64)

    def effective_lr(self) -> np.ndarray:
        """Per-replicate applied learning rates (slow start included)."""
        lr = self.lr * self.lr_factor
        if self.slow_start:
            lr = np.minimum(lr, (self.t + 1) * lr / (10.0 * self.window))
        return lr

    def effective_momentum(self) -> np.ndarray:
        """Per-replicate applied momenta (honours the prescribed one)."""
        if self.prescribed_momentum is not None:
            return np.full(self.replicates,
                           float(self.prescribed_momentum))
        return self.momentum

    # ------------------------------------------------------------- #
    # update
    # ------------------------------------------------------------- #
    def step(self, grads: np.ndarray) -> None:
        """One batched tuner + momentum-SGD lockstep (Algorithm 1)."""
        self._clip_gradients(grads)
        self._tune(grads)
        self._apply_momentum_update(self.effective_momentum(),
                                    self.effective_lr(), grads)
        self.t += 1

    def _apply_momentum_update(self, mu: np.ndarray, alpha: np.ndarray,
                               grads: np.ndarray) -> None:
        """Momentum update with per-replicate ``(mu, alpha)`` columns."""
        mu_col = mu[:, None]
        alpha_col = alpha[:, None]
        x, v = self.buffer, self._velocity
        v *= mu_col
        v -= alpha_col * grads
        if self.nesterov:
            x += mu_col * v - alpha_col * grads
        else:
            x += v

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #
    def stats_all(self) -> List[dict]:
        """Every replicate's tuner statistics, computed in one batch.

        One snapshot and one hyperparameter evaluation serve all ``R``
        dicts (the per-replicate ``stats_for`` would recompute the
        vectorized snapshot per call — O(R²·N) per commit).
        """
        eff_lr = self.effective_lr()
        eff_mu = self.effective_momentum()
        target = self.momentum
        if self.t == 0:
            nan = float("nan")
            return [{"lr": float(eff_lr[r]), "momentum": float(eff_mu[r]),
                     "target_momentum": float(target[r]),
                     "hmax": nan, "hmin": nan, "variance": nan,
                     "distance": nan}
                    for r in range(self.replicates)]
        snap = self.measurements.snapshot()
        return [{"lr": float(eff_lr[r]), "momentum": float(eff_mu[r]),
                 "target_momentum": float(target[r]),
                 "hmax": float(snap.hmax[r]), "hmin": float(snap.hmin[r]),
                 "variance": float(snap.variance[r]),
                 "distance": float(snap.distance[r])}
                for r in range(self.replicates)]

    def stats_for(self, r: int) -> dict:
        """Replicate ``r``'s tuner statistics (scalar ``stats()``
        mirror)."""
        return self.stats_all()[r]


class VecClosedLoopYellowFin(VecYellowFin):
    """Batched closed-loop YellowFin (Algorithm 5, per replicate).

    Every replicate owns a scalar
    :class:`~repro.core.closed_loop.TotalMomentumEstimator` fed its own
    row (the estimator is deque bookkeeping plus one masked median per
    step); the feedback controller and momentum update run on
    per-replicate vectors.  Mirrors
    :class:`repro.core.closed_loop.ClosedLoopYellowFin` row by row.
    """

    def __init__(self, buffer: np.ndarray, offsets: Sequence[int],
                 gamma: float = 0.01, staleness: int = 0,
                 lr: float = 1e-4, momentum: float = 0.0,
                 momentum_bounds: tuple = (-0.9, 0.999),
                 feedback: bool = True, **kwargs):
        super().__init__(buffer, offsets, lr=lr, momentum=momentum,
                         **kwargs)
        self.gamma = gamma
        self.staleness = staleness
        self.feedback = feedback
        self.momentum_bounds = momentum_bounds
        self.estimators: List[TotalMomentumEstimator] = [
            TotalMomentumEstimator(staleness=staleness)
            for _ in range(self.replicates)]
        self._algorithmic_mu = np.full(self.replicates, float(momentum))
        self.last_total_momentum: List[Optional[float]] = \
            [None] * self.replicates
        for r, estimator in enumerate(self.estimators):
            estimator.record_iterate(self.buffer[r])

    def effective_momentum(self) -> np.ndarray:
        """Per-replicate algorithmic momenta (controller output)."""
        if self.prescribed_momentum is not None:
            return np.full(self.replicates,
                           float(self.prescribed_momentum))
        return self._algorithmic_mu

    def step(self, grads: np.ndarray) -> None:
        """One closed-loop lockstep: tune, measure total momentum per
        replicate, close the feedback loop, update."""
        self._clip_gradients(grads)
        self._tune(grads)
        eff_lr = self.effective_lr()
        lo, hi = self.momentum_bounds
        for r, estimator in enumerate(self.estimators):
            mu_hat = estimator.estimate(grads[r], float(eff_lr[r]))
            self.last_total_momentum[r] = mu_hat
            if mu_hat is not None and self.feedback:
                self._algorithmic_mu[r] = float(np.clip(
                    float(self._algorithmic_mu[r])
                    + self.gamma * (float(self.momentum[r]) - mu_hat),
                    lo, hi))
            else:
                self._algorithmic_mu[r] = float(self.momentum[r])
        self._apply_momentum_update(self.effective_momentum(),
                                    self.effective_lr(), grads)
        self.t += 1
        for r, estimator in enumerate(self.estimators):
            estimator.record_iterate(self.buffer[r])

    def stats_all(self) -> List[dict]:
        """Every replicate's tuner + controller statistics."""
        stats = super().stats_all()
        for r, base in enumerate(stats):
            base["algorithmic_momentum"] = float(self._algorithmic_mu[r])
            mu_hat = self.last_total_momentum[r]
            base["total_momentum"] = (mu_hat if mu_hat is not None
                                      else float("nan"))
        return stats


# ----------------------------------------------------------------- #
# registry
# ----------------------------------------------------------------- #
VecOptimizerFactory = Callable[..., VecOptimizer]


def _vec_sgd(buffer, offsets, lr: float = 0.05, **kwargs) -> VecSGD:
    """VecSGD with the scalar registry's default ``lr``."""
    return VecSGD(buffer, offsets, lr=lr, **kwargs)


def _vec_momentum_sgd(buffer, offsets, lr: float = 0.05,
                      **kwargs) -> VecMomentumSGD:
    """VecMomentumSGD with the scalar registry's default ``lr``."""
    return VecMomentumSGD(buffer, offsets, lr=lr, **kwargs)


def register_vec_optimizer(name: str,
                           factory: VecOptimizerFactory) -> None:
    """Register a batched kernel as the twin of a scalar optimizer.

    Stored in the central typed registry under the ``"vec_optimizer"``
    kind.  The scalar registry must already know the name; the current
    scalar factory is captured as registration metadata, pinning the
    batched kernel to one exact scalar implementation.  If a user
    later replaces the scalar entry (say ``"momentum_sgd"``) via
    :func:`repro.xp.factories.register_optimizer`, the batched twin no
    longer mirrors what the serial path would run and the engine falls
    back to per-replicate scalar execution.
    """
    from repro.registry import registry

    if not registry.has("optimizer", str(name)):
        raise ValueError(
            f"cannot register batched kernel {name!r}: no scalar "
            "optimizer of that name (register_optimizer it first)")
    scalar = registry.get("optimizer", str(name)).factory
    registry.register("vec_optimizer", str(name), factory,
                      skip_positional=2,
                      extra={"scalar_factory": scalar})


def vec_optimizer_names() -> list:
    """Sorted names with a batched kernel (subset of the scalar
    registry; everything else falls back to per-replicate scalar
    runs)."""
    from repro.registry import registry

    return registry.names("vec_optimizer")


def has_vec_optimizer(name: str) -> bool:
    """Whether ``name`` has a batched kernel mirroring the *current*
    scalar registry entry.

    False when the name is unknown — or when the scalar registry entry
    was replaced by a custom factory, since the batched kernel would
    then silently compute something other than ``R`` serial runs of
    the replacement.
    """
    from repro.registry import registry

    if not registry.has("vec_optimizer", name):
        return False
    paired = registry.get("vec_optimizer", name).extra.get(
        "scalar_factory")
    return (registry.has("optimizer", name)
            and registry.get("optimizer", name).factory is paired)


def build_vec_optimizer(name: str, buffer: np.ndarray,
                        offsets: Sequence[int], **kwargs) -> VecOptimizer:
    """Instantiate the batched kernel registered under ``name``.

    Parameters
    ----------
    name : str
        Scalar optimizer registry key (``"momentum_sgd"``, ...).
    buffer : numpy.ndarray
        The ``(R, N)`` parameter matrix to update in place.
    offsets : sequence of int
        Per-tensor column boundaries.
    **kwargs
        The spec's ``optimizer_params`` (same names as the scalar
        factory's).
    """
    from repro.registry import registry

    if not registry.has("vec_optimizer", name):
        raise ValueError(
            f"no batched kernel for optimizer {name!r}; available: "
            f"{vec_optimizer_names()}")
    return registry.build("vec_optimizer", name, buffer, offsets,
                          **kwargs)


# registration happens via repro.xp.factories' scalar entries, so the
# import below must come after the scalar registry is populated; the
# central registry's provider table guarantees that ordering
def _register_builtin_vec_optimizers() -> None:
    """Register the built-in batched kernels against their scalar twins."""
    import repro.xp.factories  # noqa: F401 — populates the scalar kinds

    for name, factory in (("sgd", _vec_sgd),
                          ("momentum_sgd", _vec_momentum_sgd),
                          ("adam", VecAdam),
                          ("yellowfin", VecYellowFin),
                          ("closed_loop_yellowfin",
                           VecClosedLoopYellowFin)):
        register_vec_optimizer(name, factory)


_register_builtin_vec_optimizers()
