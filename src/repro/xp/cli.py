"""``python -m repro.xp`` — deprecated alias of the top-level CLI.

The implementation moved to :mod:`repro.cli` when the CLI was promoted
to ``python -m repro`` (PR 5); this module keeps the historical entry
point working.  ``run`` / ``list`` / ``diff`` behave exactly as before
(``run`` additionally understands ``--backend``); the ``bench``
subcommand is only advertised on the new entry point but accepted here
too, since the alias forwards verbatim.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.cli import main as _main
from repro.utils.deprecation import warn_deprecated


def main(argv: Optional[List[str]] = None) -> int:
    """Forward to :func:`repro.cli.main` with the legacy program name.

    Parameters
    ----------
    argv : list of str, optional
        Arguments (defaults to ``sys.argv[1:]``).
    """
    warn_deprecated("python -m repro.xp", "python -m repro")
    return _main(argv, prog="python -m repro.xp")


if __name__ == "__main__":  # pragma: no cover — exercised via __main__
    sys.exit(main())
