"""Declarative scenario specifications and cross-product matrices.

The paper's headline claims are *matrix* results — optimizer x delay
model x worker count x fault profile — and every figure script used to
hand-roll its own nested loop.  This module gives the sweep a single
declarative form:

- :class:`ScenarioSpec` names one complete cluster experiment (workload,
  optimizer, delay model, fault plan, topology, budgets, seed) as plain
  JSON-able data, with a canonical serialization and a content hash that
  keys the result cache.
- :class:`Matrix` holds a base spec plus named axes of overrides and
  expands their cross product into concrete specs, in a deterministic
  order with human-readable derived names.

Specs round-trip through JSON via the tagged codec of
:mod:`repro.utils.serialization`, so anything the codec preserves
(tuples, ndarrays inside trace payloads) survives ``save`` / ``load``
exactly — and therefore hashes identically before and after a trip to
disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.utils.serialization import decode_state, encode_state

PathLike = Union[str, Path]

# Bumped whenever the spec schema or the result-record layout changes in
# a way that invalidates cached results; part of every content hash.
XP_FORMAT_VERSION = 1

_DELIVERIES = ("fifo", "random")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass
class ScenarioSpec:
    """One complete, reproducible cluster-experiment configuration.

    Every field is plain JSON-able data; the spec is the *whole* input
    of :func:`repro.xp.runner.run_scenario`, so equal specs produce
    bit-identical results and the content hash can key a result cache.

    Attributes
    ----------
    name : str
        Human-readable scenario name (matrix expansion derives
        ``base/label1/label2`` names automatically).
    workload : str
        Workload registry key (see :mod:`repro.xp.workloads`) or a
        ``"module:attribute"`` reference to a workload factory.
    workload_params : dict
        Keyword arguments for the workload factory (sizes, batch size).
    optimizer : str
        Optimizer registry key (see
        :func:`repro.xp.runner.register_optimizer`).
    optimizer_params : dict
        Keyword arguments for the optimizer factory.
    delay : dict
        Declarative delay-model config, ``{"kind": ..., ...}`` (see
        :func:`build_delay_model`).
    faults : dict
        Declarative fault-injector config (see
        :func:`build_fault_injector`); empty means no faults.
    workers, num_shards : int
        Cluster topology.
    shard_policy : str
        Shard-placement policy name (see :mod:`repro.sim.sharding`).
    queue_staleness : int
        Server-side depth gate ``tau`` (0 = commit on arrival).
    delivery : str
        ``"fifo"`` or ``"random"`` queue release.
    reads : int
        Gradient-computation budget of the run.
    updates : int, optional
        Update budget (``None`` commits whatever arrives in time).
    seed : int, optional
        Base seed for the workload builder and the server RNG.  ``None``
        derives a deterministic per-scenario seed from the content hash,
        so unnamed sweeps still get stable, distinct streams.
    record_series : tuple of str
        Log series to keep (verbatim) in the result record.
    smooth : int
        Window for the head/tail loss averages in the result metrics.
    replicates : int
        Independent seed-replicates of the scenario to run (default 1).
        Replicate 0 uses the scenario's own resolved seed; further
        replicates use seeds derived from the replicate-independent
        content hash, so growing ``replicates`` extends a sweep without
        changing earlier replicates.  ``replicates > 1`` aggregates
        mean/std/CI metrics into the result (see
        :mod:`repro.vec.runner`) and is part of the content hash;
        ``replicates == 1`` is canonicalized away so existing spec
        hashes, caches, and derived seeds are unchanged.
    fleet : dict
        Declarative fleet-topology config (see
        :mod:`repro.fleet.topology`): named worker classes with
        per-class delay sub-models and cost/power rates, plus
        correlated fault groups.  :func:`repro.fleet.topology.
        expand_fleet` rewrites it into concrete ``workers`` /
        ``delay`` / ``faults`` fields (pinning the original resolved
        seed) before execution.  Empty (the default) means no topology
        and is canonicalized away, so existing spec hashes are
        unchanged.
    lazy : bool
        Run workload loss evaluations through the :mod:`repro.lazy`
        deferred-execution engine on backends that declare the
        ``lazy_autograd`` capability (see
        :mod:`repro.run.backends`).  Results are bit-identical to
        eager execution; the result environment records
        ``lazy_engine: fused|fallback``.  The default ``False`` is
        canonicalized away so existing spec hashes are unchanged.
    """

    name: str
    workload: str = "toy_classifier"
    workload_params: Dict[str, object] = field(default_factory=dict)
    optimizer: str = "momentum_sgd"
    optimizer_params: Dict[str, object] = field(default_factory=dict)
    delay: Dict[str, object] = field(
        default_factory=lambda: {"kind": "constant", "delay": 1.0})
    faults: Dict[str, object] = field(default_factory=dict)
    workers: int = 4
    num_shards: int = 1
    shard_policy: str = "hash"
    queue_staleness: int = 0
    delivery: str = "fifo"
    reads: int = 200
    updates: Optional[int] = None
    seed: Optional[int] = None
    record_series: Tuple[str, ...] = ("loss",)
    smooth: int = 25
    replicates: int = 1
    fleet: Dict[str, object] = field(default_factory=dict)
    lazy: bool = False

    def __post_init__(self):
        """Validate field ranges and normalize container types."""
        _require(bool(self.name), "scenario name must be non-empty")
        _require(self.replicates >= 1,
                 f"replicates must be >= 1, got {self.replicates}")
        _require(self.workers >= 1,
                 f"workers must be >= 1, got {self.workers}")
        _require(self.num_shards >= 1,
                 f"num_shards must be >= 1, got {self.num_shards}")
        _require(self.reads >= 0, f"reads must be >= 0, got {self.reads}")
        _require(self.updates is None or self.updates >= 0,
                 f"updates must be >= 0, got {self.updates}")
        _require(self.queue_staleness >= 0,
                 f"queue_staleness must be >= 0, got {self.queue_staleness}")
        _require(self.delivery in _DELIVERIES,
                 f"delivery must be one of {_DELIVERIES}, "
                 f"got {self.delivery!r}")
        _require(self.smooth >= 1, f"smooth must be >= 1, got {self.smooth}")
        _require(isinstance(self.delay, dict) and "kind" in self.delay,
                 f'delay config needs a "kind" key, got {self.delay!r}')
        _require(isinstance(self.faults, dict),
                 f"faults config must be a dict, got {self.faults!r}")
        _require(isinstance(self.fleet, dict),
                 f"fleet config must be a dict, got {self.fleet!r}")
        self.record_series = tuple(self.record_series)

    # ------------------------------------------------------------- #
    # serialization + identity
    # ------------------------------------------------------------- #
    def as_dict(self) -> dict:
        """Plain-data mirror of the spec (JSON-able after the codec)."""
        data = asdict(self)
        data["record_series"] = list(self.record_series)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`as_dict` output.

        Unknown keys raise so stale cache entries or hand-edited files
        fail loudly instead of being silently reinterpreted.
        """
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**data)

    def canonical_json(self) -> str:
        """Canonical serialization: codec-encoded, sorted keys, no
        whitespace — equal specs always produce the same bytes.

        The default ``replicates == 1`` is canonicalized away, so
        single-replicate specs hash (and therefore cache, and derive
        seeds) exactly as they did before the field existed; any other
        replicate count is part of the hash and misses the cache
        cleanly.  An empty ``fleet`` config is canonicalized away for
        the same reason.
        """
        data = self.as_dict()
        if data.get("replicates") == 1:
            del data["replicates"]
        if not data.get("fleet"):
            data.pop("fleet", None)
        if not data.get("lazy"):
            data.pop("lazy", None)
        payload = {"xp_format": XP_FORMAT_VERSION,
                   "spec": encode_state(data)}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)

    def content_hash(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the result-cache key."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def resolved_seed(self) -> int:
        """The seed the runner actually uses.

        Explicit seeds pass through; ``None`` derives a stable value
        from the content hash, so the same spec always reseeds
        identically while distinct scenarios get distinct streams.
        """
        if self.seed is not None:
            return int(self.seed)
        return int(self.content_hash()[:12], 16) % (2 ** 31)

    def replicate_seeds(self) -> List[int]:
        """Deterministic per-replicate seeds, one per replicate.

        Replicate 0 is the scenario's own :meth:`resolved_seed`;
        replicate ``r >= 1`` derives its seed by hashing the
        replicate-independent content hash (the spec with
        ``replicates`` canonicalized to 1) together with ``r``.  The
        derivation ignores the replicate *count*, so raising
        ``replicates`` from 8 to 16 keeps the first 8 trajectories
        bit-identical.
        """
        base = (self if self.replicates == 1
                else self.with_overrides({"replicates": 1}))
        scalar_hash = base.content_hash()
        seeds = [base.resolved_seed()]
        for r in range(1, self.replicates):
            digest = hashlib.sha256(
                f"{scalar_hash}/replicate/{r}".encode("utf-8")).hexdigest()
            seeds.append(int(digest[:12], 16) % (2 ** 31))
        return seeds

    def replicate_spec(self, r: int) -> "ScenarioSpec":
        """The single-replicate scenario that replicate ``r`` runs.

        Same spec with ``replicates = 1`` and the derived seed made
        explicit; running it through the scalar path reproduces
        replicate ``r`` of the batched run bit-for-bit (the
        differential-suite contract).
        """
        if not 0 <= r < self.replicates:
            raise ValueError(
                f"replicate index {r} outside [0, {self.replicates})")
        return self.with_overrides(
            {"replicates": 1, "seed": self.replicate_seeds()[r]})

    def validate_components(self) -> "ScenarioSpec":
        """Pre-flight the spec against the typed component registry.

        Checks that every named component exists — optimizer,
        workload (registry key or ``module:attr`` reference), delay
        kind, scheduled fault kinds, shard policy — and that the
        parameter dicts match the declared config schemas
        (:mod:`repro.registry`), so a typo'd spec fails with the
        component's parameter list instead of a mid-run ``TypeError``
        in a worker process.  Structural field checks happen at
        construction; this adds the registry-dependent half and is
        what :func:`repro.run.run` calls before executing.

        Returns
        -------
        ScenarioSpec
            ``self`` (for chaining).

        Raises
        ------
        ValueError
            Naming the offending component and its declared keys.
        """
        from repro.registry import registry
        from repro.xp.factories import (delay_kinds, fault_kinds,
                                        optimizer_names)
        from repro.xp.workloads import workload_names

        if not registry.has("optimizer", self.optimizer):
            raise ValueError(
                f"scenario {self.name!r}: unknown optimizer "
                f"{self.optimizer!r}; choose from {optimizer_names()}")
        registry.validate("optimizer", self.optimizer,
                          self.optimizer_params)
        if ":" not in self.workload:
            if not registry.has("workload", self.workload):
                raise ValueError(
                    f"scenario {self.name!r}: unknown workload "
                    f"{self.workload!r}; choose from {workload_names()} "
                    "or use a 'module:attr' reference")
            registry.validate("workload", self.workload,
                              self.workload_params)
        kind = self.delay.get("kind")
        if not registry.has("delay", kind):
            raise ValueError(
                f"scenario {self.name!r}: unknown delay kind {kind!r}; "
                f"choose from {delay_kinds()}")
        registry.validate("delay", kind,
                          {k: v for k, v in self.delay.items()
                           if k != "kind"})
        if self.faults:
            params = dict(self.faults)
            for entry in params.pop("scheduled", []):
                fk = entry.get("kind") if isinstance(entry, dict) else None
                if fk == "injector" or not registry.has("fault", fk):
                    raise ValueError(
                        f"scenario {self.name!r}: unknown scheduled "
                        f"fault kind {fk!r}; choose from {fault_kinds()}")
                registry.validate("fault", fk,
                                  {k: v for k, v in entry.items()
                                   if k != "kind"})
            registry.validate("fault", "injector", params)
        if isinstance(self.shard_policy, str) \
                and not registry.has("sharding", self.shard_policy):
            raise ValueError(
                f"scenario {self.name!r}: unknown shard policy "
                f"{self.shard_policy!r}; choose from "
                f"{registry.names('sharding')}")
        if self.fleet:
            from repro.fleet.topology import build_topology

            try:
                build_topology(self.fleet)
            except (TypeError, ValueError, KeyError) as exc:
                raise ValueError(
                    f"scenario {self.name!r}: invalid fleet topology: "
                    f"{exc}") from None
        return self

    def with_overrides(self, overrides: Dict[str, object],
                       name: Optional[str] = None) -> "ScenarioSpec":
        """A copy with dotted-path field overrides applied.

        Parameters
        ----------
        overrides : dict
            ``{"field": value}`` or ``{"outer.inner": value}`` entries;
            dotted paths descend into dict-valued fields
            (``"optimizer_params.gamma"``).
        name : str, optional
            Name of the derived spec (keeps the current one if omitted).

        Returns
        -------
        ScenarioSpec
        """
        data = decode_state(encode_state(self.as_dict()))  # deep copy
        for path, value in overrides.items():
            _set_path(data, path, value)
        if name is not None:
            data["name"] = name
        return ScenarioSpec.from_dict(data)


def _set_path(tree: dict, path: str, value: object) -> None:
    parts = path.split(".")
    if parts[0] not in ScenarioSpec.__dataclass_fields__:
        raise ValueError(
            f"override path {path!r} does not start with a "
            "ScenarioSpec field")
    node = tree
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


@dataclass
class Matrix:
    """A base spec plus named override axes; expansion = cross product.

    Attributes
    ----------
    base : ScenarioSpec
        The configuration every scenario starts from.
    axes : dict
        ``{axis_name: {label: {field_path: value, ...}, ...}, ...}``.
        Axes expand in insertion order; within an axis, labels expand in
        insertion order; each expanded scenario applies one override
        set per axis and is named ``base.name/label1/label2/...``.
    """

    base: ScenarioSpec
    axes: Dict[str, Dict[str, Dict[str, object]]] = field(
        default_factory=dict)

    def __post_init__(self):
        """Validate axis shapes (every axis needs at least one label)."""
        for axis, labels in self.axes.items():
            _require(isinstance(labels, dict) and len(labels) > 0,
                     f"axis {axis!r} needs at least one labelled override")
            for label, overrides in labels.items():
                _require(isinstance(overrides, dict),
                         f"axis {axis!r} label {label!r}: overrides must "
                         f"be a dict, got {overrides!r}")

    def _combos(self) -> List[Tuple[Tuple[str, Dict[str, object]], ...]]:
        """One (label, overrides) pair per axis, cross-producted in
        axis order — the single enumeration :meth:`expand` and
        :meth:`labels` both consume, so their orders cannot drift."""
        combos: List[Tuple[Tuple[str, Dict[str, object]], ...]] = [()]
        for labels in self.axes.values():
            combos = [prefix + ((label, overrides),)
                      for prefix in combos
                      for label, overrides in labels.items()]
        return combos

    def expand(self) -> List[ScenarioSpec]:
        """Concrete specs for the full cross product, in axis order."""
        specs = []
        for combo in self._combos():
            merged: Dict[str, object] = {}
            for _, overrides in combo:
                merged.update(overrides)
            suffix = "/".join(label for label, _ in combo)
            name = f"{self.base.name}/{suffix}" if suffix else self.base.name
            specs.append(self.base.with_overrides(merged, name=name))
        return specs

    def labels(self) -> List[Tuple[str, ...]]:
        """Label tuples in the same order :meth:`expand` emits specs."""
        return [tuple(label for label, _ in combo)
                for combo in self._combos()]

    def as_dict(self) -> dict:
        """Plain-data mirror (``{"base": ..., "axes": ...}``)."""
        return {"base": self.base.as_dict(), "axes": self.axes}

    @classmethod
    def from_dict(cls, data: dict) -> "Matrix":
        """Rebuild a matrix from :meth:`as_dict` output."""
        return cls(base=ScenarioSpec.from_dict(data["base"]),
                   axes={str(axis): {str(label): dict(overrides)
                                     for label, overrides in labels.items()}
                         for axis, labels in data.get("axes", {}).items()})


# ----------------------------------------------------------------- #
# file round trip
# ----------------------------------------------------------------- #
def save_scenarios(obj: Union[Matrix, Sequence[ScenarioSpec]],
                   path: PathLike) -> None:
    """Write a matrix or a list of specs as a JSON scenario file.

    The file carries either ``{"base": ..., "axes": ...}`` (a matrix)
    or ``{"scenarios": [...]}`` (an explicit list), wrapped through the
    tagged codec so the round trip is lossless.
    """
    if isinstance(obj, Matrix):
        payload = obj.as_dict()
    else:
        payload = {"scenarios": [spec.as_dict() for spec in obj]}
    payload["xp_format"] = XP_FORMAT_VERSION
    # no sort_keys: axis/label insertion order is meaningful (it fixes
    # the expansion order), and JSON objects preserve it on reload
    Path(path).write_text(
        json.dumps(encode_state(payload), indent=2, allow_nan=False)
        + "\n")


def load_scenarios(path: PathLike) -> List[ScenarioSpec]:
    """Read a scenario file back as a concrete spec list.

    Matrix files are expanded; explicit lists pass through.  A recorded
    ``xp_format`` newer than this library's raises, so format drift is
    an error instead of a misread.
    """
    payload = decode_state(json.loads(Path(path).read_text()))
    recorded = payload.pop("xp_format", XP_FORMAT_VERSION)
    if recorded > XP_FORMAT_VERSION:
        raise ValueError(
            f"scenario file {path} has xp_format {recorded}, this "
            f"library supports <= {XP_FORMAT_VERSION}")
    if "scenarios" in payload:
        return [ScenarioSpec.from_dict(d) for d in payload["scenarios"]]
    if "base" in payload:
        return Matrix.from_dict(payload).expand()
    raise ValueError(
        f'scenario file {path} has neither "scenarios" nor "base"')
