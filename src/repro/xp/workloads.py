"""Workload registry: spec names to (model, loss_fn) builders.

A workload factory maps the spec's ``workload_params`` to a *builder*,
and the builder maps a seed to ``(model, loss_fn)`` — the same contract
:class:`repro.tuning.Workload` uses, so benchmark workloads port
directly.  Because scenarios may execute in worker processes, a
workload is always named, never passed as a closure: either a registry
key (the built-ins below, or anything added via
:func:`register_workload` before the runner forks) or a
``"module:attribute"`` reference importable from any process.

Built-ins
---------
- ``"toy_classifier"`` — the 512x8 two-class MLP used by the cluster
  scenario and ablation suites (fast, well-conditioned).
- ``"cifar10_resnet"`` / ``"cifar100_resnet"`` — the laptop-scale
  synthetic-image ResNet workloads of the figure suite.
- ``"quadratic_bowl"`` — the noisy quadratic of the paper's analysis
  sections, with an analytic gradient oracle.  Its batched twin in
  :mod:`repro.vec.workloads` evaluates all replicates of a scenario in
  single NumPy operations, so replicate sweeps run at matrix speed.
"""

from __future__ import annotations

import importlib
from typing import Callable, Tuple

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.data import BatchLoader, make_cifar10_like, make_cifar100_like
from repro.models import make_resnet_cifar10, make_resnet_cifar100
from repro.nn.module import Module
from repro.registry import registry

# builder: seed -> (model, loss_fn); factory: **workload_params -> builder
WorkloadBuilder = Callable[[int], Tuple[Module, Callable]]
WorkloadFactory = Callable[..., WorkloadBuilder]


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Add (or replace) a workload factory under ``name``.

    Stored in the central typed registry (:mod:`repro.registry`) under
    the ``"workload"`` kind.  Registration must happen before a
    :class:`~repro.xp.runner.ParallelRunner` forks its pool (module
    import time is the safe place); workloads needed under the
    ``spawn`` start method should be referenced as
    ``"module:attribute"`` instead.
    """
    registry.register("workload", str(name), factory)


def workload_names() -> list:
    """Sorted registry keys (for error messages and CLI listings)."""
    return registry.names("workload")


def build_workload(name: str, **params) -> WorkloadBuilder:
    """Resolve ``name`` and apply ``params``, returning the builder.

    Parameters
    ----------
    name : str
        Registry key, or ``"module:attribute"`` naming a factory.
    **params
        The spec's ``workload_params``, forwarded to the factory.

    Returns
    -------
    callable
        ``builder(seed) -> (model, loss_fn)``.
    """
    if registry.has("workload", name):
        return registry.build("workload", name, **params)
    if ":" in name:
        mod_name, _, attr = name.partition(":")
        try:
            factory = getattr(importlib.import_module(mod_name), attr)
        except (ImportError, AttributeError) as exc:
            raise ValueError(
                f"cannot resolve workload reference {name!r}: {exc}"
            ) from exc
        return factory(**params)
    raise ValueError(
        f"unknown workload {name!r}; choose from {workload_names()}, "
        "register_workload() your own, or use a 'module:attr' reference")


# ----------------------------------------------------------------- #
# built-ins
# ----------------------------------------------------------------- #
def toy_classifier(samples: int = 512, features: int = 8,
                   hidden: int = 24, classes: int = 2,
                   batch_size: int = 32,
                   noise: float = 0.3) -> WorkloadBuilder:
    """Linear-teacher two-class MLP: the scenario suites' fast workload.

    A random linear teacher labels Gaussian inputs (with label noise);
    the student is a one-hidden-layer ReLU MLP trained with
    cross-entropy on shuffled minibatches.  Matches the problem the
    cluster-scenario and closed-loop-ablation benchmarks always used,
    so refactored records stay comparable.
    """

    def build(seed: int):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(samples, features))
        w_true = rng.normal(size=features)
        y = (x @ w_true + noise * rng.normal(size=samples) > 0).astype(int)
        model = nn.Sequential(nn.Linear(features, hidden, seed=seed),
                              nn.ReLU(),
                              nn.Linear(hidden, classes, seed=seed + 1))
        loader = BatchLoader(x, y, batch_size=batch_size, seed=seed)

        def loss_fn():
            xb, yb = loader.next_batch()
            return F.cross_entropy(model(Tensor(xb)), yb)

        return model, loss_fn

    return build


def _image_resnet(make_data, make_model, train_size: int, size: int,
                  batch_size: int) -> WorkloadBuilder:
    def build(seed: int):
        data = make_data(seed=seed, train_size=train_size, size=size)
        model = make_model(seed=seed)
        loader = BatchLoader(data.x_train, data.y_train,
                             batch_size=batch_size, seed=seed)

        def loss_fn():
            xb, yb = loader.next_batch()
            return F.cross_entropy(model(xb), yb)

        return model, loss_fn

    return build


def cifar10_resnet(train_size: int = 256, size: int = 8,
                   batch_size: int = 16, width: int = 3,
                   blocks_per_stage: int = 1) -> WorkloadBuilder:
    """Synthetic CIFAR10-like images + basic-block ResNet (figure scale)."""
    return _image_resnet(
        make_cifar10_like,
        lambda seed: make_resnet_cifar10(width=width,
                                         blocks_per_stage=blocks_per_stage,
                                         seed=seed),
        train_size=train_size, size=size, batch_size=batch_size)


def cifar100_resnet(train_size: int = 256, size: int = 8,
                    batch_size: int = 16, width: int = 3,
                    blocks_per_stage: int = 1) -> WorkloadBuilder:
    """Synthetic CIFAR100-like images + bottleneck ResNet (figure scale)."""
    return _image_resnet(
        make_cifar100_like,
        lambda seed: make_resnet_cifar100(width=width,
                                          blocks_per_stage=blocks_per_stage,
                                          seed=seed),
        train_size=train_size, size=size, batch_size=batch_size)


class _AnalyticLoss:
    """Loss shim for analytic-gradient workloads.

    Duck-types the two attributes the training loops consume —
    ``.data`` (the scalar loss value) and ``.backward()`` (which
    installs the precomputed gradient on the parameter) — without
    building an autograd graph, so scalar and batched evaluations of a
    closed-form workload share one arithmetic path exactly.
    """

    def __init__(self, value: float, param, grad: np.ndarray):
        self.data = np.float64(value)
        self._param = param
        self._grad = grad

    def backward(self) -> None:
        self._param.grad = self._grad


class _QuadraticBowlModel(Module):
    """Single-parameter container for the quadratic-bowl workload."""

    def __init__(self, x0: np.ndarray):
        super().__init__()
        from repro.nn.module import Parameter
        self.x = Parameter(np.asarray(x0, dtype=np.float64))


def quadratic_bowl(dim: int = 256, hmin: float = 0.05, hmax: float = 2.0,
                   noise: float = 0.1,
                   noise_horizon: int = 512) -> WorkloadBuilder:
    """Noisy quadratic: ``f(x) = 0.5 xᵀ H x`` with gradient noise.

    ``H`` is a fixed diagonal with a log-uniform spectrum over
    ``[hmin, hmax]`` (the generalized-curvature range of the paper's
    robustness analysis); read ``t`` observes the deterministic loss
    and the stochastic gradient ``H x + noise · ε_t`` with a noise
    table of ``noise_horizon`` i.i.d. ``N(0, I)`` rows drawn up front
    from the builder's seeded stream (reads past the horizon reuse it
    cyclically).  Gradients come from an analytic oracle shared
    verbatim with the batched evaluator in :mod:`repro.vec.workloads`,
    which is what makes the replicate engine's records bit-identical
    to serial runs on this workload.
    """

    def build(seed: int):
        rng = np.random.default_rng(seed)
        h = np.exp(np.linspace(np.log(hmin), np.log(hmax), dim))
        model = _QuadraticBowlModel(rng.normal(size=dim))
        table = noise * rng.normal(size=(noise_horizon, dim))
        counter = [0]

        def loss_fn():
            t = counter[0] % noise_horizon
            counter[0] += 1
            x = model.x.data
            hx = h * x
            grad = hx + table[t]
            value = 0.5 * float(np.sum(hx * x))
            return _AnalyticLoss(value, model.x, grad)

        return model, loss_fn

    return build


register_workload("toy_classifier", toy_classifier)
register_workload("cifar10_resnet", cifar10_resnet)
register_workload("cifar100_resnet", cifar100_resnet)
register_workload("quadratic_bowl", quadratic_bowl)
