"""Perf-regression gating: fresh records vs committed BENCH baselines.

:class:`BaselineComparator` diffs freshly-measured
``BENCH_*.json`` records (see :mod:`repro.bench.report`) against the
baselines committed in the repository and produces a machine-readable
report.  Three ideas keep the gate honest:

- **Direction-aware tolerances.**  Each metric matches a
  :class:`MetricRule` by ``fnmatch`` pattern; the rule says which
  direction is a regression (losses down = good, speedups up = good)
  and how much relative drift is tolerated (20% by default, per the CI
  contract).  Unmatched metrics are reported but never gate.
- **Environment awareness.**  Records carry an interpreter/platform
  fingerprint (and, since this PR, the bench scale).  Timing-derived
  metrics are only gated when the fingerprints match — a laptop
  baseline cannot fail CI hardware on wall time — while deterministic
  metrics (losses, staleness) gate everywhere.
- **Like-for-like params.**  If the knobs recorded in ``params``
  disagree (different step counts, worker counts, scale), the record
  pair is *incomparable* and the report says so, instead of silently
  comparing unlike runs.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.bench.report import load_record

PathLike = Union[str, Path]

#: Relative drift allowed by default (the CI contract: >20% fails).
DEFAULT_REL_TOL = 0.2


@dataclass(frozen=True)
class MetricRule:
    """How one family of metrics is judged.

    Attributes
    ----------
    pattern : str
        ``fnmatch`` pattern tried against the metric name (first
        matching rule wins).
    direction : str
        ``"lower"`` (increase = regression), ``"higher"`` (decrease =
        regression), ``"two_sided"`` (drift either way = regression),
        or ``"ignore"`` (report only, never gate).
    rel_tol : float
        Relative tolerance before drift counts as a regression.
    timing : bool
        Whether the metric derives from wall-clock measurement; timing
        metrics only gate when baseline and fresh environments match.
    """

    pattern: str
    direction: str = "two_sided"
    rel_tol: float = DEFAULT_REL_TOL
    timing: bool = False


#: First match wins; the catch-all keeps unknown metrics informational.
#: Speedup ratios are dimensionless (fused vs per-tensor on the *same*
#: machine), so they gate across environments — with a wider band than
#: raw timings, since the ratio still shifts somewhat with hardware.
#: Replicate-statistics companion fields (``*_std`` / ``*_ci95`` and
#: the ``replicates`` count) describe the *spread* of their base
#: metric, not a quantity with a good/bad direction — they are
#: reported, never gated, and instead widen the base metric's
#: tolerance (see :meth:`BaselineComparator.compare_records`).
DEFAULT_RULES = (
    MetricRule("*_std", "ignore"),
    MetricRule("*_ci95", "ignore"),
    MetricRule("replicates", "ignore"),
    # the replicate-axis ratio is overhead-dominated and swings more
    # across hardware than kernel speedups; 45% keeps the committed
    # ~9x baseline's floor (~5.1x) aligned with the benchmark's own
    # hard >=5x assertion instead of failing healthy slower runners
    MetricRule("speedup_8x", "higher", 0.45),
    MetricRule("*speedup*", "higher", 0.35),
    # disabled-observability overhead is a ratio of two sub-microsecond
    # timings, so it swings hard across machines; the benchmark's own
    # <2% assertion is the real gate, this only catches blow-ups
    MetricRule("*overhead*", "lower", 4.0, timing=True),
    # serve-level service times: open-loop tail percentiles over a few
    # dozen Poisson arrivals and ~50ms one-worker sweep walls swing
    # wildly with machine load, so only blow-ups gate here — the
    # batching_speedup ratio is the portable claim the gate holds
    MetricRule("latency_*", "lower", 4.0, timing=True),
    MetricRule("batching_wall_s", "lower", 1.5, timing=True),
    MetricRule("fifo_wall_s", "lower", 1.5, timing=True),
    MetricRule("duration_s", "lower", 1.5, timing=True),
    MetricRule("*wall*", "lower", DEFAULT_REL_TOL, timing=True),
    MetricRule("*time*", "lower", DEFAULT_REL_TOL, timing=True),
    MetricRule("*_s", "lower", DEFAULT_REL_TOL, timing=True),
    MetricRule("*loss*", "lower", DEFAULT_REL_TOL),
    MetricRule("*final*", "lower", DEFAULT_REL_TOL),
    MetricRule("*worst_case*", "lower", DEFAULT_REL_TOL),
    MetricRule("*staleness*", "two_sided", DEFAULT_REL_TOL),
    MetricRule("diverged", "lower", 0.0),
    MetricRule("*", "ignore"),
)


class BaselineComparator:
    """Diff fresh perf records against committed baselines.

    Parameters
    ----------
    rules : sequence of MetricRule, optional
        Ordered rule list (first ``fnmatch`` hit wins); defaults to
        :data:`DEFAULT_RULES`.
    rel_tol : float, optional
        Overrides every rule's tolerance when given (the CLI's
        ``--tol`` knob).
    gate_timings : str or bool, optional
        ``"auto"`` (default) gates timing metrics only when the two
        records' environment fingerprints match; ``True`` / ``False``
        force gating on or off.
    """

    def __init__(self, rules: Optional[Sequence[MetricRule]] = None,
                 rel_tol: Optional[float] = None,
                 gate_timings: Union[str, bool] = "auto"):
        if gate_timings not in ("auto", True, False):
            raise ValueError(
                f'gate_timings must be "auto", True, or False, '
                f"got {gate_timings!r}")
        self.rules: List[MetricRule] = list(rules or DEFAULT_RULES)
        if rel_tol is not None:
            if rel_tol < 0:
                raise ValueError(f"rel_tol must be >= 0, got {rel_tol}")
            self.rules = [MetricRule(r.pattern, r.direction, rel_tol,
                                     r.timing) for r in self.rules]
        self.gate_timings = gate_timings

    def rule_for(self, metric: str) -> MetricRule:
        """The first rule whose pattern matches ``metric``."""
        for rule in self.rules:
            if fnmatch.fnmatch(metric, rule.pattern):
                return rule
        return MetricRule("*", "ignore")

    # ------------------------------------------------------------- #
    # record-level comparison
    # ------------------------------------------------------------- #
    def compare_records(self, baseline: dict, fresh: dict) -> dict:
        """Compare one baseline/fresh record pair.

        Parameters
        ----------
        baseline, fresh : dict
            ``BENCH_*.json`` payloads (``name`` / ``metrics`` /
            ``params`` / ``env``).

        Returns
        -------
        dict
            ``{"name", "status", "env_match", "env_drift",
            "params_drift", "comparisons"}`` where ``status`` is
            ``"pass"``, ``"fail"``, or ``"incomparable"`` and each
            comparison entry carries the metric, both values, the
            relative change, the governing rule, and a per-metric
            status (``ok`` / ``improved`` / ``regression`` / ``info`` /
            ``missing`` / ``new``).
        """
        name = baseline.get("name") or fresh.get("name") or "?"
        env_drift = _dict_drift(baseline.get("env", {}),
                                fresh.get("env", {}))
        env_match = not env_drift
        params_drift = _dict_drift(baseline.get("params", {}),
                                   fresh.get("params", {}))
        # params present in both but different make the pair unlike
        # runs; keys on one side only are recorded as drift but do not
        # block comparison (older records lack newer metadata keys)
        conflicting = [d for d in params_drift if d["kind"] == "changed"]
        report = {"name": name, "env_match": env_match,
                  "env_drift": env_drift, "params_drift": params_drift,
                  "comparisons": []}
        if conflicting:
            report["status"] = "incomparable"
            report["reason"] = (
                "params differ: "
                + ", ".join(f"{d['key']}: {d['baseline']!r} -> "
                            f"{d['fresh']!r}" for d in conflicting))
            return report

        timings_gated = (self.gate_timings is True
                         or (self.gate_timings == "auto" and env_match))
        base_metrics = baseline.get("metrics", {})
        fresh_metrics = fresh.get("metrics", {})
        failed = False
        for metric in sorted(base_metrics):
            rule = self.rule_for(metric)
            # CI-aware gating: a replicated metric's statistical
            # uncertainty (the larger of the two records' 95% CI
            # half-widths, relative to the baseline value) widens the
            # tolerance — drift inside the replicate noise floor never
            # trips the gate
            ci = max(_ci_halfwidth(base_metrics, metric),
                     _ci_halfwidth(fresh_metrics, metric))
            if ci > 0.0:
                base_value = base_metrics[metric]
                try:
                    scale = abs(float(base_value))
                except (TypeError, ValueError):
                    scale = 0.0
                if scale > 0.0 and math.isfinite(scale):
                    rule = MetricRule(rule.pattern, rule.direction,
                                      rule.rel_tol + ci / scale,
                                      rule.timing)
            gated = rule.direction != "ignore" and (
                not rule.timing or timings_gated)
            entry = {"metric": metric, "baseline": base_metrics[metric],
                     "direction": rule.direction, "rel_tol": rule.rel_tol,
                     "gated": gated}
            if metric not in fresh_metrics:
                entry["status"] = "missing"
                failed = failed or gated
            else:
                value = fresh_metrics[metric]
                entry["fresh"] = value
                entry.update(_judge(base_metrics[metric], value, rule,
                                    gated))
                failed = failed or entry["status"] == "regression"
            report["comparisons"].append(entry)
        for metric in sorted(set(fresh_metrics) - set(base_metrics)):
            report["comparisons"].append(
                {"metric": metric, "fresh": fresh_metrics[metric],
                 "status": "new", "gated": False})
        report["status"] = "fail" if failed else "pass"
        return report

    # ------------------------------------------------------------- #
    # directory-level comparison
    # ------------------------------------------------------------- #
    def compare_dirs(self, baseline_dir: PathLike, fresh_dir: PathLike,
                     names: Optional[Sequence[str]] = None) -> dict:
        """Compare every paired ``BENCH_*.json`` across two directories.

        Parameters
        ----------
        baseline_dir, fresh_dir : str or Path
            Directories holding the committed and the fresh records.
        names : sequence of str, optional
            Restrict to these record names.  Named records missing on
            either side — or incomparable because their params drifted
            — fail the gate; without ``names``, only records present on
            *both* sides are compared and incomparable pairs are
            reported without failing.

        Returns
        -------
        dict
            ``{"status": "pass"|"fail", "records": [...],
            "failures": [...], "summary": {...}}`` — directly
            serializable as the CI artifact.
        """
        baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
        base_names = _record_names(baseline_dir)
        fresh_names = _record_names(fresh_dir)
        if names is not None:
            selected = list(names)
        else:
            selected = sorted(base_names & fresh_names)
        records, failures = [], []
        for name in selected:
            missing = []
            if name not in base_names:
                missing.append(f"no baseline BENCH_{name}.json "
                               f"in {baseline_dir}")
            if name not in fresh_names:
                missing.append(f"no fresh BENCH_{name}.json "
                               f"in {fresh_dir}")
            if missing:
                records.append({"name": name, "status": "fail",
                                "reason": "; ".join(missing),
                                "comparisons": []})
                failures.extend(missing)
                continue
            pair = self.compare_records(
                load_record(str(baseline_dir / f"BENCH_{name}.json"))
                .as_dict(),
                load_record(str(fresh_dir / f"BENCH_{name}.json"))
                .as_dict())
            records.append(pair)
            if pair["status"] == "fail":
                failures.extend(
                    f"{name}: {c['metric']} "
                    f"{c.get('baseline')!r} -> {c.get('fresh', 'missing')!r}"
                    for c in pair["comparisons"]
                    if c["status"] in ("regression", "missing")
                    and c.get("gated"))
            elif pair["status"] == "incomparable" and names is not None:
                # an explicitly gated record that can no longer be
                # compared (params drifted without a baseline regen)
                # must fail loudly, or the gate goes silently green
                failures.append(f"{name}: incomparable — "
                                f"{pair.get('reason', 'params differ')}")
        statuses = [r["status"] for r in records]
        return {
            "status": "fail" if failures else "pass",
            "records": records,
            "failures": failures,
            "summary": {
                "compared": len(records),
                "passed": statuses.count("pass"),
                "failed": statuses.count("fail"),
                "incomparable": statuses.count("incomparable"),
            },
        }


def write_report(report: dict, path: PathLike) -> None:
    """Persist a comparison report as indented JSON (the CI artifact)."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")


# ----------------------------------------------------------------- #
# helpers
# ----------------------------------------------------------------- #
def _record_names(directory: Path) -> set:
    return {p.name[len("BENCH_"):-len(".json")]
            for p in directory.glob("BENCH_*.json")}


def _ci_halfwidth(metrics: dict, metric: str) -> float:
    """A record's 95% CI half-width for ``metric`` (0.0 when absent).

    Spread fields themselves (``*_std`` / ``*_ci95``) report no CI of
    their own — widening them would be circular.
    """
    if metric.endswith(("_std", "_ci95")):
        return 0.0
    value = metrics.get(f"{metric}_ci95", 0.0)
    try:
        value = float(value)
    except (TypeError, ValueError):
        return 0.0
    return value if math.isfinite(value) and value > 0.0 else 0.0


def _dict_drift(baseline: dict, fresh: dict) -> List[dict]:
    """Describe how two metadata dicts differ, key by key."""
    drift = []
    for key in sorted(set(baseline) | set(fresh)):
        if key in baseline and key not in fresh:
            drift.append({"key": key, "kind": "baseline_only",
                          "baseline": baseline[key]})
        elif key not in baseline:
            drift.append({"key": key, "kind": "fresh_only",
                          "fresh": fresh[key]})
        elif baseline[key] != fresh[key]:
            drift.append({"key": key, "kind": "changed",
                          "baseline": baseline[key], "fresh": fresh[key]})
    return drift


def _judge(base: float, fresh: float, rule: MetricRule,
           gated: bool) -> dict:
    """Classify one metric's drift under its rule."""
    try:
        base_f, fresh_f = float(base), float(fresh)
    except (TypeError, ValueError):
        status = "ok" if base == fresh else (
            "regression" if gated else "info")
        return {"status": status}
    if math.isnan(base_f) or math.isnan(fresh_f):
        # NaN compares False against everything, which would slip the
        # exact catastrophic case (a metric blowing up to nan) through
        # the tolerance checks below
        if math.isnan(base_f) and math.isnan(fresh_f):
            return {"status": "ok" if gated else "info"}
        return {"status": "regression" if gated else "info"}
    if base_f == fresh_f:
        return {"rel_change": 0.0, "status": "ok" if gated else "info"}
    if base_f == 0.0:
        # no meaningful relative change; any drift from an exact-zero
        # baseline (e.g. a "diverged" flag flipping) trips the gate
        return {"rel_change": float("inf"),
                "status": "regression" if gated else "info"}
    rel = (fresh_f - base_f) / abs(base_f)
    if rule.direction == "lower":
        worse = rel > rule.rel_tol
        better = rel < -rule.rel_tol
    elif rule.direction == "higher":
        worse = rel < -rule.rel_tol
        better = rel > rule.rel_tol
    else:  # two_sided / ignore
        worse = abs(rel) > rule.rel_tol
        better = False
    if not gated:
        status = "info"
    elif worse:
        status = "regression"
    elif better:
        status = "improved"
    else:
        status = "ok"
    return {"rel_change": rel, "status": status}
