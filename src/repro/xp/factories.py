"""Builders turning declarative spec fragments into runtime objects.

:class:`~repro.xp.spec.ScenarioSpec` stores delay models, fault plans,
and optimizers as plain JSON-able dicts/names so specs can be hashed,
cached, and shipped across process boundaries.  Since PR 5 the actual
name-to-factory mapping lives in the typed central registry
(:mod:`repro.registry`) under the ``"optimizer"``, ``"delay"``, and
``"fault"`` kinds; this module registers the built-ins and keeps the
spec-fragment entry points:

- :func:`build_delay_model` — ``{"kind": "pareto", ...}`` to a
  :class:`~repro.cluster.delays.DelayModel` instance.
- :func:`build_fault_injector` — crash/straggler/pause rates plus a
  scripted fault list to a :class:`~repro.cluster.faults.FaultInjector`.
- :func:`build_optimizer` / :func:`register_optimizer` — thin aliases
  over the registry, kept for source compatibility (``"momentum_sgd"``,
  ``"closed_loop_yellowfin"``, ...).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.delays import (ConstantDelay, DelayModel,
                                  ExponentialDelay, HeterogeneousDelay,
                                  ParetoDelay, TraceReplayDelay,
                                  UniformDelay, WorkerClassDelay)
from repro.cluster.faults import (FaultInjector, ShardPause, Straggler,
                                  WorkerCrash)
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import SGD, AdaGrad, Adam, MomentumSGD, Optimizer, RMSProp
from repro.registry import (ComponentSchema, ParamSpec, registry,
                            schema_from_callable)

# ----------------------------------------------------------------- #
# delay models
# ----------------------------------------------------------------- #
_SIMPLE_DELAY_KINDS = ("constant", "uniform", "exponential", "pareto")


def _heterogeneous_delay(models=None) -> HeterogeneousDelay:
    """Per-worker delay models from a list of nested delay configs."""
    if not models:
        raise ValueError(
            'heterogeneous delay config needs a non-empty "models" list')
    return HeterogeneousDelay([build_delay_model(m) for m in models])


def _trace_delay(trace=None) -> TraceReplayDelay:
    """Replay recorded per-worker delays from a trace payload."""
    if trace is None:
        raise ValueError('trace delay config needs a "trace" payload')
    return TraceReplayDelay(trace)


def _worker_class_delay(counts=None, models=None) -> WorkerClassDelay:
    """Contiguous worker-id blocks from parallel count/config lists."""
    if not counts or not models:
        raise ValueError(
            'worker_classes delay config needs parallel non-empty '
            '"counts" and "models" lists')
    return WorkerClassDelay(counts, [build_delay_model(m) for m in models])


registry.register("delay", "constant", ConstantDelay)
registry.register("delay", "uniform", UniformDelay)
registry.register("delay", "exponential", ExponentialDelay)
registry.register("delay", "pareto", ParetoDelay)
registry.register("delay", "heterogeneous", _heterogeneous_delay)
registry.register("delay", "trace", _trace_delay)
registry.register("delay", "worker_classes", _worker_class_delay)


def delay_kinds() -> list:
    """Sorted registered delay kinds (error messages, CLI listings)."""
    return registry.names("delay")


def build_delay_model(config: dict) -> DelayModel:
    """Instantiate a delay model from its declarative config.

    Parameters
    ----------
    config : dict
        ``{"kind": <name>, **params}``.  Kinds: ``"constant"``,
        ``"uniform"``, ``"exponential"``, ``"pareto"`` (params forwarded
        to the class constructor, including ``seed``);
        ``"heterogeneous"`` with ``"models": [<config>, ...]``;
        ``"trace"`` with ``"trace": {...}`` (the
        :class:`~repro.cluster.delays.TraceReplayDelay` payload) — or
        any kind added via ``repro.registry``.

    Returns
    -------
    DelayModel
    """
    if not isinstance(config, dict) or "kind" not in config:
        raise ValueError(f'delay config needs a "kind" key: {config!r}')
    params = {k: v for k, v in config.items() if k != "kind"}
    kind = config["kind"]
    if not registry.has("delay", kind):
        raise ValueError(
            f"unknown delay kind {kind!r}; choose from {delay_kinds()}")
    return registry.build("delay", kind, **params)


# ----------------------------------------------------------------- #
# fault injectors
# ----------------------------------------------------------------- #
registry.register("fault", "crash", WorkerCrash)
registry.register("fault", "straggler", Straggler)
registry.register("fault", "pause", ShardPause)

# the injector itself is registered too, so spec validation can check
# the top-level fault keys (rates, downtimes, seed) against a schema
registry.register("fault", "injector", FaultInjector)


def fault_kinds() -> list:
    """Sorted scheduled-fault kinds (``"injector"`` is the envelope)."""
    return [name for name in registry.names("fault") if name != "injector"]


def build_fault_injector(config: Optional[dict]) -> Optional[FaultInjector]:
    """Instantiate a fault injector from its declarative config.

    Parameters
    ----------
    config : dict or None
        Keyword arguments of :class:`~repro.cluster.faults.FaultInjector`
        (rates, downtimes, ``seed``) plus an optional ``"scheduled"``
        list of ``{"kind": "crash"|"straggler"|"pause", **params}``
        entries.  ``None`` or ``{}`` means no injector (the runtime's
        default no-fault path).

    Returns
    -------
    FaultInjector or None
    """
    if not config:
        return None
    params = dict(config)
    scheduled = []
    for entry in params.pop("scheduled", []):
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ValueError(
                f'scheduled fault needs a "kind" key: {entry!r}')
        kind = entry["kind"]
        if kind == "injector" or not registry.has("fault", kind):
            raise ValueError(
                f"unknown scheduled fault kind {kind!r}; choose from "
                f"{fault_kinds()}")
        kwargs = {k: v for k, v in entry.items() if k != "kind"}
        scheduled.append(registry.build("fault", kind, **kwargs))
    registry.validate("fault", "injector", params)
    return FaultInjector(scheduled=scheduled, **params)


# ----------------------------------------------------------------- #
# optimizers
# ----------------------------------------------------------------- #
OptimizerFactory = Callable[..., Optimizer]


def _sgd(params, lr: float = 0.05, **kwargs) -> SGD:
    """Vanilla SGD with a default ``lr`` so bare specs are runnable."""
    return SGD(params, lr=lr, **kwargs)


def _momentum_sgd(params, lr: float = 0.05, **kwargs) -> MomentumSGD:
    """Momentum SGD with a default ``lr`` so bare specs are runnable."""
    return MomentumSGD(params, lr=lr, **kwargs)


for _name, _factory in (("adam", Adam), ("adagrad", AdaGrad),
                        ("rmsprop", RMSProp), ("yellowfin", YellowFin),
                        ("closed_loop_yellowfin", ClosedLoopYellowFin)):
    # the leading positional argument is the model's parameter list,
    # supplied by the runner — not part of the keyword configuration
    registry.register("optimizer", _name, _factory, skip_positional=1)
# the sgd wrappers forward **kwargs to their class, which would make
# the derived schema open-ended; declare the class's own surface so a
# typo'd spec key still fails with the declared parameter list.  The
# wrapper supplies lr's default, so the schema must not require it.


def _wrapper_schema(cls) -> ComponentSchema:
    base = schema_from_callable(cls, skip=1)
    params = tuple(ParamSpec(p.name, p.annotation, 0.05)
                   if p.name == "lr" and p.required else p
                   for p in base.params)
    return ComponentSchema(params=params, open_ended=False,
                           positional=base.positional)


registry.register("optimizer", "sgd", _sgd,
                  schema=_wrapper_schema(SGD))
registry.register("optimizer", "momentum_sgd", _momentum_sgd,
                  schema=_wrapper_schema(MomentumSGD))


def register_optimizer(name: str, factory: OptimizerFactory) -> None:
    """Add (or replace) an optimizer under ``name``.

    Parameters
    ----------
    name : str
        Registry key used by ``ScenarioSpec.optimizer``.
    factory : callable
        ``factory(params, **optimizer_params) -> Optimizer``.
    """
    registry.register("optimizer", str(name), factory, skip_positional=1)


def optimizer_names() -> list:
    """Sorted registry keys (for error messages and CLI listings)."""
    return registry.names("optimizer")


def build_optimizer(name: str, params, **kwargs) -> Optimizer:
    """Instantiate the optimizer registered under ``name``.

    Parameters
    ----------
    name : str
        Registry key.
    params : list of Tensor
        Model parameters to optimize.
    **kwargs
        The spec's ``optimizer_params``.

    Returns
    -------
    Optimizer
    """
    if not registry.has("optimizer", name):
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {optimizer_names()} "
            "or register_optimizer() your own")
    return registry.build("optimizer", name, params, **kwargs)
