"""Builders turning declarative spec fragments into runtime objects.

:class:`~repro.xp.spec.ScenarioSpec` stores delay models, fault plans,
and optimizers as plain JSON-able dicts/names so specs can be hashed,
cached, and shipped across process boundaries.  This module owns the
mapping from those fragments to live objects:

- :func:`build_delay_model` — ``{"kind": "pareto", ...}`` to a
  :class:`~repro.cluster.delays.DelayModel` instance.
- :func:`build_fault_injector` — crash/straggler/pause rates plus a
  scripted fault list to a :class:`~repro.cluster.faults.FaultInjector`.
- :func:`build_optimizer` / :func:`register_optimizer` — optimizer
  registry keyed by short names (``"momentum_sgd"``,
  ``"closed_loop_yellowfin"``, ...).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cluster.delays import (ConstantDelay, DelayModel,
                                  ExponentialDelay, HeterogeneousDelay,
                                  ParetoDelay, TraceReplayDelay,
                                  UniformDelay)
from repro.cluster.faults import (FaultInjector, ShardPause, Straggler,
                                  WorkerCrash)
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.optim import SGD, AdaGrad, Adam, MomentumSGD, Optimizer, RMSProp

# ----------------------------------------------------------------- #
# delay models
# ----------------------------------------------------------------- #
_SIMPLE_DELAYS = {
    "constant": ConstantDelay,
    "uniform": UniformDelay,
    "exponential": ExponentialDelay,
    "pareto": ParetoDelay,
}


def build_delay_model(config: dict) -> DelayModel:
    """Instantiate a delay model from its declarative config.

    Parameters
    ----------
    config : dict
        ``{"kind": <name>, **params}``.  Kinds: ``"constant"``,
        ``"uniform"``, ``"exponential"``, ``"pareto"`` (params forwarded
        to the class constructor, including ``seed``);
        ``"heterogeneous"`` with ``"models": [<config>, ...]``;
        ``"trace"`` with ``"trace": {...}`` (the
        :class:`~repro.cluster.delays.TraceReplayDelay` payload).

    Returns
    -------
    DelayModel
    """
    if not isinstance(config, dict) or "kind" not in config:
        raise ValueError(f'delay config needs a "kind" key: {config!r}')
    params = {k: v for k, v in config.items() if k != "kind"}
    kind = config["kind"]
    if kind in _SIMPLE_DELAYS:
        return _SIMPLE_DELAYS[kind](**params)
    if kind == "heterogeneous":
        models = params.pop("models", None)
        if not models:
            raise ValueError(
                'heterogeneous delay config needs a non-empty "models" list')
        if params:
            raise ValueError(
                f"unknown heterogeneous delay keys: {sorted(params)}")
        return HeterogeneousDelay([build_delay_model(m) for m in models])
    if kind == "trace":
        trace = params.pop("trace", None)
        if trace is None:
            raise ValueError('trace delay config needs a "trace" payload')
        if params:
            raise ValueError(f"unknown trace delay keys: {sorted(params)}")
        return TraceReplayDelay(trace)
    raise ValueError(
        f"unknown delay kind {kind!r}; choose from "
        f"{sorted(_SIMPLE_DELAYS) + ['heterogeneous', 'trace']}")


# ----------------------------------------------------------------- #
# fault injectors
# ----------------------------------------------------------------- #
_SCHEDULED_FAULTS = {
    "crash": WorkerCrash,
    "straggler": Straggler,
    "pause": ShardPause,
}


def build_fault_injector(config: Optional[dict]) -> Optional[FaultInjector]:
    """Instantiate a fault injector from its declarative config.

    Parameters
    ----------
    config : dict or None
        Keyword arguments of :class:`~repro.cluster.faults.FaultInjector`
        (rates, downtimes, ``seed``) plus an optional ``"scheduled"``
        list of ``{"kind": "crash"|"straggler"|"pause", **params}``
        entries.  ``None`` or ``{}`` means no injector (the runtime's
        default no-fault path).

    Returns
    -------
    FaultInjector or None
    """
    if not config:
        return None
    params = dict(config)
    scheduled = []
    for entry in params.pop("scheduled", []):
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ValueError(
                f'scheduled fault needs a "kind" key: {entry!r}')
        kind = entry["kind"]
        if kind not in _SCHEDULED_FAULTS:
            raise ValueError(
                f"unknown scheduled fault kind {kind!r}; choose from "
                f"{sorted(_SCHEDULED_FAULTS)}")
        kwargs = {k: v for k, v in entry.items() if k != "kind"}
        scheduled.append(_SCHEDULED_FAULTS[kind](**kwargs))
    return FaultInjector(scheduled=scheduled, **params)


# ----------------------------------------------------------------- #
# optimizers
# ----------------------------------------------------------------- #
OptimizerFactory = Callable[..., Optimizer]


def _sgd(params, lr: float = 0.05, **kwargs) -> SGD:
    """Vanilla SGD with a default ``lr`` so bare specs are runnable."""
    return SGD(params, lr=lr, **kwargs)


def _momentum_sgd(params, lr: float = 0.05, **kwargs) -> MomentumSGD:
    """Momentum SGD with a default ``lr`` so bare specs are runnable."""
    return MomentumSGD(params, lr=lr, **kwargs)


_OPTIMIZERS: Dict[str, OptimizerFactory] = {
    "sgd": _sgd,
    "momentum_sgd": _momentum_sgd,
    "adam": Adam,
    "adagrad": AdaGrad,
    "rmsprop": RMSProp,
    "yellowfin": YellowFin,
    "closed_loop_yellowfin": ClosedLoopYellowFin,
}


def register_optimizer(name: str, factory: OptimizerFactory) -> None:
    """Add (or replace) an optimizer under ``name``.

    Parameters
    ----------
    name : str
        Registry key used by ``ScenarioSpec.optimizer``.
    factory : callable
        ``factory(params, **optimizer_params) -> Optimizer``.
    """
    _OPTIMIZERS[str(name)] = factory


def optimizer_names() -> list:
    """Sorted registry keys (for error messages and CLI listings)."""
    return sorted(_OPTIMIZERS)


def build_optimizer(name: str, params, **kwargs) -> Optimizer:
    """Instantiate the optimizer registered under ``name``.

    Parameters
    ----------
    name : str
        Registry key.
    params : list of Tensor
        Model parameters to optimize.
    **kwargs
        The spec's ``optimizer_params``.

    Returns
    -------
    Optimizer
    """
    try:
        factory = _OPTIMIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {optimizer_names()} "
            "or register_optimizer() your own") from None
    return factory(params, **kwargs)
