"""Content-addressed result store for scenario runs.

Every :class:`~repro.xp.spec.ScenarioSpec` hashes its canonical
serialization; this store files the finished
:class:`~repro.xp.runner.ScenarioResult` under that hash.  Re-running an
unchanged scenario — locally or in CI — is a file read, and *any* change
to the spec (a seed, a delay parameter, the format version) changes the
hash and misses cleanly.  Entries are self-describing: each file carries
the full spec next to the result, so a cache directory doubles as a
queryable experiment log.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Union

from repro.utils.serialization import decode_state, encode_state
from repro.xp.spec import ScenarioSpec

PathLike = Union[str, Path]

# Default cache location override (else ``.xp_cache`` under the CWD).
CACHE_DIR_ENV = "REPRO_XP_CACHE"


class ResultCache:
    """Filesystem store mapping spec content hashes to result records.

    Parameters
    ----------
    root : str or Path, optional
        Cache directory.  Defaults to ``$REPRO_XP_CACHE`` when set, else
        ``.xp_cache`` in the current working directory.  Created lazily
        on first write.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root or os.environ.get(CACHE_DIR_ENV)
                         or ".xp_cache")

    def path_for(self, spec: ScenarioSpec,
                 key: Optional[str] = None) -> Path:
        """The file a given spec's result lives in (existing or not).

        ``key`` is the spec's precomputed content hash; hashing
        re-serializes the whole spec, so batch callers compute it once
        and thread it through.
        """
        return self.root / f"{key or spec.content_hash()}.json"

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, spec: ScenarioSpec, key: Optional[str] = None):
        """The cached result for ``spec``, or ``None`` on a miss.

        A hit is returned with ``cached=True``.  Entries that fail to
        parse or whose recorded hash disagrees with the file name are
        treated as misses (and left for a subsequent ``put`` to
        overwrite) rather than crashing the sweep.  ``key`` is the
        spec's precomputed content hash, for batch callers.

        Returns
        -------
        ScenarioResult or None
        """
        from repro.xp.runner import ScenarioResult
        key = key or spec.content_hash()
        path = self.path_for(spec, key=key)
        if not path.is_file():
            return None
        try:
            payload = decode_state(json.loads(path.read_text()))
            result = ScenarioResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None
        if result.spec_hash != key:
            return None
        result.cached = True
        return result

    def put(self, spec: ScenarioSpec, result,
            key: Optional[str] = None) -> Path:
        """File ``result`` under ``spec``'s content hash.

        The write is atomic (temp file + rename) so a crashed run never
        leaves a truncated entry that would poison later reads.
        ``key`` is the spec's precomputed content hash, for batch
        callers.

        Returns
        -------
        Path
            The entry's location.
        """
        key = key or spec.content_hash()
        if result.spec_hash != key:
            raise ValueError(
                f"result hash {result.spec_hash[:12]} does not match "
                f"spec hash {key[:12]} (scenario {spec.name!r})")
        self.root.mkdir(parents=True, exist_ok=True)
        payload = encode_state({"spec": spec.as_dict(),
                                "result": result.as_dict()})
        path = self.path_for(spec, key=key)
        # the temp file is private to this writer (mkstemp), so
        # concurrent puts of the same key never interleave bytes; the
        # fsync-then-rename makes the publish atomic AND durable — a
        # reader sees either no file or one complete entry, never a
        # torn one, even across a crash mid-write
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True,
                          allow_nan=False)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def keys(self) -> List[str]:
        """Sorted content hashes currently stored."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
