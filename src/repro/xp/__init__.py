"""Experiment orchestration: scenario matrices, parallel runs, caching.

The paper's headline claims are matrix results — optimizer x delay
model x worker count x fault profile — and this package owns the sweep
so individual figure scripts do not have to:

- :mod:`repro.xp.spec` — declarative :class:`ScenarioSpec` /
  :class:`Matrix` with canonical JSON round-trip and content hashing.
- :mod:`repro.xp.factories` / :mod:`repro.xp.workloads` — registries
  mapping spec fragments (names + params) to live optimizers, delay
  models, fault injectors, and workloads.
- :mod:`repro.xp.runner` — :func:`run_scenario` (a pure function of
  the spec) and :class:`ParallelRunner` (process-pool execution with
  bit-identical-to-serial records).
- :mod:`repro.xp.cache` — :class:`ResultCache`, a content-addressed
  store keyed by spec hash, so unchanged scenarios are never recomputed.
- :mod:`repro.xp.compare` — :class:`BaselineComparator`, the
  perf-regression gate diffing fresh ``BENCH_*.json`` records against
  committed baselines with direction-aware tolerances.
- :mod:`repro.xp.cli` — ``python -m repro.xp`` with ``run`` / ``list``
  / ``diff`` subcommands.

Typical use::

    from repro.xp import Matrix, ParallelRunner, ResultCache, ScenarioSpec

    base = ScenarioSpec(name="sweep", workers=4, reads=240, seed=0)
    matrix = Matrix(base, axes={
        "delay": {"constant": {"delay": {"kind": "constant", "delay": 1.0}},
                  "pareto": {"delay": {"kind": "pareto", "seed": 12}}},
        "opt": {"m09": {"optimizer_params": {"lr": 0.05, "momentum": 0.9}}},
    })
    runner = ParallelRunner(cache=ResultCache())
    results = runner.run(matrix.expand())   # all cores; reruns hit cache
"""

from repro.xp.spec import (Matrix, ScenarioSpec, XP_FORMAT_VERSION,
                           load_scenarios, save_scenarios)
from repro.xp.factories import (build_delay_model, build_fault_injector,
                                build_optimizer, optimizer_names,
                                register_optimizer)
from repro.xp.workloads import (build_workload, register_workload,
                                workload_names)
from repro.xp.runner import ParallelRunner, ScenarioResult, run_scenario
from repro.xp.cache import ResultCache
from repro.xp.compare import (BaselineComparator, DEFAULT_RULES,
                              MetricRule, write_report)

__all__ = [
    "ScenarioSpec", "Matrix", "XP_FORMAT_VERSION",
    "load_scenarios", "save_scenarios",
    "build_delay_model", "build_fault_injector", "build_optimizer",
    "optimizer_names", "register_optimizer",
    "build_workload", "register_workload", "workload_names",
    "run_scenario", "ParallelRunner", "ScenarioResult",
    "ResultCache",
    "BaselineComparator", "MetricRule", "DEFAULT_RULES", "write_report",
]
