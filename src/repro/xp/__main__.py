"""Module entry point: ``python -m repro.xp``."""

import sys

from repro.xp.cli import main

if __name__ == "__main__":
    sys.exit(main())
