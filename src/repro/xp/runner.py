"""Scenario execution: result records, summarization, process pools.

Scenario execution is a *pure function* of the
:class:`~repro.xp.spec.ScenarioSpec`: every stochastic component is
seeded from the spec, so the same spec yields bit-identical metrics and
series no matter where or when it runs.  That purity is what makes the
rest of the subsystem sound — :class:`ParallelRunner` can farm scenarios
out to a process pool and still produce records identical to the serial
path, and the content-addressed :class:`~repro.xp.cache.ResultCache` can
substitute a stored record for a recomputation.

Since PR 5 the execution semantics live in :mod:`repro.run`
(:func:`repro.run.execute_spec` and friends); this module keeps the
:class:`ScenarioResult` record type, the shared :func:`summarize_log`
summarization, the :class:`ParallelRunner` pool machinery behind the
``parallel`` backend, and the deprecated :func:`run_scenario` shim.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.metrics import staleness_summary
from repro.xp.cache import ResultCache
from repro.xp.spec import ScenarioSpec

# Caps the default process-pool size (useful on shared machines); an
# explicit ``processes=`` argument always wins.
XP_JOBS_ENV = "REPRO_XP_JOBS"


@dataclass
class ScenarioResult:
    """The outcome of one scenario run.

    Attributes
    ----------
    name : str
        The spec's scenario name.
    spec_hash : str
        Content hash of the spec that produced this result (the cache
        key, and the identity check on cache reads).
    metrics : dict
        Scalar summary metrics (losses, staleness statistics, budgets).
        For replicated scenarios these are per-metric means plus
        ``*_std`` / ``*_ci95`` spread fields and a ``replicates``
        count (see :func:`repro.bench.report.replicate_statistics`).
    series : dict
        The log series the spec asked to keep, as plain float lists.
        For replicated scenarios: replicate 0's series.
    replicate_metrics : list of dict
        Per-replicate scalar metrics, in replicate order (empty for
        single-replicate runs).  Each entry is bit-identical to the
        metrics of the corresponding serial scalar run.
    env : dict
        Interpreter/platform fingerprint plus the resolved seed.
    wall_s : float
        Wall-clock seconds the simulation took (informational — not
        part of the deterministic identity).
    cached : bool
        Whether this record came from the result cache.
    """

    name: str
    spec_hash: str
    metrics: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    replicate_metrics: List[Dict[str, float]] = field(default_factory=list)
    env: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0
    cached: bool = False

    def identity(self) -> dict:
        """The deterministic part of the record.

        Two runs of the same spec must agree on this dict exactly —
        the parallel-equals-serial and cache-equals-fresh guarantees
        are stated (and tested) over it.  Environment and wall time are
        excluded: they describe *where* the run happened, not *what* it
        computed.  Per-replicate metrics join only when present, so
        single-replicate identities keep their historical shape.
        """
        out = {"name": self.name, "spec_hash": self.spec_hash,
               "metrics": dict(self.metrics),
               "series": {k: list(v) for k, v in self.series.items()}}
        if self.replicate_metrics:
            out["replicate_metrics"] = [dict(m)
                                        for m in self.replicate_metrics]
        return out

    def as_dict(self) -> dict:
        """Plain-data mirror of the record (JSON-able after the codec)."""
        return {"name": self.name, "spec_hash": self.spec_hash,
                "metrics": dict(self.metrics),
                "series": {k: list(v) for k, v in self.series.items()},
                "replicate_metrics": [dict(m)
                                      for m in self.replicate_metrics],
                "env": dict(self.env), "wall_s": self.wall_s,
                "cached": self.cached}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a record from :meth:`as_dict` output."""
        return cls(name=data["name"], spec_hash=data["spec_hash"],
                   metrics=dict(data.get("metrics", {})),
                   series={k: list(v)
                           for k, v in data.get("series", {}).items()},
                   replicate_metrics=[dict(m) for m in
                                      data.get("replicate_metrics", [])],
                   env=dict(data.get("env", {})),
                   wall_s=float(data.get("wall_s", 0.0)),
                   cached=bool(data.get("cached", False)))


def summarize_log(spec: ScenarioSpec, log, reads_done: int,
                  updates_done: int, diverged: bool):
    """Summarize one run's log into the record's metrics and series.

    The single summarization path shared by the scalar runtime and the
    batched replicate engine, so their records cannot drift in shape or
    arithmetic.

    Parameters
    ----------
    spec : ScenarioSpec
        The scenario that produced the log (supplies ``smooth`` and
        ``record_series``).
    log : TrainLog
        The run's training log.
    reads_done, updates_done : int
        Final budget counters.
    diverged : bool
        Whether the run stopped on divergence.

    Returns
    -------
    (metrics, series) : tuple of dict
        Scalar metrics and the requested raw series.
    """
    losses = log.series("loss")
    window = min(spec.smooth, losses.size) or 1
    metrics: Dict[str, float] = {
        "initial_loss": float(losses[:window].mean()) if losses.size
        else float("nan"),
        "final_loss": float(losses[-window:].mean()) if losses.size
        else float("nan"),
        "min_loss": float(losses.min()) if losses.size else float("nan"),
        "reads": float(reads_done),
        "updates": float(updates_done),
        "diverged": float(diverged),
    }
    for key, value in staleness_summary(log).items():
        metrics[f"staleness_{key}"] = float(value)
    # every requested series is present in the record — absent ones
    # (e.g. optimizer stats of a run that never committed) come back as
    # empty lists rather than missing keys, so consumers and cached
    # records have a stable shape
    series = {name: (log.series(name).tolist() if name in log else [])
              for name in spec.record_series}
    return metrics, series


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario spec (deprecated entry point).

    Since PR 5 this is a thin shim over the unified execution API:
    it emits a :class:`DeprecationWarning` and delegates to
    :func:`repro.run.execute_spec`, which runs single-replicate specs
    through the scalar engine and replicated specs through the
    batched replicate engine of :mod:`repro.vec` (with transparent
    serial fallback).  Records are bit-identical to what this function
    always produced.

    Parameters
    ----------
    spec : ScenarioSpec
        The complete experiment description.

    Returns
    -------
    ScenarioResult
        Metrics: ``initial_loss`` / ``final_loss`` (head/tail means
        over ``spec.smooth`` reads), ``min_loss``, ``reads`` /
        ``updates`` / ``diverged`` counters, and flattened
        ``staleness_*`` statistics — plus the requested raw series.
    """
    from repro.run.backends import execute_spec
    from repro.utils.deprecation import warn_deprecated

    warn_deprecated("repro.xp.run_scenario", "repro.run.run")
    return execute_spec(spec)


def _run_payload(payload: dict) -> dict:
    """Pool worker entry point: spec dict in, result dict out."""
    from repro.run.backends import execute_spec

    return execute_spec(ScenarioSpec.from_dict(payload)).as_dict()


class ParallelRunner:
    """Execute scenario batches across a process pool, cache-aware.

    Parameters
    ----------
    processes : int, optional
        Worker processes.  ``None`` uses ``$REPRO_XP_JOBS`` when set,
        else ``os.cpu_count()``; 0 or 1 runs serially in-process.  The
        pool never exceeds the number of uncached scenarios.
    cache : ResultCache, optional
        Content-addressed store consulted before running and updated
        after.  ``None`` disables caching (every scenario recomputes).

    Attributes
    ----------
    hits, misses : int
        Cache statistics of the most recent :meth:`run` call.
    """

    def __init__(self, processes: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        if processes is not None and processes < 0:
            raise ValueError(f"processes must be >= 0, got {processes}")
        self.processes = processes
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def _effective_processes(self, jobs: int) -> int:
        configured = self.processes
        if configured is None:
            raw = os.environ.get(XP_JOBS_ENV, "").strip()
            if raw:
                try:
                    configured = int(raw)
                except ValueError:
                    raise ValueError(
                        f"${XP_JOBS_ENV} must be an integer, "
                        f"got {raw!r}") from None
            configured = configured or os.cpu_count() or 1
        return max(1, min(configured, jobs))

    def run(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        """Run every spec, reusing cached results where possible.

        Scenario order is preserved; duplicate specs (same content
        hash) are computed once and share the record.  Uncached
        scenarios run on the pool (or serially for a single miss /
        single process); results are written back to the cache before
        returning.

        Returns
        -------
        list of ScenarioResult
            One record per input spec, in input order; records served
            from the cache have ``cached=True``.
        """
        specs = list(specs)
        # hash once per spec: hashing re-serializes the whole spec
        # (trace payloads included), so it must not be O(duplicates)
        keys = [spec.content_hash() for spec in specs]
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        self.hits = 0
        self.misses = 0

        todo: List[int] = []          # first index per distinct hash
        first_idx: Dict[str, int] = {}
        for idx, (spec, key) in enumerate(zip(specs, keys)):
            if key in first_idx:
                continue
            first_idx[key] = idx
            if self.cache is not None:
                cached = self.cache.get(spec, key=key)
                if cached is not None:
                    results[idx] = cached
                    self.hits += 1
                    continue
            todo.append(idx)
        self.misses = len(todo)

        if todo:
            from repro.run.backends import execute_spec

            procs = self._effective_processes(len(todo))
            if procs <= 1 or len(todo) == 1:
                fresh = [execute_spec(specs[idx]) for idx in todo]
            else:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else "spawn")
                with ctx.Pool(processes=procs) as pool:
                    payloads = [specs[idx].as_dict() for idx in todo]
                    fresh = [ScenarioResult.from_dict(d)
                             for d in pool.map(_run_payload, payloads)]
            for idx, result in zip(todo, fresh):
                results[idx] = result
                if self.cache is not None:
                    self.cache.put(specs[idx], result, key=keys[idx])

        for idx, key in enumerate(keys):
            if results[idx] is None:       # duplicate of an earlier spec
                results[idx] = results[first_idx[key]]
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (f"ParallelRunner(processes={self.processes}, "
                f"cache={self.cache!r})")
