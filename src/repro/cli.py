"""``python -m repro`` — the top-level command-line interface.

Six subcommands over the unified execution API:

- ``run <scenarios.json>`` — expand and execute a scenario file
  through :func:`repro.run.run` (backend auto-selected or pinned with
  ``--backend``), with the content-addressed result cache on by
  default; prints a summary table and optionally writes the full
  result records.
- ``list <scenarios.json>`` — show the expanded scenarios and their
  content hashes without running anything.
- ``diff --baseline <dir> --fresh <dir>`` — gate fresh ``BENCH_*.json``
  records against committed baselines via
  :class:`~repro.xp.compare.BaselineComparator`; exits non-zero on
  regression (the CI perf gate).
- ``bench <scenarios.json> --backends a,b,c`` — run the same scenarios
  through several backends, report per-backend wall time, and (with
  ``--check``) verify the deterministic records are bit-identical
  across backends — the ``make api-smoke`` gate.
- ``trace <scenarios.json>`` — execute under a full
  :mod:`repro.obs` session, export the Chrome ``trace_event`` JSON
  (Perfetto-loadable, ``--out``) and optionally the raw JSONL
  (``--jsonl``), and print the ``repro top``-style profiler table
  plus the metrics snapshot.
- ``serve`` — run the multi-tenant tuning daemon: ScenarioSpec
  submissions over localhost HTTP+JSON, fronted by the result cache,
  vec-batched across tenants, admission-controlled, and autoscaled on
  a pre-forked warm worker pool (see ``docs/serve.md``).

The same entry point is installed as the ``repro`` console script;
``python -m repro.xp`` remains as a deprecated alias for the first
three subcommands.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.utils.serialization import encode_state
from repro.xp.cache import ResultCache
from repro.xp.compare import BaselineComparator, write_report
from repro.xp.spec import load_scenarios


def build_parser(prog: str = "python -m repro") -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the ``repro.xp`` alias).

    Parameters
    ----------
    prog : str
        Program name shown in usage/help text.
    """
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Unified scenario execution, perf-baseline gating, "
                    "and cross-backend verification")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="expand and execute a scenario file")
    run.add_argument("scenarios", help="matrix or scenario-list JSON file")
    run.add_argument("--backend", default="auto",
                     help="execution backend: auto (default), serial, "
                          "cluster, parallel, vec, mp (real worker "
                          "processes, where supported), or any "
                          "registered name")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: all cores)")
    run.add_argument("--cache", default=None, metavar="DIR",
                     help="result-cache directory (default: "
                          "$REPRO_XP_CACHE or .xp_cache)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything, touch no cache")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write full result records as JSON")

    lst = sub.add_parser(
        "list", help="show expanded scenarios without running")
    lst.add_argument("scenarios", help="matrix or scenario-list JSON file")

    diff = sub.add_parser(
        "diff", help="gate fresh BENCH_*.json records against baselines")
    diff.add_argument("--baseline", required=True, metavar="DIR",
                      help="directory with committed baseline records")
    diff.add_argument("--fresh", required=True, metavar="DIR",
                      help="directory with freshly measured records")
    diff.add_argument("--names", default=None,
                      help="comma-separated record names to gate "
                           "(default: every name present on both sides)")
    diff.add_argument("--tol", type=float, default=None,
                      help="override the relative tolerance of every "
                           "rule (default 0.2)")
    diff.add_argument("--gate-timings", choices=("auto", "on", "off"),
                      default="auto",
                      help="gate wall-clock metrics: auto = only when "
                           "environments match (default)")
    diff.add_argument("--report", default=None, metavar="FILE",
                      help="write the machine-readable report JSON")

    bench = sub.add_parser(
        "bench", help="run scenarios through several backends and "
                      "compare wall time (and, with --check, records)")
    bench.add_argument("scenarios",
                       help="matrix or scenario-list JSON file")
    bench.add_argument("--backends", default="serial,parallel,vec",
                       help="comma-separated backend names "
                            "(default: serial,parallel,vec)")
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes for fan-out backends")
    bench.add_argument("--check", action="store_true",
                       help="fail unless every backend produced "
                            "bit-identical deterministic records")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="write the per-backend timing/identity "
                            "report as JSON")

    trace = sub.add_parser(
        "trace", help="run scenarios under a full observability "
                      "session and export the Chrome trace")
    trace.add_argument("scenarios",
                       help="matrix or scenario-list JSON file")
    trace.add_argument("--backend", default="auto",
                       help="execution backend (default: auto)")
    trace.add_argument("--jobs", type=int, default=None,
                       help="worker processes for fan-out backends")
    trace.add_argument("--out", default="trace.json", metavar="FILE",
                       help="Chrome trace_event JSON, loadable in "
                            "Perfetto / chrome://tracing "
                            "(default: trace.json)")
    trace.add_argument("--jsonl", default=None, metavar="FILE",
                       help="also write the raw span/instant records "
                            "as JSON Lines")
    trace.add_argument("--top", type=int, default=10,
                       help="profiler rows in the hot-spot table "
                            "(default: 10)")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant tuning daemon "
                      "(localhost HTTP+JSON; see docs/serve.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8631,
                       help="bind port; 0 picks a free one "
                            "(default: 8631)")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="result-cache directory fronting all "
                            "execution (default: $REPRO_XP_CACHE or "
                            ".xp_cache; --no-cache disables)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a result cache")
    serve.add_argument("--min-workers", type=int, default=1,
                       help="autoscaling floor (default: 1)")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="autoscaling ceiling; all workers are "
                            "pre-forked warm at startup (default: 4)")
    serve.add_argument("--scheduler", default="batching",
                       help="'serve'-kind scheduler component: "
                            "batching (default; coalesces lockstep-"
                            "compatible specs across tenants) or fifo")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="global pending-queue admission cap "
                            "(default: 256)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="per-tenant in-flight ticket quota "
                            "(default: 32)")
    serve.add_argument("--pool-mode", default="auto",
                       choices=("auto", "fork", "thread"),
                       help="worker pool mode (default: auto = fork "
                            "where available)")
    return parser


def _cmd_run(args) -> int:
    from repro.run import run

    specs = load_scenarios(args.scenarios)
    cache = None if args.no_cache else ResultCache(args.cache)
    outcome = run(specs, backend=args.backend, jobs=args.jobs,
                  cache=cache)
    results = outcome.results
    width = max((len(r.name) for r in results), default=4)
    print(f"{'scenario'.ljust(width)}  {'hash':12}  {'final_loss':>10}  "
          f"{'wall_s':>8}  cached")
    for result in results:
        final = result.metrics.get("final_loss", float("nan"))
        print(f"{result.name.ljust(width)}  {result.spec_hash[:12]}  "
              f"{final:10.4f}  {result.wall_s:8.3f}  "
              f"{'yes' if result.cached else 'no'}")
    print(f"\n{len(results)} scenarios: {outcome.hits} cached, "
          f"{outcome.misses} computed"
          + (f" (cache: {cache.root})" if cache is not None else ""))
    print(f"backend: {outcome.backend} ({outcome.reason})")
    if args.out:
        payload = outcome.as_dict()
        with open(args.out, "w") as fh:
            json.dump(encode_state(payload), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_list(args) -> int:
    specs = load_scenarios(args.scenarios)
    width = max((len(s.name) for s in specs), default=4)
    for spec in specs:
        print(f"{spec.name.ljust(width)}  {spec.content_hash()[:12]}  "
              f"{spec.optimizer} x {spec.delay.get('kind')} "
              f"({spec.workers} workers, {spec.reads} reads, "
              f"seed {spec.resolved_seed()})")
    print(f"\n{len(specs)} scenarios")
    return 0


def _cmd_diff(args) -> int:
    gate = {"auto": "auto", "on": True, "off": False}[args.gate_timings]
    comparator = BaselineComparator(rel_tol=args.tol, gate_timings=gate)
    names = ([n.strip() for n in args.names.split(",") if n.strip()]
             if args.names else None)
    report = comparator.compare_dirs(args.baseline, args.fresh,
                                     names=names)
    for record in report["records"]:
        print(f"{record['name']}: {record['status']}"
              + (f" ({record['reason']})" if "reason" in record else ""))
        for comp in record.get("comparisons", []):
            if comp["status"] in ("regression", "missing") \
                    and comp.get("gated"):
                print(f"  REGRESSION {comp['metric']}: "
                      f"{comp.get('baseline')!r} -> "
                      f"{comp.get('fresh', '<missing>')!r}")
    summary = report["summary"]
    print(f"\n{summary['compared']} records: {summary['passed']} passed, "
          f"{summary['failed']} failed, "
          f"{summary['incomparable']} incomparable")
    if args.report:
        write_report(report, args.report)
        print(f"wrote {args.report}")
    return 0 if report["status"] == "pass" else 1


def _cmd_bench(args) -> int:
    from repro.run import run

    specs = load_scenarios(args.scenarios)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not backends:
        raise ValueError("--backends needs at least one backend name")
    outcomes = {}
    for name in backends:
        outcome = run(specs, backend=name, jobs=args.jobs, cache=None)
        outcomes[name] = outcome
        print(f"{name:10}  {outcome.wall_s:8.3f}s  "
              f"{len(outcome.results)} scenarios")
    reference = backends[0]
    identical = all(
        outcomes[name].identities() == outcomes[reference].identities()
        for name in backends[1:])
    if len(backends) > 1:
        print(f"\nrecords bit-identical across "
              f"{{{', '.join(backends)}}}: "
              f"{'yes' if identical else 'NO'}")
    if args.out:
        payload = {
            "scenarios": [s.name for s in specs],
            "identical": identical,
            "backends": {name: {"wall_s": outcome.wall_s,
                                "identities": outcome.identities()}
                         for name, outcome in outcomes.items()},
        }
        with open(args.out, "w") as fh:
            json.dump(encode_state(payload), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check and not identical:
        for name in backends[1:]:
            if outcomes[name].identities() != \
                    outcomes[reference].identities():
                print(f"MISMATCH: {name} records differ from "
                      f"{reference}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import (MetricsRegistry, ObsSession, Profiler, Tracer,
                           validate_chrome_trace)
    from repro.run import run

    specs = load_scenarios(args.scenarios)
    session = ObsSession(tracer=Tracer(), metrics=MetricsRegistry(),
                         profiler=Profiler())
    outcome = run(specs, backend=args.backend, jobs=args.jobs,
                  cache=None, obs=session)
    for result in outcome.results:
        final = result.metrics.get("final_loss", float("nan"))
        print(f"{result.name}  {result.spec_hash[:12]}  "
              f"final_loss={final:.4f}  wall={result.wall_s:.3f}s")
    print(f"backend: {outcome.backend} ({outcome.reason})")

    tracer = session.tracer
    summary = tracer.summary()
    cats = ", ".join(f"{cat}:{n}"
                     for cat, n in sorted(summary["by_category"].items()))
    print(f"\ntrace: {summary['spans']} spans, "
          f"{summary['instants']} instants ({cats})")
    tracer.to_chrome_trace(args.out)
    validate_chrome_trace(args.out)
    print(f"wrote {args.out} (Chrome trace_event; open in Perfetto)")
    if args.jsonl:
        tracer.to_jsonl(args.jsonl)
        print(f"wrote {args.jsonl} ({len(tracer)} records)")

    print("\nhot spots:")
    print(session.profiler.render_top(args.top))
    snapshot = session.metrics.snapshot()
    counters = snapshot["counters"]
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    return 0


def _cmd_serve(args) -> int:
    from repro.xp.cache import CACHE_DIR_ENV
    import os

    from repro.serve import ServeConfig, ServeDaemon

    cache_dir = None
    if not args.no_cache:
        cache_dir = (args.cache or os.environ.get(CACHE_DIR_ENV)
                     or ".xp_cache")
    config = ServeConfig(
        host=args.host, port=args.port, cache_dir=cache_dir,
        min_workers=args.min_workers, max_workers=args.max_workers,
        pool_mode=args.pool_mode, scheduler=args.scheduler,
        admission_params={"max_pending": args.max_pending,
                          "max_inflight_per_tenant": args.max_inflight})
    daemon = ServeDaemon(config).start()
    host, port = daemon.address
    print(f"repro serve listening on http://{host}:{port} "
          f"(pool: {daemon.pool.mode}, "
          f"{args.min_workers}-{args.max_workers} workers, "
          f"scheduler: {args.scheduler}, "
          f"cache: {cache_dir or 'disabled'})")
    print("endpoints: POST /v1/submit  GET /v1/result /v1/events "
          "/v1/status  POST /v1/shutdown")
    try:
        daemon.serve_forever()
    finally:
        daemon.stop()
    return 0


COMMANDS = {"run": _cmd_run, "list": _cmd_list, "diff": _cmd_diff,
            "bench": _cmd_bench, "trace": _cmd_trace,
            "serve": _cmd_serve}


def main(argv: Optional[List[str]] = None,
         prog: str = "python -m repro") -> int:
    """CLI entry point; returns the process exit code.

    Parameters
    ----------
    argv : list of str, optional
        Arguments (defaults to ``sys.argv[1:]``).
    prog : str
        Program name for usage text (the ``repro.xp`` alias overrides
        it).
    """
    args = build_parser(prog).parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except (OSError, ValueError) as exc:
        # bad paths and malformed scenario files fail with a message,
        # not a traceback (exit code 2 = usage error, 1 = regression)
        print(f"error: {exc}", file=sys.stderr)
        return 2


def console_main() -> None:  # pragma: no cover — exercised via CLI
    """Console-script entry point (``repro`` on ``$PATH``)."""
    sys.exit(main(prog="repro"))


if __name__ == "__main__":  # pragma: no cover — exercised via __main__
    sys.exit(main())
