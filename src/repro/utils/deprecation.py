"""Deprecation plumbing shared by the legacy entry-point shims.

PR 5 consolidated execution behind :mod:`repro.run`; the old entry
points (``train_async``, ``run_scenario``, direct engine construction)
survive as thin shims that warn and delegate.  This module holds the
two pieces they share:

- :func:`warn_deprecated` — one consistently formatted
  ``DeprecationWarning`` (category + stacklevel handled here, so every
  shim points at the *caller's* line);
- :func:`internal_calls` / :func:`entered_internally` — a re-entrant
  guard the new API uses around engine construction, so the engines can
  warn on *direct* user construction without warning when
  :mod:`repro.run` itself builds them.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager

_STATE = threading.local()


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a legacy entry point.

    Parameters
    ----------
    old : str
        The legacy surface being used (e.g. ``"repro.sim.train_async"``).
    new : str
        The replacement to migrate to (e.g. ``"repro.run.run_cluster"``).
    stacklevel : int
        Frames between this call and the user's code; the default of 3
        suits ``user -> shim -> warn_deprecated``.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(the legacy surface delegates and stays bit-identical)",
        DeprecationWarning, stacklevel=stacklevel)


@contextmanager
def internal_calls():
    """Mark the enclosed block as internal new-API machinery.

    Engine constructors consult :func:`entered_internally` and only
    warn when a user constructs them directly — never when
    :mod:`repro.run` (or another shim that already warned) builds them
    inside this context.  Re-entrant and thread-local.
    """
    depth = getattr(_STATE, "depth", 0)
    _STATE.depth = depth + 1
    try:
        yield
    finally:
        _STATE.depth = depth


def entered_internally() -> bool:
    """Whether the current call stack is inside :func:`internal_calls`."""
    return getattr(_STATE, "depth", 0) > 0
