"""JSON persistence for experiment results.

Benchmark runs are expensive on the NumPy substrate; these helpers let the
harness cache loss curves and tuner traces to disk and reload them for
plotting or regression comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.utils.logging import TrainLog

PathLike = Union[str, Path]


def _to_jsonable(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {k: _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj


def save_train_log(log: TrainLog, path: PathLike) -> None:
    """Write a :class:`TrainLog` to JSON."""
    Path(path).write_text(json.dumps(_to_jsonable(log.state_dict())))


def load_train_log(path: PathLike) -> TrainLog:
    """Read a :class:`TrainLog` back from JSON."""
    log = TrainLog()
    log.load_state_dict(json.loads(Path(path).read_text()))
    return log


def save_results(results: dict, path: PathLike) -> None:
    """Persist an arbitrary results dict (curves, speedups, configs)."""
    Path(path).write_text(json.dumps(_to_jsonable(results), indent=2))


def load_results(path: PathLike) -> dict:
    """Read back a dict written by :func:`save_results`."""
    return json.loads(Path(path).read_text())


# --------------------------------------------------------------------- #
# lossless state encoding (checkpoints)
# --------------------------------------------------------------------- #
# Unlike _to_jsonable (which flattens everything to JSON-native types and
# is fine for plots), checkpoints must round-trip *exactly*: ndarrays keep
# their dtype and shape, tuples stay tuples (event-queue entries), and
# None survives inside containers.  JSON itself is lossless for the leaf
# types we emit — Python serializes floats with repr (shortest exact
# round trip) and ints at arbitrary precision — so tagging containers is
# all that is needed for bit-for-bit restore.  Non-finite floats (a
# diverged run logs nan/inf losses) are tagged/stringified rather than
# emitted as the RFC-8259-violating bare NaN/Infinity tokens, so the
# files stay readable by strict JSON parsers.

_NDARRAY_TAG = "__ndarray__"
_TUPLE_TAG = "__tuple__"
_FLOAT_TAG = "__float__"


def _nonfinite_repr(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    return "inf" if value > 0 else "-inf"


def _finite_safe(values):
    """Replace non-finite floats in a nested tolist() result by strings
    (``numpy`` converts them back on ``np.array(..., dtype=float)``)."""
    if isinstance(values, list):
        return [_finite_safe(v) for v in values]
    if isinstance(values, float) and not np.isfinite(values):
        return _nonfinite_repr(values)
    return values


def encode_state(obj):
    """Recursively encode a checkpoint state tree for JSON.

    Handles ``dict`` / ``list`` / ``tuple`` containers and ``ndarray`` /
    NumPy-scalar / ``float`` / ``int`` / ``str`` / ``bool`` / ``None``
    leaves.  Arrays are tagged with dtype and shape so
    :func:`decode_state` restores them bit-for-bit.

    Parameters
    ----------
    obj : object
        The state tree (typically a ``state_dict()`` result).

    Returns
    -------
    object
        A JSON-serializable mirror of ``obj``.
    """
    if isinstance(obj, np.ndarray):
        values = obj.tolist()
        if obj.dtype.kind == "f" and not np.isfinite(obj).all():
            values = _finite_safe(values)
        return {_NDARRAY_TAG: values, "dtype": str(obj.dtype),
                "shape": list(obj.shape)}
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        obj = obj.item()
    if isinstance(obj, float) and not np.isfinite(obj):
        return {_FLOAT_TAG: _nonfinite_repr(obj)}
    if isinstance(obj, dict):
        # dicts that already ARE well-formed tag nodes (e.g. a
        # get_rng_state result embedded in a larger tree) pass through
        # unchanged — encoding is idempotent on its own output
        if set(obj) == {_NDARRAY_TAG, "dtype", "shape"} or \
                set(obj) == {_TUPLE_TAG} or (
                set(obj) == {_FLOAT_TAG}
                and obj[_FLOAT_TAG] in ("nan", "inf", "-inf")):
            return obj
        # fail fast on trees the codec cannot round-trip: JSON would
        # silently coerce non-string keys, and a malformed tag-key
        # collision would misdecode as an array/tuple/float
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be str, got {key!r} "
                    f"({type(key).__name__}); store int-keyed maps as "
                    "lists of pairs")
            if key in (_NDARRAY_TAG, _TUPLE_TAG, _FLOAT_TAG):
                raise ValueError(
                    f"dict key {key!r} collides with a codec tag")
        return {k: encode_state(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return {_TUPLE_TAG: [encode_state(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_state(v) for v in obj]
    return obj


def decode_state(obj):
    """Inverse of :func:`encode_state`.

    Parameters
    ----------
    obj : object
        A tree produced by :func:`encode_state` (possibly after a JSON
        round trip).

    Returns
    -------
    object
        The original state tree: tagged arrays become ``ndarray`` with
        the recorded dtype/shape, tagged lists become tuples.
    """
    if isinstance(obj, dict):
        if _NDARRAY_TAG in obj:
            arr = np.array(obj[_NDARRAY_TAG], dtype=obj["dtype"])
            return arr.reshape([int(s) for s in obj["shape"]])
        if _TUPLE_TAG in obj:
            return tuple(decode_state(v) for v in obj[_TUPLE_TAG])
        if _FLOAT_TAG in obj:
            return float(obj[_FLOAT_TAG])
        return {k: decode_state(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_state(v) for v in obj]
    return obj


def copy_array_list(arrays) -> list:
    """Deep-copy a list of optional ndarrays (e.g. gradient slices).

    The single ingest/egress copy idiom shared by every checkpoint path
    that moves gradient buffers across an ownership boundary (event
    queue and shard queues): ``None`` entries pass through, everything
    else becomes an independent array.
    """
    return [None if a is None else np.array(a, copy=True) for a in arrays]


def save_checkpoint(state: dict, path: PathLike) -> None:
    """Write a checkpoint state tree to disk, losslessly.

    Parameters
    ----------
    state : dict
        Any state tree accepted by :func:`encode_state` (model
        ``state_dict``, optimizer state, cluster-runtime state, …).
    path : str or Path
        Destination file (strictly RFC-compliant JSON; non-finite
        floats are tagged by the codec, so ``allow_nan=False`` is a
        fail-fast guard, not a restriction).
    """
    Path(path).write_text(json.dumps(encode_state(state),
                                     allow_nan=False))


def load_checkpoint(path: PathLike) -> dict:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns
    -------
    dict
        The decoded state tree, bit-for-bit equal to what was saved.
    """
    return decode_state(json.loads(Path(path).read_text()))
