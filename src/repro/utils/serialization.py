"""JSON persistence for experiment results.

Benchmark runs are expensive on the NumPy substrate; these helpers let the
harness cache loss curves and tuner traces to disk and reload them for
plotting or regression comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.utils.logging import TrainLog

PathLike = Union[str, Path]


def _to_jsonable(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {k: _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj


def save_train_log(log: TrainLog, path: PathLike) -> None:
    """Write a :class:`TrainLog` to JSON."""
    payload = {"scalars": _to_jsonable(log.scalars),
               "steps": _to_jsonable(log.steps)}
    Path(path).write_text(json.dumps(payload))


def load_train_log(path: PathLike) -> TrainLog:
    """Read a :class:`TrainLog` back from JSON."""
    payload = json.loads(Path(path).read_text())
    log = TrainLog()
    log.scalars = {k: [float(x) for x in v]
                   for k, v in payload["scalars"].items()}
    log.steps = {k: [int(x) for x in v] for k, v in payload["steps"].items()}
    return log


def save_results(results: dict, path: PathLike) -> None:
    """Persist an arbitrary results dict (curves, speedups, configs)."""
    Path(path).write_text(json.dumps(_to_jsonable(results), indent=2))


def load_results(path: PathLike) -> dict:
    return json.loads(Path(path).read_text())
