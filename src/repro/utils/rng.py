"""Deterministic random-number management.

Every stochastic component in the library takes an explicit seed or
``numpy.random.Generator`` so that paper experiments can be averaged over
controlled seeds (the paper averages over 3 seeds; see Section 5).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators from a single seed.

    Used by the multi-seed experiment runner so that "seed i of run r" is
    reproducible irrespective of execution order.
    """
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def get_rng_state(rng: np.random.Generator) -> dict:
    """Export a generator's full state as a JSON-serializable dict.

    The returned dict is ``{"bit_generator": name, "state": ...}`` — the
    ``numpy`` bit-generator state plus the class name needed to rebuild
    it, encoded with the lossless tag codec of
    :mod:`repro.utils.serialization` (MT19937/SFC64 states carry
    ndarrays; PCG64 is plain ints), so it survives a JSON round trip
    exactly.

    Parameters
    ----------
    rng : numpy.random.Generator
        The generator to snapshot.

    Returns
    -------
    dict
        State dict accepted by :func:`set_rng_state`.
    """
    from repro.utils.serialization import encode_state
    return encode_state(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator to a state captured by :func:`get_rng_state`.

    Parameters
    ----------
    rng : numpy.random.Generator
        The generator to overwrite.  Its bit-generator class must match
        the one recorded in ``state``.
    state : dict
        State previously returned by :func:`get_rng_state` (possibly
        after a JSON round trip).
    """
    from repro.utils.serialization import decode_state
    recorded = state.get("bit_generator")
    actual = type(rng.bit_generator).__name__
    if recorded is not None and recorded != actual:
        raise ValueError(
            f"cannot restore {recorded} state into a {actual} generator")
    rng.bit_generator.state = decode_state(state)


def restore_rng(state: dict) -> np.random.Generator:
    """Build a fresh generator positioned at a captured state.

    Parameters
    ----------
    state : dict
        State previously returned by :func:`get_rng_state`.

    Returns
    -------
    numpy.random.Generator
        A new generator that will produce the same stream the snapshotted
        one would have from that point on.
    """
    name = state.get("bit_generator", "PCG64")
    bit_gen_cls = getattr(np.random, name, None)
    if bit_gen_cls is None:
        raise ValueError(f"unknown bit generator {name!r}")
    rng = np.random.Generator(bit_gen_cls())
    set_rng_state(rng, state)
    return rng


class RngMixin:
    """Mixin giving a class a lazily-constructed private generator.

    The generator itself is not serializable, so checkpointing code uses
    :meth:`rng_state` / :meth:`set_rng_state` to round-trip the stream
    position instead of the object (the lazy-construction contract is
    preserved: exporting state forces construction, restoring state
    builds the generator if it does not exist yet).
    """

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The private generator (constructed unseeded on first use)."""
        if getattr(self, "_rng", None) is None:
            self._rng = np.random.default_rng()
        return self._rng

    def rng_state(self) -> dict:
        """Serializable snapshot of the private generator's state."""
        return get_rng_state(self.rng)

    def set_rng_state(self, state: dict) -> None:
        """Restore the private generator from :meth:`rng_state` output."""
        if getattr(self, "_rng", None) is None:
            self._rng = restore_rng(state)
        else:
            set_rng_state(self._rng, state)
