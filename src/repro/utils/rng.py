"""Deterministic random-number management.

Every stochastic component in the library takes an explicit seed or
``numpy.random.Generator`` so that paper experiments can be averaged over
controlled seeds (the paper averages over 3 seeds; see Section 5).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators from a single seed.

    Used by the multi-seed experiment runner so that "seed i of run r" is
    reproducible irrespective of execution order.
    """
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngMixin:
    """Mixin giving a class a lazily-constructed private generator."""

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if getattr(self, "_rng", None) is None:
            self._rng = np.random.default_rng()
        return self._rng
