"""Lightweight in-memory training log.

The benchmark harness consumes these records to regenerate the paper's
figures (loss curves, momentum traces) and tables (speedup ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class TrainLog:
    """Append-only record of per-iteration scalars.

    Attributes
    ----------
    scalars:
        Mapping from series name (e.g. ``"loss"``, ``"mu"``, ``"lr"``) to the
        list of recorded values, one per ``append`` call for that name.
    steps:
        Mapping from series name to the iteration index of each record.
    """

    scalars: Dict[str, List[float]] = field(default_factory=dict)
    steps: Dict[str, List[int]] = field(default_factory=dict)

    def append(self, name: str, value: float, step: int) -> None:
        self.scalars.setdefault(name, []).append(float(value))
        self.steps.setdefault(name, []).append(int(step))

    def series(self, name: str) -> np.ndarray:
        """Return the recorded values of one series as an array."""
        return np.asarray(self.scalars.get(name, []), dtype=float)

    def last(self, name: str) -> float:
        values = self.scalars.get(name)
        if not values:
            raise KeyError(f"no records for series {name!r}")
        return values[-1]

    def __contains__(self, name: str) -> bool:
        return name in self.scalars

    def __len__(self) -> int:
        return max((len(v) for v in self.scalars.values()), default=0)

    # -------------------------------------------------------------- #
    # checkpointing
    # -------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable copy of the log: the single wire format used by
        both file persistence and cluster checkpoints."""
        return {"scalars": {k: list(v) for k, v in self.scalars.items()},
                "steps": {k: list(v) for k, v in self.steps.items()}}

    def load_state_dict(self, state: dict) -> None:
        """Replace the log's contents with :meth:`state_dict` output."""
        self.scalars = {k: [float(x) for x in v]
                        for k, v in state["scalars"].items()}
        self.steps = {k: [int(x) for x in v]
                      for k, v in state["steps"].items()}
