"""Shared utilities: RNG management, logging, serialization."""

from repro.utils.rng import (RngMixin, get_rng_state, new_rng, restore_rng,
                             set_rng_state, spawn_rngs)
from repro.utils.logging import TrainLog
from repro.utils.serialization import (decode_state, encode_state,
                                       load_checkpoint, load_results,
                                       load_train_log, save_checkpoint,
                                       save_results, save_train_log)

__all__ = ["RngMixin", "new_rng", "spawn_rngs", "get_rng_state",
           "set_rng_state", "restore_rng", "TrainLog",
           "save_train_log", "load_train_log", "save_results",
           "load_results", "encode_state", "decode_state",
           "save_checkpoint", "load_checkpoint"]
