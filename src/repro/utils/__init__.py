"""Shared utilities: RNG management, logging, serialization."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.logging import TrainLog
from repro.utils.serialization import (load_results, load_train_log,
                                       save_results, save_train_log)

__all__ = ["RngMixin", "new_rng", "spawn_rngs", "TrainLog",
           "save_train_log", "load_train_log", "save_results",
           "load_results"]
