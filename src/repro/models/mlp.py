"""Simple feed-forward models for fast tests and toy experiments."""

from __future__ import annotations

from typing import Sequence

from repro.autograd.tensor import Tensor
from repro.nn import Linear, Module, ReLU, Sequential
from repro.utils.rng import new_rng


class MLP(Module):
    """Multilayer perceptron with ReLU activations."""

    def __init__(self, sizes: Sequence[int], seed=None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = new_rng(seed)
        layers = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], seed=rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class LogisticRegression(Module):
    """Linear classifier (convex objective — useful for exact analysis)."""

    def __init__(self, in_features: int, num_classes: int, seed=None):
        super().__init__()
        self.linear = Linear(in_features, num_classes, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)
