"""Encoder-decoder sequence model (conv-seq2seq stand-in for Table 1).

The paper's Table 1 workload is Gehring et al.'s convolutional seq2seq on
IWSLT14 De-En, interesting here purely for its *instability*: without
gradient clipping the default optimizer (lr 0.25, Nesterov momentum 0.99)
diverges.  Saturating LSTM decoders self-limit (vanishing gradients cap
the loss near ``ln(vocab)``), so faithfully reproducing the divergence
needs an unbounded activation path like the conv seq2seq's own: with
``decoder_cell="rnn_relu"`` the decoder is a ReLU Elman recurrence — the
canonical exploding-gradient model (Pascanu et al., 2013) — and ``gain``
scales its recurrent weight past the edge of stability.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import no_grad
from repro.autograd.tensor import Tensor, concatenate, stack
from repro.nn import Embedding, Linear, LSTM, Module, RNNCell
from repro.utils.rng import new_rng


class Seq2Seq(Module):
    """LSTM encoder + (LSTM or ReLU-RNN) decoder with summary feeding.

    Parameters
    ----------
    vocab_size, embed_dim, hidden_size:
        Model dimensions.
    gain:
        Instability knob (> 1 pushes toward the exploding-gradient regime
        of Section 3.3).  For the LSTM decoder it multiplies the recurrent
        weights.  For the ReLU decoder it sets the positive-feedback
        strength: ``W_hh <- 0.3 * orthogonal + gain * I`` — rotation-heavy
        ReLU recurrences self-stabilize, so explosion needs an
        identity-dominant component (gain ~1.3 genuinely overflows the
        loss under the paper's default optimizer).
    decoder_cell:
        ``"lstm"`` (stable) or ``"rnn_relu"`` (unbounded activations, the
        Table 1 instability stand-in).
    """

    def __init__(self, vocab_size: int, embed_dim: int = 24,
                 hidden_size: int = 48, gain: float = 1.0,
                 decoder_cell: str = "lstm", seed=None):
        super().__init__()
        if decoder_cell not in ("lstm", "rnn_relu"):
            raise ValueError(f"unknown decoder_cell {decoder_cell!r}")
        rng = new_rng(seed)
        self.vocab_size = vocab_size
        self.decoder_cell = decoder_cell
        self.src_embed = Embedding(vocab_size, embed_dim, seed=rng)
        self.tgt_embed = Embedding(vocab_size, embed_dim, seed=rng)
        self.encoder = LSTM(embed_dim, hidden_size, seed=rng)
        if decoder_cell == "lstm":
            self.decoder = LSTM(embed_dim + hidden_size, hidden_size,
                                seed=rng)
            if gain != 1.0:
                for cell in self.decoder.cells + self.encoder.cells:
                    cell.weight_hh.data *= gain
        else:
            self.decoder_rnn = RNNCell(embed_dim + hidden_size, hidden_size,
                                       activation="relu", seed=rng)
            if gain != 1.0:
                w = self.decoder_rnn.weight_hh
                w.data = 0.3 * w.data + gain * np.eye(hidden_size)
        self.head = Linear(hidden_size, vocab_size, seed=rng)

    # ------------------------------------------------------------- #
    def _encode(self, src: np.ndarray):
        src_emb = self.src_embed(src)
        enc_out, enc_state = self.encoder(src_emb)
        return enc_out, enc_state           # (T, N, H) outputs, final state

    def _decode(self, tgt_in: np.ndarray, enc_out: Tensor, enc_state):
        """Aligned feeding: decoder step t sees encoder output t (a
        fixed-alignment stand-in for the conv seq2seq's attention)."""
        t, n = tgt_in.shape
        tgt_emb = self.tgt_embed(tgt_in)
        if self.decoder_cell == "lstm":
            steps: List[Tensor] = []
            for step in range(t):
                steps.append(concatenate([tgt_emb[step], enc_out[step]],
                                         axis=1))
            dec_in = stack(steps, axis=0)
            dec_out, _ = self.decoder(dec_in, enc_state)
            return dec_out
        h = enc_state[0][0]                  # encoder final hidden
        outs: List[Tensor] = []
        for step in range(t):
            inp = concatenate([tgt_emb[step], enc_out[step]], axis=1)
            h = self.decoder_rnn(inp, h)
            outs.append(h)
        return stack(outs, axis=0)

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        """Teacher-forced logits ``(T*N, vocab)`` (time-major inputs)."""
        enc_out, enc_state = self._encode(src)
        dec_out = self._decode(tgt_in, enc_out, enc_state)
        t, n, h = dec_out.shape
        return self.head(dec_out.reshape(t * n, h))

    def loss(self, src: np.ndarray, tgt: np.ndarray) -> Tensor:
        """Next-token loss with teacher forcing (BOS = last target token)."""
        tgt_in = np.vstack([tgt[-1:, :], tgt[:-1, :]])
        logits = self.forward(src, tgt_in)
        return F.cross_entropy(logits, tgt.reshape(-1))

    def greedy_decode(self, src: np.ndarray, length: int) -> np.ndarray:
        """Greedy teacher-free decoding; returns ``(length, N)`` ids."""
        with no_grad():
            enc_out, enc_state = self._encode(src)
            n = src.shape[1]
            token = np.zeros(n, dtype=np.int64)
            outputs = np.empty((length, n), dtype=np.int64)
            if self.decoder_cell == "lstm":
                state = enc_state
            else:
                h = enc_state[0][0]
            for step in range(length):
                emb = self.tgt_embed(token.reshape(1, n))[0]
                dec_in = concatenate([emb, enc_out[min(step, len(src) - 1)]],
                                     axis=1)
                if self.decoder_cell == "lstm":
                    hh, cc = state[0]
                    hh, cc = self.decoder.cells[0](dec_in, (hh, cc))
                    state = [(hh, cc)]
                    hidden = hh
                else:
                    h = self.decoder_rnn(dec_in, h)
                    hidden = h
                logits = self.head(hidden)
                token = np.argmax(logits.data, axis=1)
                outputs[step] = token
        return outputs
