"""LSTM language models (PTB / TS / WSJ stand-ins) and the tied variant.

Matches the paper's Table 3 shape (embedding -> stacked LSTM -> softmax)
at reduced width.  ``TiedLSTMLanguageModel`` shares the embedding with the
output projection (Press & Wolf), the model used in the Fig. 11
learning-rate-factor experiments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import Embedding, Linear, LSTM, Module
from repro.utils.rng import new_rng


class LSTMLanguageModel(Module):
    """Embedding, stacked LSTM, and a linear vocabulary head.

    ``forward`` takes time-major integer ids ``(T, N)`` and returns logits
    ``(T*N, vocab)`` ready for cross-entropy against flattened targets.
    """

    def __init__(self, vocab_size: int, embed_dim: int = 32,
                 hidden_size: int = 64, num_layers: int = 2, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.vocab_size = vocab_size
        self.embed = Embedding(vocab_size, embed_dim, seed=rng)
        self.lstm = LSTM(embed_dim, hidden_size, num_layers=num_layers,
                         seed=rng)
        self.head = Linear(hidden_size, vocab_size, seed=rng)

    def forward(self, ids: np.ndarray,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None):
        """Returns ``(logits, new_state)``."""
        emb = self.embed(ids)                      # (T, N, E)
        hidden, state = self.lstm(emb, state)      # (T, N, H)
        t, n, h = hidden.shape
        logits = self.head(hidden.reshape(t * n, h))
        return logits, state

    def loss(self, ids: np.ndarray, targets: np.ndarray,
             state=None) -> Tuple[Tensor, list]:
        logits, state = self.forward(ids, state)
        return F.cross_entropy(logits, np.asarray(targets).reshape(-1)), state


class TiedLSTMLanguageModel(Module):
    """LM with input/output weight tying: head weight == embedding matrix."""

    def __init__(self, vocab_size: int, embed_dim: int = 32,
                 num_layers: int = 2, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.vocab_size = vocab_size
        self.embed = Embedding(vocab_size, embed_dim, seed=rng)
        # hidden size must equal embed_dim for tying
        self.lstm = LSTM(embed_dim, embed_dim, num_layers=num_layers,
                         seed=rng)

    def forward(self, ids: np.ndarray, state=None):
        emb = self.embed(ids)
        hidden, state = self.lstm(emb, state)
        t, n, h = hidden.shape
        logits = hidden.reshape(t * n, h) @ self.embed.weight.T
        return logits, state

    def loss(self, ids: np.ndarray, targets: np.ndarray,
             state=None) -> Tuple[Tensor, list]:
        logits, state = self.forward(ids, state)
        return F.cross_entropy(logits, np.asarray(targets).reshape(-1)), state


def perplexity(mean_nll: float) -> float:
    """Perplexity from mean token negative log-likelihood (nats)."""
    return float(np.exp(min(mean_nll, 50.0)))  # cap to avoid inf overflow
