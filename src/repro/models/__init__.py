"""Models matching the paper's Table 3 architectures at laptop scale."""

from repro.models.mlp import MLP, LogisticRegression
from repro.models.resnet import ResNet, make_resnet_cifar10,  \
    make_resnet_cifar100
from repro.models.lstm_lm import LSTMLanguageModel, TiedLSTMLanguageModel
from repro.models.lstm_classifier import LSTMClassifier
from repro.models.seq2seq import Seq2Seq

__all__ = [
    "MLP", "LogisticRegression",
    "ResNet", "make_resnet_cifar10", "make_resnet_cifar100",
    "LSTMLanguageModel", "TiedLSTMLanguageModel", "LSTMClassifier",
    "Seq2Seq",
]
