"""LSTM sequence classifier (the Fig 3(c,d) "LSTM on MNIST" model)."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import LSTM, Linear, Module
from repro.utils.rng import new_rng


class LSTMClassifier(Module):
    """Consume a feature sequence, classify from the final hidden state."""

    def __init__(self, input_size: int, hidden_size: int, num_classes: int,
                 num_layers: int = 1, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.lstm = LSTM(input_size, hidden_size, num_layers=num_layers,
                         seed=rng)
        self.head = Linear(hidden_size, num_classes, seed=rng)

    def forward(self, x) -> Tensor:
        """``x``: time-major ``(T, N, input_size)`` array or Tensor."""
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        hidden, _ = self.lstm(x)
        return self.head(hidden[-1])

    def loss(self, x, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(self.forward(x), np.asarray(labels))
