"""CIFAR-style ResNets (He et al., 2016), scaled down for NumPy training.

Mirrors the paper's Table 3: the CIFAR10 network uses regular (basic)
residual units; the CIFAR100 network uses bottleneck units.  Widths and
depths are reduced so a full benchmark run stays laptop-feasible — the
optimizer dynamics we reproduce depend on the architecture family, not the
parameter count.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import BatchNorm2d, Conv2d, Linear, Module, ModuleList
from repro.utils.rng import new_rng


class BasicBlock(Module):
    """Two 3x3 convolutions with identity (or 1x1-projected) shortcut."""

    def __init__(self, in_ch: int, out_ch: int, stride: int = 1, seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1,
                            seed=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, seed=rng)
        self.bn2 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.shortcut = Conv2d(in_ch, out_ch, 1, stride=stride, seed=rng)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = self.shortcut(x) if self.shortcut is not None else x
        return (out + skip).relu()


class BottleneckBlock(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck unit (the CIFAR100 architecture)."""

    def __init__(self, in_ch: int, mid_ch: int, out_ch: int, stride: int = 1,
                 seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.conv1 = Conv2d(in_ch, mid_ch, 1, seed=rng)
        self.bn1 = BatchNorm2d(mid_ch)
        self.conv2 = Conv2d(mid_ch, mid_ch, 3, stride=stride, padding=1,
                            seed=rng)
        self.bn2 = BatchNorm2d(mid_ch)
        self.conv3 = Conv2d(mid_ch, out_ch, 1, seed=rng)
        self.bn3 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.shortcut = Conv2d(in_ch, out_ch, 1, stride=stride, seed=rng)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        skip = self.shortcut(x) if self.shortcut is not None else x
        return (out + skip).relu()


class ResNet(Module):
    """Stem conv + residual stages + global average pool + linear head."""

    def __init__(self, blocks: List[Module], stem_channels: int,
                 head_channels: int, num_classes: int, in_channels: int = 3,
                 seed=None):
        super().__init__()
        rng = new_rng(seed)
        self.stem = Conv2d(in_channels, stem_channels, 3, padding=1, seed=rng)
        self.stem_bn = BatchNorm2d(stem_channels)
        self.blocks = ModuleList(blocks)
        self.head = Linear(head_channels, num_classes, seed=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.stem_bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        out = F.global_avg_pool2d(out)
        return self.head(out)


def make_resnet_cifar10(num_classes: int = 10, width: int = 4,
                        blocks_per_stage: int = 1, seed=None) -> ResNet:
    """Basic-block ResNet in the style of the paper's 110-layer CIFAR10 net.

    Three stages with channel widths ``(w, 2w, 4w)``; stage transitions
    use stride 2.
    """
    rng = new_rng(seed)
    blocks: List[Module] = []
    channels = [width, 2 * width, 4 * width]
    in_ch = width
    for stage, out_ch in enumerate(channels):
        for b in range(blocks_per_stage):
            stride = 2 if (stage > 0 and b == 0) else 1
            blocks.append(BasicBlock(in_ch, out_ch, stride=stride, seed=rng))
            in_ch = out_ch
    return ResNet(blocks, stem_channels=width, head_channels=channels[-1],
                  num_classes=num_classes, seed=rng)


def make_resnet_cifar100(num_classes: int = 100, width: int = 4,
                         blocks_per_stage: int = 1, seed=None) -> ResNet:
    """Bottleneck ResNet in the style of the paper's 164-layer CIFAR100 net."""
    rng = new_rng(seed)
    blocks: List[Module] = []
    stages = [(width, 4 * width), (2 * width, 8 * width),
              (4 * width, 16 * width)]
    in_ch = width
    for stage, (mid_ch, out_ch) in enumerate(stages):
        for b in range(blocks_per_stage):
            stride = 2 if (stage > 0 and b == 0) else 1
            blocks.append(BottleneckBlock(in_ch, mid_ch, out_ch,
                                          stride=stride, seed=rng))
            in_ch = out_ch
    return ResNet(blocks, stem_channels=width, head_channels=stages[-1][1],
                  num_classes=num_classes, seed=rng)
