"""Workload definitions and the multi-seed experiment runner.

The paper's protocol (Section 5): every training-loss curve is averaged
over 3 random seeds; losses are smoothed with a uniform window before any
comparison; speedups are iteration ratios at the lowest common smoothed
loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.sim.trainer import TrainerHooks, train_sync
from repro.utils.logging import TrainLog

# A builder maps a seed to (model, loss_fn); an optimizer factory maps the
# model's parameters to a ready optimizer.
WorkloadBuilder = Callable[[int], Tuple[Module, Callable]]
OptimizerFactory = Callable[[list], Optimizer]


@dataclass
class Workload:
    """A named training task the optimizers are compared on.

    Attributes
    ----------
    name:
        Display name (e.g. ``"CIFAR100-like ResNet"``).
    build:
        ``seed -> (model, loss_fn)``; the loss_fn draws its own batches.
    steps:
        Optimizer steps per run.
    smooth_window:
        Uniform smoothing window for loss comparison (the paper uses 1000
        at full scale; scaled-down runs use proportionally smaller windows).
    """

    name: str
    build: WorkloadBuilder
    steps: int
    smooth_window: int = 50


@dataclass
class RunResult:
    """Averaged result of running one optimizer on one workload."""

    workload: str
    optimizer: str
    losses: np.ndarray                      # seed-averaged loss curve
    logs: List[TrainLog] = field(repr=False, default_factory=list)
    diverged: bool = False

    @property
    def final_loss(self) -> float:
        return float(self.losses[-1]) if self.losses.size else float("inf")

    @property
    def min_loss(self) -> float:
        return float(self.losses.min()) if self.losses.size else float("inf")


def average_curves(curves: Sequence[np.ndarray]) -> np.ndarray:
    """Average loss curves of possibly different lengths (divergence cuts
    a run short): truncate to the shortest."""
    if not curves:
        return np.empty(0)
    min_len = min(len(c) for c in curves)
    if min_len == 0:
        return np.empty(0)
    return np.mean([np.asarray(c[:min_len], dtype=float) for c in curves],
                   axis=0)


def run_workload(workload: Workload, opt_factory: OptimizerFactory,
                 optimizer_name: str, seeds: Sequence[int] = (0, 1, 2),
                 async_workers: int = 0,
                 hooks: Optional[TrainerHooks] = None) -> RunResult:
    """Train ``workload`` once per seed and average the loss curves.

    ``async_workers > 1`` routes through the unified execution API
    (:func:`repro.run.run_round_robin`) with the paper's round-robin
    protocol: constant delays and staleness ``async_workers - 1``.
    """
    # imported lazily: repro.run sits above repro.tuning in the layer map
    from repro.run import run_round_robin

    curves: List[np.ndarray] = []
    logs: List[TrainLog] = []
    diverged = False
    for seed in seeds:
        model, loss_fn = workload.build(seed)
        optimizer = opt_factory(model.parameters())
        if async_workers > 1:
            log = run_round_robin(model, optimizer, loss_fn,
                                  steps=workload.steps,
                                  workers=async_workers, hooks=hooks)
        else:
            log = train_sync(model, optimizer, loss_fn, workload.steps,
                             hooks=hooks)
        curves.append(log.series("loss"))
        logs.append(log)
        diverged = diverged or ("diverged" in log)
    return RunResult(workload=workload.name, optimizer=optimizer_name,
                     losses=average_curves(curves), logs=logs,
                     diverged=diverged)
