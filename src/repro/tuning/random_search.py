"""Random hyperparameter search (Bergstra & Bengio, 2012).

The paper cites random search as the black-box alternative YellowFin makes
unnecessary; we include it so the comparison harness can quantify the cost
of black-box tuning on the same workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.optim.optimizer import Optimizer
from repro.tuning.experiment import RunResult, Workload, run_workload
from repro.utils.rng import new_rng


@dataclass
class RandomSearchResult:
    """Outcome of a random-search tuning run."""

    best_config: dict
    best_run: RunResult
    all_runs: List[tuple] = field(repr=False, default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.all_runs)


def log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """Sample log-uniformly from ``[low, high]`` (the standard choice for
    learning rates)."""
    if not 0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got ({low}, {high})")
    return float(math.exp(rng.uniform(math.log(low), math.log(high))))


def random_search(workload: Workload,
                  opt_builder: Callable[[list, dict], Optimizer],
                  sampler: Callable[[np.random.Generator], dict],
                  budget: int, optimizer_name: str,
                  seeds: Sequence[int] = (0,), seed=None,
                  hooks=None) -> RandomSearchResult:
    """Sample ``budget`` configurations and keep the best smoothed loss.

    ``sampler`` draws a config dict from the search space;
    ``opt_builder(params, config)`` instantiates the optimizer.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    rng = new_rng(seed)
    best_score = math.inf
    best: Optional[tuple] = None
    all_runs: List[tuple] = []
    for trial in range(budget):
        config = sampler(rng)
        result = run_workload(
            workload, lambda p, c=config: opt_builder(p, c),
            optimizer_name=f"{optimizer_name}#{trial}", seeds=seeds,
            hooks=hooks)
        if result.losses.size:
            smoothed = smooth_losses(result.losses, workload.smooth_window)
            score = float(smoothed.min()) + (1e18 if result.diverged else 0)
        else:
            score = math.inf
        all_runs.append((config, result))
        if score < best_score:
            best_score = score
            best = (config, result)
    assert best is not None
    return RandomSearchResult(best_config=best[0], best_run=best[1],
                              all_runs=all_runs)
