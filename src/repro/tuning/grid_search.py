"""Learning-rate grid search — the paper's hand-tuning protocol.

Section 5.1: "We tune Adam and momentum SGD on learning rate grids with
prescribed momentum 0.9 for SGD. ... we pick the configuration achieving
the lowest averaged smoothed loss."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.convergence import smooth_losses
from repro.optim.optimizer import Optimizer
from repro.sim.trainer import TrainerHooks
from repro.tuning.experiment import RunResult, Workload, run_workload


@dataclass
class GridSearchResult:
    """Outcome of tuning one optimizer family on one workload."""

    best_lr: float
    best_run: RunResult
    all_runs: Dict[float, RunResult] = field(repr=False, default_factory=dict)

    @property
    def best_smoothed_min(self) -> float:
        return self.best_run.min_loss


def grid_search(workload: Workload,
                opt_builder: Callable[[list, float], Optimizer],
                lr_grid: Sequence[float], optimizer_name: str,
                seeds: Sequence[int] = (0, 1, 2),
                async_workers: int = 0,
                hooks: Optional[TrainerHooks] = None) -> GridSearchResult:
    """Run every learning rate in the grid; pick the lowest smoothed loss.

    Diverged configurations are retained (with their truncated curves) but
    can never win unless every configuration diverged.
    """
    if not lr_grid:
        raise ValueError("empty learning-rate grid")
    runs: Dict[float, RunResult] = {}
    scores: Dict[float, float] = {}
    for lr in lr_grid:
        result = run_workload(
            workload, lambda params, lr=lr: opt_builder(params, lr),
            optimizer_name=f"{optimizer_name}(lr={lr:g})", seeds=seeds,
            async_workers=async_workers, hooks=hooks)
        runs[lr] = result
        if result.losses.size == 0:
            scores[lr] = float("inf")
        else:
            smoothed = smooth_losses(result.losses, workload.smooth_window)
            # diverged runs rank below every completed run
            penalty = 1e18 if result.diverged else 0.0
            scores[lr] = float(smoothed.min()) + penalty
    best_lr = min(scores, key=scores.get)
    return GridSearchResult(best_lr=best_lr, best_run=runs[best_lr],
                            all_runs=runs)
