"""Experiment harness: workload definitions, multi-seed runs, and the
paper's grid-search tuning protocol (Section 5.1 / Appendix I)."""

from repro.tuning.experiment import Workload, RunResult, run_workload, \
    average_curves
from repro.tuning.grid_search import grid_search, GridSearchResult
from repro.tuning.random_search import (random_search, RandomSearchResult,
                                        log_uniform)
from repro.analysis.convergence import speedup_ratio

__all__ = [
    "Workload", "RunResult", "run_workload", "average_curves",
    "grid_search", "GridSearchResult",
    "random_search", "RandomSearchResult", "log_uniform",
    "speedup_ratio",
]
