"""Stochastic gradient descent, with and without momentum.

Implements the exact Polyak update of the paper's eq. (1):

    x_{t+1} = x_t - α ∇f(x_t) + µ (x_t - x_{t-1})

as well as Nesterov's variant used by the conv-seq2seq baseline (Table 1).
Both optimizers provide fused whole-model kernels (``fused=True``): the
update runs on the packed parameter buffer in a constant number of ndarray
operations, bit-for-bit identical to the per-tensor loop.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Vanilla SGD (the paper's "Vanilla SGD" baseline for WSJ parsing).

    Parameters
    ----------
    params : iterable of Tensor
        Trainable tensors.
    lr : float
        Learning rate α.
    weight_decay : float, optional
        L2 penalty added to each gradient as ``g + weight_decay * x``.
    fused : bool, optional
        Run the update as one whole-model vector operation.
    """

    def __init__(self, params: Iterable[Tensor], lr: float,
                 weight_decay: float = 0.0, fused: bool = False):
        super().__init__(params, fused=fused)
        self.lr = lr
        self.weight_decay = weight_decay

    def _per_tensor_step(self) -> None:
        wd = self.weight_decay
        for p, g in zip(self.params, self.gradients()):
            if wd:
                g = g + wd * p.data
            p.data -= self.lr * g

    def _fused_step(self) -> None:
        g = self._gather_flat_gradient()
        x = self._flat.buffer
        if self.weight_decay:
            g += self.weight_decay * x
        x -= self.lr * g

    def _extra_state(self) -> dict:
        return {"weight_decay": self.weight_decay}

    def _load_extra_state(self, extra: dict) -> None:
        # .get: checkpoints written before weight_decay was recorded
        # have an empty extra dict
        self.weight_decay = extra.get("weight_decay", self.weight_decay)


class MomentumSGD(Optimizer):
    """Polyak (heavy-ball) or Nesterov momentum SGD.

    Parameters
    ----------
    params : iterable of Tensor
        Trainable tensors.
    lr : float
        Learning rate α.
    momentum : float, optional
        Momentum µ (the paper's hand-tuned baseline uses 0.9).
    nesterov : bool, optional
        Use Nesterov's lookahead form.
    weight_decay : float, optional
        L2 penalty added to each gradient.
    fused : bool, optional
        Keep the velocity as one flat vector and update the whole model
        in a constant number of ndarray operations.

    Notes
    -----
    The velocity buffer ``v_{t+1} = µ v_t - α g_t`` with ``x += v`` is
    algebraically identical to eq. (1); we keep per-parameter previous
    iterates as well so that external probes (the closed-loop momentum
    estimator) can inspect ``x_t − x_{t−1}`` exactly.
    """

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.9, nesterov: bool = False,
                 weight_decay: float = 0.0, fused: bool = False):
        super().__init__(params, fused=fused)
        self.lr = lr
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        if self.fused:
            self._velocity = self._flat.zeros()
        else:
            self._velocity: List[np.ndarray] = [np.zeros_like(p.data)
                                                for p in self.params]

    def _per_tensor_step(self) -> None:
        mu, alpha, wd = self.momentum, self.lr, self.weight_decay
        for p, g, v in zip(self.params, self.gradients(), self._velocity):
            if wd:
                g = g + wd * p.data
            v *= mu
            v -= alpha * g
            if self.nesterov:
                p.data += mu * v - alpha * g
            else:
                p.data += v

    def _fused_step(self) -> None:
        mu, alpha = self.momentum, self.lr
        g = self._gather_flat_gradient()
        x = self._flat.buffer
        v = self._velocity
        if self.weight_decay:
            g += self.weight_decay * x
        v *= mu
        v -= alpha * g
        if self.nesterov:
            x += mu * v - alpha * g
        else:
            x += v

    def set_hyperparams(self, lr: float, momentum: float) -> None:
        """Used by tuners (YellowFin) to retarget α and µ between steps."""
        self.lr = lr
        self.momentum = momentum

    def _extra_state(self) -> dict:
        return {"momentum": self.momentum, "nesterov": self.nesterov,
                "weight_decay": self.weight_decay,
                "velocity": self._state_to_lists(self._velocity)}

    def _load_extra_state(self, extra: dict) -> None:
        self.momentum = extra["momentum"]
        self.nesterov = extra["nesterov"]
        self.weight_decay = extra.get("weight_decay", self.weight_decay)
        self._velocity = self._state_from_lists(extra["velocity"])
