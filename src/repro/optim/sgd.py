"""Stochastic gradient descent, with and without momentum.

Implements the exact Polyak update of the paper's eq. (1):

    x_{t+1} = x_t - α ∇f(x_t) + µ (x_t - x_{t-1})

as well as Nesterov's variant used by the conv-seq2seq baseline (Table 1).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Vanilla SGD (the paper's "Vanilla SGD" baseline for WSJ parsing)."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        wd = self.weight_decay
        for p, g in zip(self.params, self.gradients()):
            if wd:
                g = g + wd * p.data
            p.data -= self.lr * g
        self.t += 1


class MomentumSGD(Optimizer):
    """Polyak (heavy-ball) or Nesterov momentum SGD.

    Parameters
    ----------
    lr:
        Learning rate α.
    momentum:
        Momentum µ (the paper's hand-tuned baseline uses 0.9).
    nesterov:
        Use Nesterov's lookahead form.

    Notes
    -----
    The velocity buffer ``v_{t+1} = µ v_t - α g_t`` with ``x += v`` is
    algebraically identical to eq. (1); we keep per-parameter previous
    iterates as well so that external probes (the closed-loop momentum
    estimator) can inspect ``x_t − x_{t−1}`` exactly.
    """

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.9, nesterov: bool = False,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity: List[np.ndarray] = [np.zeros_like(p.data)
                                            for p in self.params]

    def step(self) -> None:
        mu, alpha, wd = self.momentum, self.lr, self.weight_decay
        for p, g, v in zip(self.params, self.gradients(), self._velocity):
            if wd:
                g = g + wd * p.data
            v *= mu
            v -= alpha * g
            if self.nesterov:
                p.data += mu * v - alpha * g
            else:
                p.data += v
        self.t += 1

    def set_hyperparams(self, lr: float, momentum: float) -> None:
        """Used by tuners (YellowFin) to retarget α and µ between steps."""
        self.lr = lr
        self.momentum = momentum

    def _extra_state(self) -> dict:
        return {"momentum": self.momentum, "nesterov": self.nesterov,
                "velocity": self._copy_buffers(self._velocity)}

    def _load_extra_state(self, extra: dict) -> None:
        self.momentum = extra["momentum"]
        self.nesterov = extra["nesterov"]
        self._velocity = self._copy_buffers(extra["velocity"])
