"""RMSProp (Tieleman & Hinton, 2012)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class RMSProp(Optimizer):
    """Exponentially-averaged squared gradients for per-coordinate scaling."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 decay: float = 0.9, eps: float = 1e-8):
        super().__init__(params)
        self.lr = lr
        self.decay = decay
        self.eps = eps
        self._sq: List[np.ndarray] = [np.zeros_like(p.data)
                                      for p in self.params]

    def step(self) -> None:
        d = self.decay
        for p, g, sq in zip(self.params, self.gradients(), self._sq):
            sq *= d
            sq += (1 - d) * g * g
            p.data -= self.lr * g / (np.sqrt(sq) + self.eps)
        self.t += 1

    def _extra_state(self) -> dict:
        return {"sq": self._copy_buffers(self._sq)}

    def _load_extra_state(self, extra: dict) -> None:
        self._sq = self._copy_buffers(extra["sq"])
