"""RMSProp (Tieleman & Hinton, 2012)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class RMSProp(Optimizer):
    """Exponentially-averaged squared gradients for per-coordinate scaling.

    Parameters
    ----------
    params : iterable of Tensor
        Trainable tensors.
    lr : float, optional
        Learning rate.
    decay : float, optional
        Decay rate of the squared-gradient average.
    eps : float, optional
        Denominator fuzz factor.
    fused : bool, optional
        Keep the squared-gradient average flat and update the whole model
        in a constant number of ndarray operations.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 decay: float = 0.9, eps: float = 1e-8, fused: bool = False):
        super().__init__(params, fused=fused)
        self.lr = lr
        self.decay = decay
        self.eps = eps
        if self.fused:
            self._sq = self._flat.zeros()
        else:
            self._sq: List[np.ndarray] = [np.zeros_like(p.data)
                                          for p in self.params]

    def _per_tensor_step(self) -> None:
        d = self.decay
        for p, g, sq in zip(self.params, self.gradients(), self._sq):
            sq *= d
            sq += (1 - d) * g * g
            p.data -= self.lr * g / (np.sqrt(sq) + self.eps)

    def _fused_step(self) -> None:
        d = self.decay
        g = self._gather_flat_gradient()
        sq = self._sq
        sq *= d
        sq += (1 - d) * g * g
        self._flat.buffer -= self.lr * g / (np.sqrt(sq) + self.eps)

    def _extra_state(self) -> dict:
        return {"sq": self._state_to_lists(self._sq)}

    def _load_extra_state(self, extra: dict) -> None:
        self._sq = self._state_from_lists(extra["sq"])
