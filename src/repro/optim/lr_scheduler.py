"""Learning-rate schedules used by the paper's experiment protocol.

Appendix I: TS decays the learning rate by 0.97 every epoch; WSJ decays by
0.9 every epoch after epoch 14.
"""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`epoch_end` once per epoch.

    Parameters
    ----------
    optimizer : Optimizer
        The optimizer whose ``lr`` the schedule rescales; its learning
        rate at construction time becomes the base rate.
    """

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def factor(self) -> float:
        """Multiplier applied to the base learning rate this epoch."""
        raise NotImplementedError

    def epoch_end(self) -> None:
        """Advance one epoch and retarget the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.factor()


class ExponentialDecay(LRScheduler):
    """lr ← base_lr · gamma^epoch (TS protocol with gamma=0.97)."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.97):
        super().__init__(optimizer)
        self.gamma = gamma

    def factor(self) -> float:
        """``gamma ** epoch``."""
        return self.gamma ** self.epoch


class StepDecay(LRScheduler):
    """Decay by ``gamma`` each epoch after ``start_epoch`` (WSJ protocol)."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.9,
                 start_epoch: int = 14):
        super().__init__(optimizer)
        self.gamma = gamma
        self.start_epoch = start_epoch

    def factor(self) -> float:
        """``gamma ** max(0, epoch - start_epoch)``."""
        excess = max(0, self.epoch - self.start_epoch)
        return self.gamma ** excess
