"""Baseline optimizers the paper compares against, plus utilities.

Includes vanilla SGD, Polyak/Nesterov momentum SGD, Adam, AdaGrad, RMSProp,
learning-rate schedulers and static gradient clipping.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD, MomentumSGD
from repro.optim.adam import Adam
from repro.optim.adagrad import AdaGrad
from repro.optim.rmsprop import RMSProp
from repro.optim.lr_scheduler import ExponentialDecay, StepDecay, LRScheduler
from repro.optim.grad_clip import clip_grad_norm, global_grad_norm

__all__ = [
    "Optimizer", "SGD", "MomentumSGD", "Adam", "AdaGrad", "RMSProp",
    "ExponentialDecay", "StepDecay", "LRScheduler",
    "clip_grad_norm", "global_grad_norm",
]
