"""Base optimizer API.

All optimizers operate on a list of :class:`~repro.nn.module.Parameter`
(or any gradient-carrying :class:`~repro.autograd.tensor.Tensor`), reading
``p.grad`` and updating ``p.data`` in place — the same contract as
``torch.optim``, so YellowFin is a drop-in replacement as the paper claims.

Every optimizer additionally supports a **fused** execution mode
(``fused=True``): parameters are packed into one contiguous buffer
(:class:`~repro.autograd.flat.FlatParams`) and the update rule runs as a
handful of whole-model ndarray operations instead of a Python loop over
tensors.  Fused and per-tensor modes produce the same trajectory (bit-for-
bit for the pure elementwise rules; to float tolerance for rules involving
global reductions) — the flag trades nothing but speed.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.autograd.flat import FlatParams
from repro.autograd.tensor import Tensor
from repro.obs.session import active as _obs_active


class Optimizer:
    """Common functionality: parameter bookkeeping, ``zero_grad``, fusion.

    Parameters
    ----------
    params : iterable of Tensor
        Gradient-carrying tensors to optimize.  Must be non-empty and all
        require grad.
    fused : bool, optional
        Pack parameters into one flat buffer and run the update as
        whole-model vector operations.  Subclasses implement the fused
        kernel in :meth:`_fused_step`; the per-tensor path remains the
        reference implementation.

    Attributes
    ----------
    params : list of Tensor
        The optimized tensors, in registration order.
    t : int
        Global step counter, incremented by :meth:`step`.
    fused : bool
        Whether the fused kernel path is active.
    """

    def __init__(self, params: Iterable[Tensor], fused: bool = False):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("all optimized tensors must require grad")
        self.t = 0  # global step counter
        self.fused = bool(fused)
        self._flat: Optional[FlatParams] = None
        self._flat_grad: Optional[np.ndarray] = None
        if self.fused:
            self._flat = FlatParams(self.params)
            self._flat_grad = self._flat.zeros()

    def zero_grad(self) -> None:
        """Reset the gradient of every optimized tensor to ``None``."""
        for p in self.params:
            p.zero_grad()

    def gradients(self) -> List[np.ndarray]:
        """Collect current gradients; missing grads are zeros.

        Returns
        -------
        list of numpy.ndarray
            One array per parameter, in parameter order.
        """
        return [p.grad if p.grad is not None else np.zeros_like(p.data)
                for p in self.params]

    def flat_gradient(self) -> np.ndarray:
        """All gradients concatenated into one fresh vector.

        Always safe to hold across steps.  The fused hot path uses the
        internal :meth:`_gather_flat_gradient` (a reused buffer) instead.
        """
        if self.fused:
            return self._gather_flat_gradient().copy()
        return np.concatenate([g.reshape(-1) for g in self.gradients()])

    def _gather_flat_gradient(self) -> np.ndarray:
        """Gather grads into the persistent flat buffer (fused mode only)."""
        assert self._flat is not None
        self._flat.ensure_packed()
        return self._flat.gather_grads(out=self._flat_grad)

    def step(self) -> None:
        """Apply one update from the current gradients.

        Delegates the actual update to :meth:`_raw_step` — the kernel
        dispatch subclasses override (YellowFin does, to interleave its
        measurement/tuning pipeline).  When a :mod:`repro.obs` session
        is active, the kernel is additionally timed and recorded as an
        ``optimizer``-category span and a profiler sample; with no
        session the only extra cost over calling the kernel directly is
        one ``active()`` check (gated by ``BENCH_obs_overhead.json``).
        """
        session = _obs_active()
        if session is None:
            self._raw_step()
            return
        start = time.perf_counter()
        self._raw_step()
        end = time.perf_counter()
        name = (f"{type(self).__name__}."
                f"{'fused' if self.fused else 'per_tensor'}")
        if session.profiler is not None:
            session.profiler.add(f"optimizer.{name}", end - start)
        if session.tracer is not None:
            session.tracer.complete(name, "optimizer", start, end,
                                    t=self.t)

    def _raw_step(self) -> None:
        """The un-instrumented update: kernel dispatch + step count.

        Dispatches to :meth:`_fused_step` when ``fused=True`` and the
        subclass provides a fused kernel; otherwise runs the per-tensor
        reference path in :meth:`_per_tensor_step`.
        """
        if self.fused:
            self._flat.ensure_packed()
            self._fused_step()
        else:
            self._per_tensor_step()
        self.t += 1

    def _per_tensor_step(self) -> None:
        """Reference per-tensor update; subclasses must implement."""
        raise NotImplementedError

    def _fused_step(self) -> None:
        """Fused whole-model update; subclasses must implement to support
        ``fused=True``."""
        raise NotImplementedError(
            f"{type(self).__name__} has no fused kernel; "
            "construct it with fused=False")

    # hook for schedulers
    @property
    def lr(self) -> float:
        """Current learning rate (0.0 until a subclass sets it)."""
        return getattr(self, "_lr", 0.0)

    @lr.setter
    def lr(self, value: float) -> None:
        self._lr = float(value)

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable optimizer state (not including parameters).

        Subclasses extend via :meth:`_extra_state`.  Restore with
        :meth:`load_state_dict` on an optimizer constructed over the same
        parameter list.  The format is identical in fused and per-tensor
        mode, so checkpoints move freely between the two.
        """
        return {"t": self.t, "lr": self.lr, "extra": self._extra_state()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.t = int(state["t"])
        self.lr = float(state["lr"])
        self._load_extra_state(state["extra"])

    def _extra_state(self) -> dict:
        """Subclass hook: extra serializable state."""
        return {}

    def _load_extra_state(self, extra: dict) -> None:
        """Subclass hook: restore :meth:`_extra_state` output."""
        pass

    @staticmethod
    def _copy_buffers(buffers) -> list:
        """Deep-copy a list of ndarray state buffers."""
        return [np.array(b, copy=True) for b in buffers]

    # ------------------------------------------------------------- #
    # fused-state helpers for subclasses
    # ------------------------------------------------------------- #
    def _state_to_lists(self, flat_or_list) -> list:
        """Convert a state buffer to the per-tensor checkpoint format.

        Fused subclasses keep state (velocity, moments) as one flat vector;
        checkpoints always store the per-tensor list so fused and
        per-tensor runs can restore each other.
        """
        if self.fused:
            return self._flat.split(flat_or_list)
        return self._copy_buffers(flat_or_list)

    def _state_from_lists(self, buffers: Sequence[np.ndarray]):
        """Inverse of :meth:`_state_to_lists` for the active mode."""
        if self.fused:
            return self._flat.gather(buffers)
        return self._copy_buffers(buffers)
