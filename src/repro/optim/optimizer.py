"""Base optimizer API.

All optimizers operate on a list of :class:`~repro.nn.module.Parameter`
(or any gradient-carrying :class:`~repro.autograd.tensor.Tensor`), reading
``p.grad`` and updating ``p.data`` in place — the same contract as
``torch.optim``, so YellowFin is a drop-in replacement as the paper claims.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Common functionality: parameter bookkeeping and ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("all optimized tensors must require grad")
        self.t = 0  # global step counter

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def gradients(self) -> List[np.ndarray]:
        """Collect current gradients; missing grads are zeros."""
        return [p.grad if p.grad is not None else np.zeros_like(p.data)
                for p in self.params]

    def flat_gradient(self) -> np.ndarray:
        """All gradients concatenated into one vector."""
        return np.concatenate([g.reshape(-1) for g in self.gradients()])

    def step(self) -> None:
        raise NotImplementedError

    # hook for schedulers
    @property
    def lr(self) -> float:
        return getattr(self, "_lr", 0.0)

    @lr.setter
    def lr(self, value: float) -> None:
        self._lr = float(value)

    # ------------------------------------------------------------- #
    # checkpointing
    # ------------------------------------------------------------- #
    def state_dict(self) -> dict:
        """Serializable optimizer state (not including parameters).

        Subclasses extend via :meth:`_extra_state`.  Restore with
        :meth:`load_state_dict` on an optimizer constructed over the same
        parameter list.
        """
        return {"t": self.t, "lr": self.lr, "extra": self._extra_state()}

    def load_state_dict(self, state: dict) -> None:
        self.t = int(state["t"])
        self.lr = float(state["lr"])
        self._load_extra_state(state["extra"])

    def _extra_state(self) -> dict:
        return {}

    def _load_extra_state(self, extra: dict) -> None:
        pass

    @staticmethod
    def _copy_buffers(buffers) -> list:
        return [np.array(b, copy=True) for b in buffers]
