"""Static gradient clipping (the manual baseline YellowFin's adaptive
clipping is compared against in Table 1)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor


def global_grad_norm(params: Iterable[Tensor]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad * p.grad))
    return float(np.sqrt(total))


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging gradient explosions,
    Fig. 6).
    """
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
