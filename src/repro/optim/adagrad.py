"""AdaGrad (Duchi et al., 2011) — the NLP-community baseline for parsing."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class AdaGrad(Optimizer):
    """Per-coordinate learning rates from accumulated squared gradients.

    Parameters
    ----------
    params : iterable of Tensor
        Trainable tensors.
    lr : float, optional
        Base learning rate, divided per-coordinate by the root of the
        accumulated squared gradients.
    eps : float, optional
        Denominator fuzz factor.
    fused : bool, optional
        Keep the accumulator flat and update the whole model in a constant
        number of ndarray operations.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 eps: float = 1e-10, fused: bool = False):
        super().__init__(params, fused=fused)
        self.lr = lr
        self.eps = eps
        if self.fused:
            self._accum = self._flat.zeros()
        else:
            self._accum: List[np.ndarray] = [np.zeros_like(p.data)
                                             for p in self.params]

    def _per_tensor_step(self) -> None:
        for p, g, acc in zip(self.params, self.gradients(), self._accum):
            acc += g * g
            p.data -= self.lr * g / (np.sqrt(acc) + self.eps)

    def _fused_step(self) -> None:
        g = self._gather_flat_gradient()
        acc = self._accum
        acc += g * g
        self._flat.buffer -= self.lr * g / (np.sqrt(acc) + self.eps)

    def _extra_state(self) -> dict:
        return {"accum": self._state_to_lists(self._accum)}

    def _load_extra_state(self, extra: dict) -> None:
        self._accum = self._state_from_lists(extra["accum"])
