"""AdaGrad (Duchi et al., 2011) — the NLP-community baseline for parsing."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class AdaGrad(Optimizer):
    """Per-coordinate learning rates from accumulated squared gradients."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 eps: float = 1e-10):
        super().__init__(params)
        self.lr = lr
        self.eps = eps
        self._accum: List[np.ndarray] = [np.zeros_like(p.data)
                                         for p in self.params]

    def step(self) -> None:
        for p, g, acc in zip(self.params, self.gradients(), self._accum):
            acc += g * g
            p.data -= self.lr * g / (np.sqrt(acc) + self.eps)
        self.t += 1

    def _extra_state(self) -> dict:
        return {"accum": self._copy_buffers(self._accum)}

    def _load_extra_state(self, extra: dict) -> None:
        self._accum = self._copy_buffers(extra["accum"])
