"""Adam (Kingma & Ba, 2015) — the paper's main adaptive baseline."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    Parameters
    ----------
    params : iterable of Tensor
        Trainable tensors.
    lr : float, optional
        Learning rate.
    beta1 : float, optional
        First-moment decay.  This is the quantity the paper calls
        "momentum in Adam" when sweeping it under asynchrony (Fig. 10,
        Appendix J.3); it may be negative there, which this implementation
        permits.
    beta2 : float, optional
        Second-moment decay.
    eps : float, optional
        Denominator fuzz factor.
    amsgrad : bool, optional
        Use the maximum of past second-moment estimates (Reddi et al.,
        2018), a common fix for Adam's non-convergence cases.
    fused : bool, optional
        Keep both moment buffers flat and update the whole model in a
        constant number of ndarray operations (bit-for-bit identical to
        the per-tensor loop).
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 amsgrad: bool = False, fused: bool = False):
        super().__init__(params, fused=fused)
        if not -1.0 < beta1 < 1.0:
            raise ValueError(f"beta1 must be in (-1, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.amsgrad = amsgrad
        if self.fused:
            self._m = self._flat.zeros()
            self._v = self._flat.zeros()
            self._vmax = self._flat.zeros()
        else:
            self._m: List[np.ndarray] = [np.zeros_like(p.data)
                                         for p in self.params]
            self._v: List[np.ndarray] = [np.zeros_like(p.data)
                                         for p in self.params]
            self._vmax: List[np.ndarray] = [np.zeros_like(p.data)
                                            for p in self.params]

    def _raw_step(self) -> None:
        """Apply one bias-corrected Adam update from current gradients.

        Increments ``t`` *before* the kernel (bias correction uses the
        post-increment step count), unlike the base dispatch.
        """
        self.t += 1
        if self.fused:
            self._flat.ensure_packed()
            self._fused_step()
        else:
            self._per_tensor_step()

    def _per_tensor_step(self) -> None:
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        for p, g, m, v, vmax in zip(self.params, self.gradients(),
                                    self._m, self._v, self._vmax):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            if self.amsgrad:
                np.maximum(vmax, v, out=vmax)
                v_hat = vmax / bias2
            else:
                v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _fused_step(self) -> None:
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        g = self._gather_flat_gradient()
        m, v, vmax = self._m, self._v, self._vmax
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        m_hat = m / bias1
        if self.amsgrad:
            np.maximum(vmax, v, out=vmax)
            v_hat = vmax / bias2
        else:
            v_hat = v / bias2
        self._flat.buffer -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _extra_state(self) -> dict:
        return {"beta1": self.beta1, "beta2": self.beta2, "eps": self.eps,
                "amsgrad": self.amsgrad,
                "m": self._state_to_lists(self._m),
                "v": self._state_to_lists(self._v),
                "vmax": self._state_to_lists(self._vmax)}

    def _load_extra_state(self, extra: dict) -> None:
        self.beta1, self.beta2, self.eps = (extra["beta1"], extra["beta2"],
                                            extra["eps"])
        self.amsgrad = extra["amsgrad"]
        self._m = self._state_from_lists(extra["m"])
        self._v = self._state_from_lists(extra["v"])
        self._vmax = self._state_from_lists(extra["vmax"])
