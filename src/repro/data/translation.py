"""Synthetic sequence-to-sequence translation task (IWSLT14 De-En stand-in).

Table 1 of the paper evaluates *stability*: the conv-seq2seq baseline
diverges without gradient clipping and needs a manually-set threshold of
0.1, while YellowFin's adaptive clipping trains stably and reaches a
better BLEU.  What matters is an encoder-decoder workload whose loss
surface has occasional very steep slopes.  We build a deterministic
token-transduction task (vocabulary permutation + local reordering) —
learnable, so loss/"BLEU" improves — and train a seq2seq model whose
recurrent decoder exhibits exploding gradients at large hidden scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.rng import new_rng


@dataclass
class SyntheticTranslation:
    """Pairs ``(source, target)`` of equal length ``seq_len``.

    The target is the source mapped through a fixed random permutation of
    the vocabulary — position-aligned, so the task is learnable by an
    aligned-feeding encoder-decoder (and a BLEU-style metric responds to
    real learning).
    """

    vocab_size: int = 40
    seq_len: int = 10
    train_size: int = 1024
    test_size: int = 256
    seed: int = 0

    src_train: np.ndarray = field(init=False, repr=False)
    tgt_train: np.ndarray = field(init=False, repr=False)
    src_test: np.ndarray = field(init=False, repr=False)
    tgt_test: np.ndarray = field(init=False, repr=False)
    permutation: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        rng = new_rng(self.seed)
        self.permutation = rng.permutation(self.vocab_size)
        self.src_train, self.tgt_train = self._sample(rng, self.train_size)
        self.src_test, self.tgt_test = self._sample(rng, self.test_size)

    def _sample(self, rng: np.random.Generator, count: int
                ) -> Tuple[np.ndarray, np.ndarray]:
        src = rng.integers(0, self.vocab_size,
                           size=(count, self.seq_len)).astype(np.int64)
        tgt = self.permutation[src]
        return src, tgt


def bleu_like(predictions: np.ndarray, targets: np.ndarray,
              max_n: int = 4) -> float:
    """Corpus-level geometric-mean n-gram precision (BLEU without brevity
    penalty — sequences here are equal-length)."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    precisions = []
    for n in range(1, max_n + 1):
        if predictions.shape[1] < n:
            break
        total, hits = 0, 0
        for pred_row, tgt_row in zip(predictions, targets):
            pred_ngrams = [tuple(pred_row[i:i + n])
                           for i in range(len(pred_row) - n + 1)]
            tgt_ngrams = [tuple(tgt_row[i:i + n])
                          for i in range(len(tgt_row) - n + 1)]
            counts: dict = {}
            for ng in tgt_ngrams:
                counts[ng] = counts.get(ng, 0) + 1
            for ng in pred_ngrams:
                total += 1
                if counts.get(ng, 0) > 0:
                    counts[ng] -= 1
                    hits += 1
        precisions.append((hits + 1e-9) / (total + 1e-9))
    return float(100.0 * np.exp(np.mean(np.log(precisions))))


def make_iwslt_like(seed: int = 0, train_size: int = 1024
                    ) -> SyntheticTranslation:
    """IWSLT14 De-En substitute."""
    return SyntheticTranslation(train_size=train_size, seed=seed)
