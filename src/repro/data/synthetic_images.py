"""Synthetic image-classification datasets (CIFAR10/100 stand-ins).

Images are generated from per-class spatial prototypes (smooth random
fields) plus pixel noise, so that (i) classes are learnable by a small
convnet, (ii) the task is not linearly separable at high noise, and
(iii) gradients carry minibatch variance — the statistic YellowFin's
tuner actually consumes.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.rng import new_rng


def _smooth_field(rng: np.random.Generator, channels: int, size: int,
                  smoothness: int = 3) -> np.ndarray:
    """Low-frequency random field: upsampled coarse noise."""
    coarse = rng.normal(size=(channels, smoothness, smoothness))
    reps = int(np.ceil(size / smoothness))
    up = np.repeat(np.repeat(coarse, reps, axis=1), reps, axis=2)
    return up[:, :size, :size]


@dataclass
class SyntheticImages:
    """Class-prototype image dataset.

    Parameters
    ----------
    num_classes:
        10 for the CIFAR10 stand-in, 100 for CIFAR100.
    size:
        Spatial side length (small, e.g. 8, to keep NumPy training fast).
    channels:
        Image channels.
    train_size, test_size:
        Sample counts.
    noise:
        Pixel-noise standard deviation relative to prototype scale.
    """

    num_classes: int = 10
    size: int = 8
    channels: int = 3
    train_size: int = 2048
    test_size: int = 512
    noise: float = 0.8
    seed: int = 0

    x_train: np.ndarray = field(init=False, repr=False)
    y_train: np.ndarray = field(init=False, repr=False)
    x_test: np.ndarray = field(init=False, repr=False)
    y_test: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        rng = new_rng(self.seed)
        prototypes = np.stack([
            _smooth_field(rng, self.channels, self.size)
            for _ in range(self.num_classes)])
        self.x_train, self.y_train = self._sample(rng, prototypes,
                                                  self.train_size)
        self.x_test, self.y_test = self._sample(rng, prototypes,
                                                self.test_size)

    def _sample(self, rng: np.random.Generator, prototypes: np.ndarray,
                count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, self.num_classes, size=count)
        images = prototypes[labels] + self.noise * rng.normal(
            size=(count, self.channels, self.size, self.size))
        return images.astype(np.float64), labels.astype(np.int64)

    def __len__(self) -> int:
        return self.train_size


def make_cifar10_like(seed: int = 0, train_size: int = 2048,
                      size: int = 8) -> SyntheticImages:
    """CIFAR10 substitute: 10 classes."""
    return SyntheticImages(num_classes=10, size=size,
                           train_size=train_size, seed=seed)


def make_cifar100_like(seed: int = 0, train_size: int = 2048,
                       size: int = 8) -> SyntheticImages:
    """CIFAR100 substitute: 100 classes (harder, like the paper's task)."""
    return SyntheticImages(num_classes=100, size=size,
                           train_size=train_size, noise=0.6, seed=seed)
