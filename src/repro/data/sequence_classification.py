"""Sequential image classification (the paper's Fig 3(c,d) MNIST LSTM).

The paper demonstrates per-variable convergence rates on an "LSTM on
MNIST" task — images consumed row by row.  This module builds the
synthetic equivalent: class-prototype images (as in
:mod:`repro.data.synthetic_images`) presented as row sequences, plus a
small LSTM classifier head factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.data.synthetic_images import SyntheticImages
from repro.utils.rng import new_rng


@dataclass
class SequentialImages:
    """Row-sequence view of a synthetic image dataset.

    Each sample is a sequence of ``size`` rows, each row a vector of
    ``size`` pixels (grayscale: the channel dimension is averaged away),
    labelled with the image class.
    """

    num_classes: int = 10
    size: int = 8
    train_size: int = 512
    test_size: int = 128
    noise: float = 0.6
    seed: int = 0

    x_train: np.ndarray = field(init=False, repr=False)  # (N, T, size)
    y_train: np.ndarray = field(init=False, repr=False)
    x_test: np.ndarray = field(init=False, repr=False)
    y_test: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        images = SyntheticImages(num_classes=self.num_classes,
                                 size=self.size, train_size=self.train_size,
                                 test_size=self.test_size, noise=self.noise,
                                 seed=self.seed)
        self.x_train = images.x_train.mean(axis=1)   # (N, H, W) rows = time
        self.y_train = images.y_train
        self.x_test = images.x_test.mean(axis=1)
        self.y_test = images.y_test

    def batch(self, rng: np.random.Generator, batch_size: int
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Random time-major minibatch: ``(T, N, size)`` plus labels."""
        idx = rng.integers(0, len(self.y_train), size=batch_size)
        return self.x_train[idx].transpose(1, 0, 2), self.y_train[idx]


def make_mnist_like(seed: int = 0, train_size: int = 512
                    ) -> SequentialImages:
    """The Fig 3(c,d) substrate: sequential digit-like classification."""
    return SequentialImages(num_classes=10, train_size=train_size, seed=seed)
