"""Datasets: toy objectives plus synthetic substitutes for the paper's
real-data workloads (see DESIGN.md section 2 for the substitution table)."""

from repro.data.toy import (TwoQuadratic, piecewise_curvature,
                            make_figure3_objective, run_momentum_descent)
from repro.data.synthetic_images import SyntheticImages, make_cifar10_like, \
    make_cifar100_like
from repro.data.synthetic_text import (MarkovTextCorpus, make_ts_like,
                                       make_ptb_like)
from repro.data.parsing import BracketedTreebank, make_wsj_like
from repro.data.translation import SyntheticTranslation, make_iwslt_like
from repro.data.sequence_classification import (SequentialImages,
                                                make_mnist_like)
from repro.data.loader import BatchLoader, SequenceLoader

__all__ = [
    "TwoQuadratic", "piecewise_curvature", "make_figure3_objective",
    "run_momentum_descent",
    "SyntheticImages", "make_cifar10_like", "make_cifar100_like",
    "MarkovTextCorpus", "make_ts_like", "make_ptb_like",
    "BracketedTreebank", "make_wsj_like",
    "SyntheticTranslation", "make_iwslt_like",
    "SequentialImages", "make_mnist_like",
    "BatchLoader", "SequenceLoader",
]
