"""Minibatch iterators for image and sequence data."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import get_rng_state, new_rng, set_rng_state


class BatchLoader:
    """Infinite shuffled minibatch stream over ``(x, y)`` arrays."""

    def __init__(self, x: np.ndarray, y: np.ndarray, batch_size: int,
                 seed=None):
        if len(x) != len(y):
            raise ValueError(f"x/y length mismatch: {len(x)} vs {len(y)}")
        if batch_size <= 0 or batch_size > len(x):
            raise ValueError(f"bad batch size {batch_size} for {len(x)} samples")
        self.x, self.y = x, y
        self.batch_size = batch_size
        self.rng = new_rng(seed)
        self._order = self.rng.permutation(len(x))
        self._cursor = 0

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._cursor + self.batch_size > len(self.x):
            self._order = self.rng.permutation(len(self.x))
            self._cursor = 0
        idx = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.x[idx], self.y[idx]

    @property
    def batches_per_epoch(self) -> int:
        return len(self.x) // self.batch_size

    def state_dict(self) -> dict:
        """Serializable stream position: RNG state + shuffle + cursor.

        A loader restored via :meth:`load_state_dict` yields exactly the
        batch sequence the snapshotted one would have — required for
        bit-for-bit resume of checkpointed training runs.
        """
        return {"rng": get_rng_state(self.rng),
                "order": self._order.copy(),
                "cursor": self._cursor}

    def load_state_dict(self, state: dict) -> None:
        """Restore a stream position captured by :meth:`state_dict`."""
        set_rng_state(self.rng, state["rng"])
        self._order = np.asarray(state["order"], dtype=np.intp)
        self._cursor = int(state["cursor"])

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()


class SequenceLoader:
    """BPTT-style loader: contiguous ``(input, target)`` windows of a token
    stream, batched by splitting the stream into parallel lanes.

    Matches the standard LM training layout: the stream is reshaped to
    ``(batch, -1)`` and consecutive calls walk forward ``seq_len`` tokens,
    so hidden state can be carried across calls.
    """

    def __init__(self, tokens: np.ndarray, batch_size: int, seq_len: int):
        tokens = np.asarray(tokens, dtype=np.int64)
        usable = (len(tokens) - 1) // batch_size * batch_size
        if usable < batch_size * seq_len:
            raise ValueError("token stream too short for this configuration")
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.inputs = tokens[:usable].reshape(batch_size, -1)
        self.targets = tokens[1:usable + 1].reshape(batch_size, -1)
        self._cursor = 0

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Returns time-major ``(seq_len, batch)`` input and target ids."""
        width = self.inputs.shape[1]
        if self._cursor + self.seq_len > width:
            self._cursor = 0
        sl = slice(self._cursor, self._cursor + self.seq_len)
        self._cursor += self.seq_len
        return self.inputs[:, sl].T.copy(), self.targets[:, sl].T.copy()

    @property
    def batches_per_epoch(self) -> int:
        return self.inputs.shape[1] // self.seq_len

    def reset(self) -> None:
        self._cursor = 0
