"""Toy objectives from Section 2 of the paper.

Figure 3(a): a one-dimensional non-convex function stitched together from
two quadratics with curvatures 1 and 1000, giving a generalized condition
number (GCN) of 1000.  With the tuning rule of eq. (9), momentum gradient
descent converges linearly at rate ``sqrt(mu)`` despite the curvature jump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class TwoQuadratic:
    """Piecewise-quadratic objective with a sharp inner and flat outer region.

    The function is C^1 at the break points ``+-width``:

        f(x) = (h_sharp/2) x^2                          for |x| <= width
        f(x) = (h_flat/2)(|x| - offset)^2 + base        for |x| >  width

    with ``offset``/``base`` chosen for continuity of ``f`` and ``f'``.
    The global minimum is at 0; generalized curvature with respect to 0
    ranges over ``[h_eff_min, h_sharp]`` giving a large GCN.
    """

    h_sharp: float = 1000.0
    h_flat: float = 1.0
    width: float = 1.0

    def __post_init__(self):
        if self.h_sharp < self.h_flat:
            raise ValueError("h_sharp must be >= h_flat")
        # continuity of f' at |x| = width:
        #   h_sharp * width = h_flat * (width - offset)  =>
        self.offset = self.width * (1.0 - self.h_sharp / self.h_flat)
        inner = 0.5 * self.h_sharp * self.width ** 2
        outer = 0.5 * self.h_flat * (self.width - self.offset) ** 2
        self.base = inner - outer

    def f(self, x: float) -> float:
        ax = abs(x)
        if ax <= self.width:
            return 0.5 * self.h_sharp * x * x
        return 0.5 * self.h_flat * (ax - self.offset) ** 2 + self.base

    def grad(self, x: float) -> float:
        ax = abs(x)
        if ax <= self.width:
            return self.h_sharp * x
        return self.h_flat * (ax - self.offset) * np.sign(x)

    def generalized_curvature(self, x: float) -> float:
        """``h(x) = f'(x) / (x - x*)`` with ``x* = 0`` (Definition 2).

        Inside the sharp region the ratio is ``h_sharp`` identically, so
        it is returned directly — computing ``grad(x) / x`` there can
        round outside ``[h_flat, h_sharp]`` for denormal ``x``.
        """
        if abs(x) <= self.width:
            return self.h_sharp
        return self.grad(x) / x

    def curvature_range(self, domain: np.ndarray) -> tuple:
        h = np.array([self.generalized_curvature(float(x))
                      for x in np.asarray(domain).ravel() if x != 0.0])
        return float(h.min()), float(h.max())


def piecewise_curvature(objective: TwoQuadratic,
                        xs: np.ndarray) -> np.ndarray:
    """Vectorized generalized curvature over ``xs``."""
    return np.array([objective.generalized_curvature(float(x)) for x in xs])


def make_figure3_objective() -> TwoQuadratic:
    """The Figure 3(a) objective: curvatures 1 and 1000, GCN = 1000."""
    return TwoQuadratic(h_sharp=1000.0, h_flat=1.0, width=1.0)


def run_momentum_descent(objective: TwoQuadratic, x0: float, lr: float,
                         momentum: float, steps: int) -> np.ndarray:
    """Deterministic momentum GD on the toy objective; returns |x_t - 0|."""
    x_prev, x = x0, x0
    dist = np.empty(steps + 1)
    dist[0] = abs(x0)
    for t in range(steps):
        x_next = x - lr * objective.grad(x) + momentum * (x - x_prev)
        x_prev, x = x, x_next
        dist[t + 1] = abs(x)
    return dist
