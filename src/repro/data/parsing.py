"""Synthetic constituency-parsing-as-language-modeling task (WSJ stand-in).

Choe & Charniak reduce parsing to language modeling over linearized trees.
We generate random binary trees from a small PCFG-like process, linearize
them with bracket tokens, and train an LSTM LM on the resulting stream.
The evaluation metric is bracket-prediction F1: how well the model predicts
opening/closing bracket tokens at each position — an F1-style proxy for
parse quality that moves with LM quality exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.utils.rng import new_rng

OPEN, CLOSE = 0, 1  # reserved bracket token ids; terminals start at 2


@dataclass
class BracketedTreebank:
    """Token stream of linearized random binary trees.

    Vocabulary: token 0 = "(", token 1 = ")", tokens 2.. = terminals.
    """

    num_terminals: int = 48
    num_sentences: int = 600
    max_depth: int = 5
    branch_prob: float = 0.6
    seed: int = 0

    tokens: np.ndarray = field(init=False, repr=False)
    sentence_bounds: List[int] = field(init=False, repr=False)

    def __post_init__(self):
        rng = new_rng(self.seed)
        stream: List[int] = []
        bounds: List[int] = []
        # Terminal distribution is position-dependent: terminals are drawn
        # from a depth-conditioned Zipf so brackets carry real signal.
        for _ in range(self.num_sentences):
            self._emit_tree(rng, stream, depth=0)
            bounds.append(len(stream))
        self.tokens = np.asarray(stream, dtype=np.int64)
        self.sentence_bounds = bounds

    def _emit_tree(self, rng: np.random.Generator, out: List[int],
                   depth: int) -> None:
        if depth < self.max_depth and rng.random() < self.branch_prob:
            out.append(OPEN)
            self._emit_tree(rng, out, depth + 1)
            self._emit_tree(rng, out, depth + 1)
            out.append(CLOSE)
        else:
            # depth-conditioned terminal: deeper nodes use a shifted range
            lo = (depth * 7) % max(self.num_terminals - 8, 1)
            out.append(2 + lo + int(rng.integers(0, 8)))

    @property
    def vocab_size(self) -> int:
        return 2 + self.num_terminals

    def split(self, train_frac: float = 0.9):
        cut = int(len(self.tokens) * train_frac)
        return self.tokens[:cut], self.tokens[cut:]


def bracket_f1(predictions: np.ndarray, targets: np.ndarray) -> float:
    """F1 of predicting bracket tokens (ids 0 and 1) at each position.

    A lightweight analogue of labelled-bracket F1: precision/recall over
    positions where the model emits/should emit structural tokens.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    pred_b = predictions <= CLOSE
    true_b = targets <= CLOSE
    match = (predictions == targets) & true_b
    tp = float(match.sum())
    fp = float((pred_b & ~match).sum())
    fn = float((true_b & ~match).sum())
    if tp == 0.0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def make_wsj_like(seed: int = 0, num_sentences: int = 600
                  ) -> BracketedTreebank:
    """WSJ parsing-as-LM substitute."""
    return BracketedTreebank(num_sentences=num_sentences, seed=seed)
