"""Tour of repro.xp: declare a matrix, run it in parallel, hit the cache.

The paper's claims are matrix results — optimizer x delay model — so
this example sweeps exactly that grid on the toy classifier:

1. declare a :class:`repro.xp.Matrix` (base spec + override axes) and
   save it as the JSON file ``python -m repro.xp`` consumes;
2. execute the expanded scenarios across a process pool with the
   content-addressed result cache on;
3. run the *same* matrix again and watch every scenario come back from
   the cache with zero recomputation, bit-identical;
4. diff the two passes with the :class:`~repro.xp.BaselineComparator`
   machinery that CI uses to gate perf regressions.

Run with ``--smoke`` for a quarter-size pass (CI's matrix-smoke gate).
"""

import sys
import tempfile
from pathlib import Path

from repro.bench import BenchReporter
from repro.run import run
from repro.xp import (BaselineComparator, Matrix, ResultCache,
                      ScenarioSpec, save_scenarios)

SMOKE = "--smoke" in sys.argv
READS = 60 if SMOKE else 240

MATRIX = Matrix(
    base=ScenarioSpec(name="tour", workload="toy_classifier",
                      workers=4, num_shards=2, reads=READS, seed=0,
                      smooth=15),
    axes={
        "delay": {
            "constant": {"delay": {"kind": "constant", "delay": 1.0}},
            "pareto": {"delay": {"kind": "pareto", "alpha": 1.5,
                                 "scale": 0.5, "seed": 12}},
            "trace": {"delay": {"kind": "trace", "trace": {
                "delays": [1.0, 1.0, 4.0, 1.0]}}},
        },
        "optimizer": {
            "fixed_momentum": {
                "optimizer": "momentum_sgd",
                "optimizer_params": {"lr": 0.05, "momentum": 0.9,
                                     "fused": True}},
            "closed_loop": {
                "optimizer": "closed_loop_yellowfin",
                "optimizer_params": {"staleness": 3, "gamma": 0.01,
                                     "window": 5, "beta": 0.99,
                                     "fused": True}},
        },
    })


def show(title, outcome):
    print(f"\n=== {title} ===")
    results = outcome.results
    width = max(len(r.name) for r in results)
    for r in results:
        print(f"  {r.name.ljust(width)}  final_loss={r.metrics['final_loss']:.4f}"
              f"  staleness_max={r.metrics['staleness_max']:.0f}"
              f"  {'cached' if r.cached else f'{r.wall_s:.2f}s'}")
    print(f"  -> {outcome.hits} cached, {outcome.misses} computed "
          f"(backend: {outcome.backend})")


def main():
    work = Path(tempfile.mkdtemp(prefix="xp_tour_"))
    matrix_file = work / "scenario_matrix.json"
    save_scenarios(MATRIX, matrix_file)
    print(f"matrix file: {matrix_file}  "
          f"({len(MATRIX.expand())} scenarios; also consumable via "
          f"'python -m repro run {matrix_file}')")

    cache = ResultCache(work / "cache")
    cold = run(MATRIX, backend="parallel", jobs=4, cache=cache)
    show("first pass (cold cache, 4 processes)", cold)

    warm = run(MATRIX, cache=cache)   # backend auto-selected
    show("second pass (warm cache)", warm)
    assert warm.misses == 0, "warm pass recomputed something"
    first, second = cold.results, warm.results
    assert [a.identity() for a in first] == \
        [b.identity() for b in second], "cache changed a record"
    print("  cache round trip is bit-identical")

    # the CI perf gate in one breath: record both passes as BENCH
    # files and diff them (identical runs always pass)
    base_dir, fresh_dir = work / "baseline", work / "fresh"
    for directory, results in ((base_dir, first), (fresh_dir, second)):
        directory.mkdir()
        reporter = BenchReporter(out_dir=str(directory))
        reporter.record("tour", {r.name.split("tour/")[1] + "_final":
                                 r.metrics["final_loss"]
                                 for r in results},
                        {"reads": READS}, seed=0)
        reporter.write("tour")
    report = BaselineComparator().compare_dirs(base_dir, fresh_dir)
    print(f"\nbaseline diff: {report['status']} "
          f"({report['summary']['compared']} record(s) compared)")
    assert report["status"] == "pass"


if __name__ == "__main__":
    main()
