"""LSTM language modeling with YellowFin and adaptive gradient clipping.

Trains a 2-layer LSTM on a synthetic Markov-chain corpus (the paper's
TinyShakespeare stand-in), reports validation perplexity against the
corpus's entropy-rate floor, and shows the tuner's lr/momentum trajectory.
Run:

    python examples/language_model.py
"""

import numpy as np

from repro.core import YellowFin
from repro.data import SequenceLoader, make_ts_like
from repro.models import LSTMLanguageModel
from repro.models.lstm_lm import perplexity
from repro.nn import LSTM
from repro.sim import evaluate_lm


def main():
    corpus = make_ts_like(seed=0, length=8000)
    train_tokens, valid_tokens = corpus.split(0.9)
    print(f"corpus: vocab={corpus.vocab_size}, "
          f"entropy rate={corpus.entropy_rate:.3f} nats "
          f"(optimal perplexity {np.exp(corpus.entropy_rate):.1f})")

    model = LSTMLanguageModel(vocab_size=corpus.vocab_size, embed_dim=16,
                              hidden_size=32, num_layers=2, seed=0)
    loader = SequenceLoader(train_tokens, batch_size=8, seq_len=12)
    opt = YellowFin(model.parameters(), adaptive_clip=True)

    state = None
    steps = 400
    for step in range(steps):
        ids, targets = loader.next_batch()
        model.zero_grad()
        loss, state = model.loss(ids, targets, state)
        state = LSTM.detach_state(state)  # truncated BPTT
        loss.backward()
        opt.step()

        if step % 100 == 0 or step == steps - 1:
            stats = opt.stats()
            val = evaluate_lm(model, valid_tokens, batch_size=4, seq_len=12)
            print(f"step {step:>4}  train_nll={float(loss.data):.3f} "
                  f"train_ppl={perplexity(float(loss.data)):7.2f}  "
                  f"val_ppl={val['perplexity']:7.2f}  "
                  f"lr={stats['lr']:.4f}  mu={stats['momentum']:.3f}  "
                  f"clips={opt.clipper.clip_events}")

    print(f"\nadaptive clipping engaged {opt.clipper.clip_events} times "
          f"(threshold tracks sqrt(hmax) = "
          f"{np.sqrt(opt.measurements.curvature.hmax):.3f})")


if __name__ == "__main__":
    main()
