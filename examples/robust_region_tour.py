"""A tour of the paper's Section 2 theory using the analysis API.

Walks through:
1. the robust region and the sqrt(mu) spectral-radius plateau (Fig. 2);
2. momentum's robustness to learning-rate misspecification, quantified as
   the width of the working lr band;
3. linear convergence on the GCN-1000 non-convex toy objective (Fig. 3);
4. the exact Lemma-5 MSE recursion vs Monte-Carlo momentum SGD.

Run:

    python examples/robust_region_tour.py
"""

import numpy as np

from repro.analysis import (NoisyQuadratic, exact_expected_sq_dist,
                            fit_linear_rate, lr_sensitivity,
                            momentum_spectral_radius, robust_lr_range,
                            run_momentum_gd, tune_noiseless)
from repro.data.toy import make_figure3_objective, run_momentum_descent
from repro.utils.rng import spawn_rngs


def section_1_robust_region():
    print("=" * 64)
    print("1. The robust region (Lemma 3 / Figure 2)")
    print("=" * 64)
    h = 1.0
    for mu in (0.1, 0.3, 0.5):
        lo, hi = robust_lr_range(h, mu)
        mid = (lo + hi) / 2
        rho = momentum_spectral_radius(mid, h, mu)
        print(f"  mu={mu}: robust lr range [{lo:.3f}, {hi:.3f}] "
              f"(width {hi - lo:.3f}); rho at midpoint = {rho:.4f} "
              f"= sqrt(mu) = {np.sqrt(mu):.4f}")


def section_2_lr_robustness():
    print("\n" + "=" * 64)
    print("2. Momentum is robust to learning-rate misspecification")
    print("=" * 64)
    lrs = np.logspace(-3, 1, 60)
    for mu in (0.0, 0.5, 0.9):
        curve = lr_sensitivity(curvature=1.0, momentum=mu, lrs=lrs,
                               steps=300)
        print(f"  mu={mu}: working lr band spans "
              f"{curve.working_band:.2f} decades")


def section_3_toy_objective():
    print("\n" + "=" * 64)
    print("3. Non-convex toy with GCN = 1000 (Figure 3a,b)")
    print("=" * 64)
    obj = make_figure3_objective()
    mu, lr = tune_noiseless(1.0, 1000.0, margin=0.02)
    dist = run_momentum_descent(obj, x0=20.0, lr=lr, momentum=mu, steps=500)
    rate = fit_linear_rate(dist, burn_in=50)
    print(f"  rule (9): mu={mu:.4f}, lr={lr:.2e}")
    print(f"  |x_500| = {dist[-1]:.2e} (from |x_0| = 20)")
    print(f"  fitted rate {rate:.5f} vs predicted sqrt(mu) "
          f"{np.sqrt(mu):.5f}")


def section_4_lemma5():
    print("\n" + "=" * 64)
    print("4. Exact MSE recursion (Lemma 5) vs Monte-Carlo")
    print("=" * 64)
    obj = NoisyQuadratic(curvature=1.0, noise_var=0.5)
    lr, mu, x0, steps = 0.2, 0.4, 1.5, 25
    exact = exact_expected_sq_dist(obj, x0, lr, mu, steps)
    acc = np.zeros(steps + 1)
    n_runs = 2000
    for rng in spawn_rngs(7, n_runs):
        acc += run_momentum_gd(obj, x0, lr, mu, steps, rng=rng) ** 2
    mc = acc / n_runs
    print(f"  {'t':>4} {'exact E(x_t-x*)^2':>20} {'Monte-Carlo':>14}")
    for t in (0, 5, 10, 15, 20, 25):
        print(f"  {t:>4} {exact[t]:>20.5f} {mc[t]:>14.5f}")


if __name__ == "__main__":
    section_1_robust_region()
    section_2_lr_robustness()
    section_3_toy_objective()
    section_4_lemma5()
