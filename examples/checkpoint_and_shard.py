"""Production niceties: checkpoint/resume and sharded async training.

1. Trains a classifier with YellowFin, checkpoints the optimizer state
   (including the tuner's estimator state) mid-run, and shows that the
   resumed run continues bit-for-bit identically.
2. Runs the same model on a 4-worker parameter-server simulation where
   each worker owns its own data shard.

Run:

    python examples/checkpoint_and_shard.py
"""

import numpy as np

from repro import YellowFin, nn
from repro.autograd import Tensor, functional as F
from repro.optim import MomentumSGD
from repro.sim import ParameterServer


def make_model(seed=0):
    return nn.Sequential(nn.Linear(4, 16, seed=seed), nn.ReLU(),
                         nn.Linear(16, 2, seed=seed + 1))


def checkpoint_demo():
    print("=" * 60)
    print("1. Checkpoint / resume")
    print("=" * 60)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 4))
    y = (x[:, 0] - x[:, 3] > 0).astype(int)

    def train(model, opt, start, stop):
        for _ in range(start, stop):
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        return float(loss.data)

    # reference: 100 uninterrupted steps
    model_ref = make_model()
    opt_ref = YellowFin(model_ref.parameters(), window=5, beta=0.99)
    final_ref = train(model_ref, opt_ref, 0, 100)

    # checkpointed: 50 steps, save, restore into fresh objects, 50 more
    model_a = make_model()
    opt_a = YellowFin(model_a.parameters(), window=5, beta=0.99)
    train(model_a, opt_a, 0, 50)
    model_state = model_a.state_dict()
    opt_state = opt_a.state_dict()

    model_b = make_model(seed=99)            # different init, then restored
    model_b.load_state_dict(model_state)
    opt_b = YellowFin(model_b.parameters(), window=5, beta=0.99)
    opt_b.load_state_dict(opt_state)
    final_resumed = train(model_b, opt_b, 50, 100)

    drift = max(np.abs(pa.data - pb.data).max() for pa, pb in
                zip(model_ref.parameters(), model_b.parameters()))
    print(f"  final loss: uninterrupted {final_ref:.6f}, "
          f"resumed {final_resumed:.6f}")
    print(f"  max parameter drift after resume: {drift:.2e} "
          f"(bit-for-bit: {drift == 0.0})")


def shard_demo():
    print("\n" + "=" * 60)
    print("2. Sharded parameter-server training (4 workers)")
    print("=" * 60)
    rng = np.random.default_rng(1)
    model = make_model()
    loss_fns = []
    for w in range(4):
        x = rng.normal(size=(64, 4))
        y = (x[:, 0] - x[:, 3] > 0).astype(int)
        local = np.random.default_rng(100 + w)

        def loss_fn(x=x, y=y, local=local):
            idx = local.integers(0, len(x), size=16)
            return F.cross_entropy(model(Tensor(x[idx])), y[idx])

        loss_fns.append(loss_fn)

    opt = MomentumSGD(model.parameters(), lr=0.1, momentum=0.5)
    server = ParameterServer(model, opt, loss_fns, schedule="round_robin")
    log = server.run(steps=300)
    losses = log.series("loss")
    staleness = log.series("staleness")
    print(f"  loss {losses[:20].mean():.4f} -> {losses[-20:].mean():.4f} "
          f"over {len(losses)} applied updates")
    print(f"  gradient staleness: median {np.median(staleness):.0f} steps "
          f"(round-robin with 4 workers)")


if __name__ == "__main__":
    checkpoint_demo()
    shard_demo()
