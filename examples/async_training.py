"""Closed-loop YellowFin under simulated asynchrony (paper Section 4).

Simulates 16 round-robin asynchronous workers (gradient delayed 15 steps)
training a small classifier, and compares:

- plain YellowFin (open loop): total momentum drifts above the target;
- closed-loop YellowFin: the controller lowers algorithmic momentum until
  measured total momentum matches the target — the Fig. 4 behaviour.

Both runs use the production-shaped runtime: parameters hash-partitioned
across 4 server shards (``num_shards=4`` — trajectory-neutral by
construction) and the fused flat-buffer optimizer kernels
(``fused=True``).

Run:

    python examples/async_training.py
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F
from repro.core import ClosedLoopYellowFin, YellowFin
from repro.data import BatchLoader
from repro.run import run_round_robin


WORKERS = 16
STEPS = 700
SHARDS = 4


def build(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=8)
    y = (x @ w_true + 0.3 * rng.normal(size=512) > 0).astype(int)
    model = nn.Sequential(nn.Linear(8, 24, seed=seed), nn.ReLU(),
                          nn.Linear(24, 2, seed=seed + 1))
    loader = BatchLoader(x, y, batch_size=32, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(Tensor(xb)), yb)

    return model, loss_fn


def run(name, make_opt):
    model, loss_fn = build()
    opt = make_opt(model.parameters())
    # the paper's round-robin protocol through the unified API
    log = run_round_robin(model, opt, loss_fn, steps=STEPS,
                          workers=WORKERS, num_shards=SHARDS)
    losses = log.series("loss")
    tail = losses[-50:].mean()
    line = f"{name:>22}: final(avg last 50) loss = {tail:.4f}"
    if "total_momentum" in log:
        total = np.nanmedian(log.series("total_momentum")[-100:])
        algo = log.series("algorithmic_momentum")[-1]
        target = log.series("momentum")[-1] if name.startswith("open") \
            else opt.momentum
        line += (f"  | target mu={opt.momentum:.3f} "
                 f"algorithmic mu={algo:.3f} measured total mu={total:.3f}")
    return line, losses


def main():
    print(f"{WORKERS} async workers, round-robin staleness "
          f"tau={WORKERS - 1}, {SHARDS} server shards, fused kernels\n")
    open_line, open_losses = run(
        "open-loop YellowFin", lambda p: YellowFin(p, fused=True))
    closed_line, closed_losses = run(
        "closed-loop YellowFin",
        lambda p: ClosedLoopYellowFin(p, staleness=WORKERS - 1, gamma=0.01,
                                      fused=True))
    print(open_line)
    print(closed_line)

    print("\nloss at checkpoints (iteration: open / closed):")
    for step in (100, 300, 500, STEPS - 1):
        print(f"  iter {step:>4}: {open_losses[step]:.4f} / "
              f"{closed_losses[step]:.4f}")


if __name__ == "__main__":
    main()
