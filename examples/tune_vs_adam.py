"""The paper's comparison protocol on a ResNet workload (Table 2 metric).

Grid-searches Adam and momentum SGD on a synthetic-CIFAR ResNet task, runs
YellowFin with zero tuning, and reports the iteration-ratio speedups at
the lowest common smoothed loss — exactly the Section 5.1 methodology.
Run:

    python examples/tune_vs_adam.py
"""

import numpy as np

from repro.autograd import functional as F
from repro.core import YellowFin
from repro.data import BatchLoader, make_cifar10_like
from repro.models import make_resnet_cifar10
from repro.optim import Adam, MomentumSGD
from repro.tuning import Workload, grid_search, run_workload, speedup_ratio


def build(seed):
    data = make_cifar10_like(seed=seed, train_size=256, size=8)
    model = make_resnet_cifar10(width=3, blocks_per_stage=1, seed=seed)
    loader = BatchLoader(data.x_train, data.y_train, batch_size=16, seed=seed)

    def loss_fn():
        xb, yb = loader.next_batch()
        return F.cross_entropy(model(xb), yb)

    return model, loss_fn


def main():
    workload = Workload(name="CIFAR10-like ResNet", build=build, steps=150,
                        smooth_window=20)
    seeds = (0, 1)

    print("grid-searching Adam ...")
    adam = grid_search(workload, lambda p, lr: Adam(p, lr=lr),
                       lr_grid=[1e-3, 1e-2, 1e-1], optimizer_name="adam",
                       seeds=seeds)
    print(f"  best Adam lr = {adam.best_lr:g}")

    print("grid-searching momentum SGD (momentum fixed at 0.9) ...")
    sgd = grid_search(workload,
                      lambda p, lr: MomentumSGD(p, lr=lr, momentum=0.9),
                      lr_grid=[1e-2, 1e-1, 1.0], optimizer_name="mom-sgd",
                      seeds=seeds)
    print(f"  best momentum-SGD lr = {sgd.best_lr:g}")

    print("running YellowFin (no tuning) ...")
    yf = run_workload(workload, lambda p: YellowFin(p), "yellowfin",
                      seeds=seeds)

    w = workload.smooth_window
    sgd_speedup, _ = speedup_ratio(adam.best_run.losses, sgd.best_run.losses,
                                   smooth_window=w)
    yf_speedup, common = speedup_ratio(adam.best_run.losses, yf.losses,
                                       smooth_window=w)

    print("\nspeedup over tuned Adam (iterations to lowest common "
          f"smoothed loss {common:.4f}):")
    print(f"  tuned Adam          1.00x   (by definition)")
    print(f"  tuned momentum SGD  {sgd_speedup:.2f}x")
    print(f"  YellowFin           {yf_speedup:.2f}x   (zero hand-tuning)")


if __name__ == "__main__":
    main()
